//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: `StdRng` seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so *streams differ from upstream
//! rand*, but every consumer in this workspace only relies on
//! determinism for a fixed seed, which this provides.

/// Core of every generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform value over a type's full "standard" distribution:
/// `f64` in `[0, 1)`, integers over their whole range, `bool` fair.
pub trait StandardDist: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type that can be drawn uniformly from a half-open or inclusive
/// range (the `gen_range` argument contract).
pub trait UniformSample: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl UniformSample for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let u = f64::sample_standard(rng);
        let v = lo + (hi - lo) * u;
        // Floating rounding can land exactly on `hi`; clamp back in.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (bounded_u128(rng, span)) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (bounded_u128(rng, span)) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire); spans
/// here are tiny relative to 2^64 so the bias is immaterial, but the
/// multiply keeps it unbiased enough for property tests regardless.
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 0 {
        return 0;
    }
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// A `gen_range` argument: half-open or inclusive range.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing extension trait (the `rand::Rng` subset in use).
pub trait Rng: RngCore {
    /// A standard-distribution value (`f64` in `[0,1)`, full-range ints).
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: UniformSample,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, UniformSample};

    /// Slice extensions (the `shuffle` subset).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_half_open(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&f));
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_whole_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Astronomically unlikely to be untouched.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
