//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple but honest measurement
//! loop: warm-up, then `sample_size` timed samples whose per-iteration
//! median, min and max are reported to stdout.
//!
//! No statistics engine, no plotting, no saved baselines. When run as
//! `cargo test` (bench targets default to `test = false` in this
//! workspace) nothing executes; `cargo bench` runs the real loop.
//!
//! Beyond stdout, every benchmark's result is collected and — via
//! [`write_summary`], which the `criterion_main!` expansion calls
//! after all groups finish — written as machine-readable JSON to
//! `bench-summary.json` (override the path with the
//! `BENCH_SUMMARY_PATH` environment variable; set it to `-` to
//! disable). One record per benchmark: the id (which encodes
//! workload and config, e.g. `knn_shards_n50000_d10/od_full/shards4`),
//! median/min/max per-iteration nanoseconds and the sample count —
//! the raw material for tracking the perf trajectory across PRs.
//! Each bench binary runs as its own process, so the writer *merges*
//! into an existing file (replacing re-measured ids, keeping the
//! rest): a full `cargo bench` accumulates all targets' records.

pub use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// How much setup output to batch per timed run (shape-compatible;
/// the stub times one routine call per sample regardless).
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    #[default]
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let min = ns[0];
        let max = ns[ns.len() - 1];
        println!(
            "{label:<40} median {}   [min {}, max {}]   ({} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            ns.len()
        );
        record(SummaryRecord {
            id: label.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            samples: ns.len(),
        });
    }
}

/// One benchmark's collected result, destined for the JSON summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryRecord {
    /// `group/function/parameter` — encodes workload and config.
    pub id: String,
    /// Median per-iteration wall time in nanoseconds.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<SummaryRecord>> = Mutex::new(Vec::new());

fn record(r: SummaryRecord) {
    RESULTS.lock().expect("results lock").push(r);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// bench ids are plain identifiers, but garbage in must not produce
/// invalid JSON out.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a record list as one JSON document.
fn render_json(records: &[SummaryRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}{}\n",
            escape_json(&r.id),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders every result collected in this process as a JSON document.
pub fn summary_json() -> String {
    render_json(&RESULTS.lock().expect("results lock"))
}

/// Parses a summary previously written by [`write_summary`] back into
/// records (one `{"id": …}` object per line, the exact shape
/// `render_json` emits). Unparseable lines are skipped — a corrupt or
/// foreign file degrades to an empty history, never an error.
fn parse_summary(text: &str) -> Vec<SummaryRecord> {
    fn field(line: &str, key: &str) -> Option<u128> {
        let rest = &line[line.find(key)? + key.len()..];
        let digits: String = rest
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        digits.parse().ok()
    }
    text.lines()
        .filter_map(|line| {
            let start = line.find("\"id\": \"")? + 7;
            let id = line[start..].split('"').next()?.to_string();
            Some(SummaryRecord {
                id,
                median_ns: field(line, "\"median_ns\":")?,
                min_ns: field(line, "\"min_ns\":")?,
                max_ns: field(line, "\"max_ns\":")?,
                samples: field(line, "\"samples\":")? as usize,
            })
        })
        .collect()
}

/// Writes the collected results to `bench-summary.json` (or
/// `$BENCH_SUMMARY_PATH`; `-` disables), **merging** with any records
/// already in the file: a full `cargo bench` run executes each bench
/// target as its own process, so each process re-reads the file,
/// replaces records whose id it re-measured and keeps the rest. Called
/// by the `criterion_main!` expansion after every group has run; also
/// callable directly. Errors are reported to stderr, never fatal — a
/// read-only filesystem must not fail the bench run itself.
pub fn write_summary() {
    let path = std::env::var("BENCH_SUMMARY_PATH").unwrap_or_else(|_| "bench-summary.json".into());
    if path == "-" {
        return;
    }
    let fresh = RESULTS.lock().expect("results lock").clone();
    if fresh.is_empty() {
        return;
    }
    let mut merged: Vec<SummaryRecord> = std::fs::read_to_string(&path)
        .map(|text| parse_summary(&text))
        .unwrap_or_default();
    merged.retain(|old| !fresh.iter().any(|new| new.id == old.id));
    merged.extend(fresh);
    match std::fs::write(&path, render_json(&merged)) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The top-level harness object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with criterion's generated main.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// A standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F, N>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        N: std::fmt::Display,
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (report is emitted eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
/// After every group has run, the collected results are written as
/// machine-readable JSON via [`write_summary`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6); // warm-up + 5 samples
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut b = Bencher::new(3);
        let mut made = 0u32;
        b.iter_batched(
            || {
                made += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(made, 4);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("h", 7), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("xtree", 12).to_string(), "xtree/12");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn summary_collects_reported_benchmarks_as_json() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("summary_test_group");
            g.sample_size(2);
            g.bench_function("workload_n100/shards4", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        let json = summary_json();
        // The record carries the full id and all four measurements.
        let line = json
            .lines()
            .find(|l| l.contains("summary_test_group/workload_n100/shards4"))
            .expect("summary contains the reported bench");
        for key in [
            "\"id\":",
            "\"median_ns\":",
            "\"min_ns\":",
            "\"max_ns\":",
            "\"samples\": 2",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape_json("plain/id_1"), "plain/id_1");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }

    #[test]
    fn parse_summary_roundtrips_render() {
        let records = vec![
            SummaryRecord {
                id: "group/bench/shards4".into(),
                median_ns: 123_456,
                min_ns: 100_000,
                max_ns: 200_000,
                samples: 10,
            },
            SummaryRecord {
                id: "other/bench".into(),
                median_ns: 7,
                min_ns: 6,
                max_ns: 8,
                samples: 3,
            },
        ];
        assert_eq!(parse_summary(&render_json(&records)), records);
        // Garbage degrades to empty, never panics.
        assert!(parse_summary("not json at all").is_empty());
        assert!(parse_summary("{\"id\": \"half a record\"").is_empty());
    }

    /// Serialises the tests that mutate `BENCH_SUMMARY_PATH` — env
    /// vars are process-global and the test harness runs in parallel.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn write_summary_merges_across_processes() {
        let _guard = ENV_LOCK.lock().unwrap();
        // Simulate two bench binaries sharing one summary file: the
        // second run must keep the first's records, replacing only
        // ids it re-measured.
        let dir = std::env::temp_dir().join("criterion_stub_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.json");
        let first = vec![
            SummaryRecord {
                id: "binary_a/bench1".into(),
                median_ns: 10,
                min_ns: 9,
                max_ns: 11,
                samples: 2,
            },
            SummaryRecord {
                id: "shared/bench".into(),
                median_ns: 50,
                min_ns: 40,
                max_ns: 60,
                samples: 2,
            },
        ];
        std::fs::write(&path, render_json(&first)).unwrap();
        record(SummaryRecord {
            id: "shared/bench".into(),
            median_ns: 99,
            min_ns: 98,
            max_ns: 100,
            samples: 5,
        });
        std::env::set_var("BENCH_SUMMARY_PATH", &path);
        write_summary();
        std::env::remove_var("BENCH_SUMMARY_PATH");
        let merged = parse_summary(&std::fs::read_to_string(&path).unwrap());
        let a = merged.iter().find(|r| r.id == "binary_a/bench1").unwrap();
        assert_eq!(a.median_ns, 10, "foreign record kept");
        let shared = merged.iter().find(|r| r.id == "shared/bench").unwrap();
        assert_eq!(shared.median_ns, 99, "re-measured record replaced");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_summary_respects_env_path() {
        let _guard = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("criterion_stub_summary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        record(SummaryRecord {
            id: "env_path_test/bench".into(),
            median_ns: 10,
            min_ns: 9,
            max_ns: 11,
            samples: 3,
        });
        // SAFETY-free std env mutation is test-local; the var is
        // removed again below.
        std::env::set_var("BENCH_SUMMARY_PATH", &path);
        write_summary();
        std::env::remove_var("BENCH_SUMMARY_PATH");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("env_path_test/bench"));
        std::fs::remove_file(&path).ok();
    }
}
