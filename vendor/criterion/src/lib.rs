//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple but honest measurement
//! loop: warm-up, then `sample_size` timed samples whose per-iteration
//! median, min and max are reported to stdout.
//!
//! No statistics engine, no plotting, no saved baselines. When run as
//! `cargo test` (bench targets default to `test = false` in this
//! workspace) nothing executes; `cargo bench` runs the real loop.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// How much setup output to batch per timed run (shape-compatible;
/// the stub times one routine call per sample regardless).
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    #[default]
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let min = ns[0];
        let max = ns[ns.len() - 1];
        println!(
            "{label:<40} median {}   [min {}, max {}]   ({} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            ns.len()
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The top-level harness object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with criterion's generated main.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// A standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F, N>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        N: std::fmt::Display,
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// Ends the group (report is emitted eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_collects_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6); // warm-up + 5 samples
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut b = Bencher::new(3);
        let mut made = 0u32;
        b.iter_batched(
            || {
                made += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(made, 4);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("h", 7), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran >= 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("xtree", 12).to_string(), "xtree/12");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
