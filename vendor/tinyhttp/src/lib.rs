//! Offline vendored HTTP/1.1 server stub for `hos-serve`.
//!
//! The build environment has no registry access, so instead of hyper/
//! axum/tiny_http this crate provides the smallest HTTP/1.1 surface a
//! thread-per-core query server needs, over `std::net` only:
//!
//! * [`HttpServer`] — a bound listener with a cooperative shutdown
//!   flag; any number of worker threads call [`HttpServer::accept`]
//!   concurrently (the kernel load-balances `accept(2)` across them,
//!   the poor man's SO_REUSEPORT).
//! * [`Conn`] — one client connection with HTTP/1.1 keep-alive:
//!   [`Conn::next_request`] parses the next request off the wire with
//!   hard header/body byte limits, [`Conn::respond`] writes a
//!   [`Response`] with `Content-Length` framing.
//! * [`HttpError`] — every way a request can be malformed, as a typed
//!   error the caller can map to a status code. Parsing never panics:
//!   the protocol property tests in `hos-serve` drive
//!   [`read_request`] with arbitrary byte soup.
//!
//! Divergences from a real server library: blocking I/O with a poll
//! loop on accept (no epoll registration — `accept` sleeps 1 ms
//! between polls, which bounds shutdown latency, not request
//! latency), no TLS, no chunked transfer encoding (typed error), no
//! trailers, `Expect: 100-continue` answered inline.
//!
//! The [`bin`] module adds the `hosbin` length-prefixed binary
//! framing layer; [`Conn::sniff`] routes each accepted connection to
//! one protocol or the other off its first byte.

pub mod bin;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Hard limits applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (CRLFCRLF included).
    pub max_head: usize,
    /// Maximum bytes of request body (`Content-Length` checked before
    /// any body byte is read).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// Everything that can be wrong with bytes arriving on the socket.
/// `kind` is a stable machine-readable tag the server maps into its
/// JSON error envelope.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure (includes read timeouts on stalled clients).
    Io(io::Error),
    /// The peer closed the connection mid-request.
    Truncated(&'static str),
    /// The request line is not `METHOD SP PATH SP HTTP/x.y`.
    BadRequestLine(String),
    /// A header line has no `:` separator or non-ASCII name bytes.
    BadHeader(String),
    /// Not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion(String),
    /// A protocol feature this stub deliberately lacks (chunked
    /// transfer encoding).
    Unsupported(&'static str),
    /// `Content-Length` present but not a decimal number.
    BadContentLength(String),
    /// Request line + headers exceed [`Limits::max_head`].
    HeadTooLarge(usize),
    /// Declared `Content-Length` exceeds [`Limits::max_body`].
    BodyTooLarge { declared: usize, limit: usize },
}

impl HttpError {
    /// Stable machine-readable tag for error envelopes.
    pub fn kind(&self) -> &'static str {
        match self {
            HttpError::Io(_) => "io",
            HttpError::Truncated(_) => "truncated",
            HttpError::BadRequestLine(_) => "bad_request_line",
            HttpError::BadHeader(_) => "bad_header",
            HttpError::UnsupportedVersion(_) => "unsupported_version",
            HttpError::Unsupported(_) => "unsupported",
            HttpError::BadContentLength(_) => "bad_content_length",
            HttpError::HeadTooLarge(_) => "head_too_large",
            HttpError::BodyTooLarge { .. } => "body_too_large",
        }
    }

    /// The status code a compliant server answers this error with
    /// (when the connection is still writable).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Io(_) | HttpError::Truncated(_) => 400,
            HttpError::BadRequestLine(_) | HttpError::BadHeader(_) => 400,
            HttpError::BadContentLength(_) => 400,
            HttpError::UnsupportedVersion(_) => 505,
            HttpError::Unsupported(_) => 501,
            HttpError::HeadTooLarge(_) => 431,
            HttpError::BodyTooLarge { .. } => 413,
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Truncated(what) => write!(f, "connection closed mid-{what}"),
            HttpError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header {l:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length {v:?}"),
            HttpError::HeadTooLarge(limit) => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …) as sent.
    pub method: String,
    /// Request target as sent (no percent-decoding).
    pub path: String,
    /// Header `(name, value)` pairs in wire order, names as sent.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default yes, `Connection: close` or HTTP/1.0 no).
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8, replacing invalid sequences.
    pub fn body_utf8(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// A response to write back. Framing is always `Content-Length`.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Force `Connection: close` after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            close: false,
        }
    }

    /// Marks the connection for closing after this response.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

/// Reads one request off `r`, enforcing `limits`. `Ok(None)` is a
/// clean close (EOF before the first byte of a request). Never
/// panics, whatever the bytes — the hos-serve protocol property tests
/// pin that.
pub fn read_request<R: Read>(r: &mut R, limits: &Limits) -> Result<Option<Request>, HttpError> {
    // Head: byte-at-a-time until CRLFCRLF (head sizes are tiny and the
    // transport below is a kernel-buffered socket; correctness over
    // cleverness here — readers that need speed buffer underneath).
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Truncated("headers"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
        if head.len() > limits.max_head {
            return Err(HttpError::HeadTooLarge(limits.max_head));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        // Be liberal: bare-LF line endings from hand-rolled clients.
        if head.ends_with(b"\n\n") {
            break;
        }
    }
    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.split(['\n']).map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("").to_string();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => {
            (m.to_string(), p.to_string(), v.to_string())
        }
        _ => return Err(HttpError::BadRequestLine(clip(&request_line))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(clip(&version)));
    }
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(clip(line)));
        };
        let name = name.trim();
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::BadHeader(clip(line)));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let find = |n: &str| {
        headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(n))
            .map(|(_, v)| v.as_str())
    };
    if find("Transfer-Encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(HttpError::Unsupported("chunked transfer encoding"));
    }
    let content_length = match find("Content-Length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadContentLength(clip(v)))?,
    };
    if content_length > limits.max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: limits.max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Truncated("body")
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    let keep_alive = match find("Connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
        keep_alive,
    }))
}

fn clip(s: &str) -> String {
    const MAX: usize = 120;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// A bound listener plus the cooperative shutdown flag shared by all
/// worker threads.
pub struct HttpServer {
    listener: TcpListener,
    local: SocketAddr,
    limits: Limits,
    shutdown: AtomicBool,
    read_timeout: Duration,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(HttpServer {
            listener,
            local,
            limits: Limits::default(),
            shutdown: AtomicBool::new(false),
            read_timeout: Duration::from_secs(10),
        })
    }

    /// Overrides the per-request limits (builder style).
    pub fn with_limits(mut self, limits: Limits) -> HttpServer {
        self.limits = limits;
        self
    }

    /// Overrides the socket read timeout (stalled-client eviction).
    pub fn with_read_timeout(mut self, t: Duration) -> HttpServer {
        self.read_timeout = t;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Raises the shutdown flag: every [`HttpServer::accept`] loop
    /// returns `None` within one poll interval. In-flight connections
    /// are not interrupted — callers drain them.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Accepts the next connection, returning `None` once shutdown is
    /// requested. Safe to call from many worker threads at once; the
    /// 1 ms poll interval bounds shutdown latency only (an idle accept
    /// loop costs ~1k wakeups/s, invisible next to query work).
    pub fn accept(&self) -> io::Result<Option<Conn>> {
        loop {
            if self.is_shutdown() {
                return Ok(None);
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(self.read_timeout))?;
                    stream.set_nodelay(true).ok();
                    return Ok(Some(Conn {
                        stream,
                        peer,
                        limits: self.limits,
                        pushback: None,
                        write_buf: Vec::with_capacity(256),
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Which wire protocol a sniffed connection speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Plain HTTP/1.1 — serve with [`Conn::next_request`]/[`Conn::reply`].
    Http,
    /// `hosbin` binary frames — serve with [`Conn::next_frame`]/[`Conn::write_frame`].
    Hosbin,
}

/// One accepted client connection.
pub struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    limits: Limits,
    /// A byte consumed by [`Conn::sniff`] that belongs to the first
    /// HTTP request; replayed ahead of the stream.
    pushback: Option<u8>,
    /// Reusable response staging buffer: heads (HTTP) or whole frames
    /// (hosbin) are built here, so keep-alive connections allocate
    /// once, not per response.
    write_buf: Vec<u8>,
}

/// Replays one pushed-back byte ahead of the underlying stream.
struct PushbackReader<'a> {
    first: &'a mut Option<u8>,
    inner: &'a mut TcpStream,
}

impl Read for PushbackReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(b) = self.first.take() {
            if buf.is_empty() {
                *self.first = Some(b);
                return Ok(0);
            }
            buf[0] = b;
            return Ok(1);
        }
        self.inner.read(buf)
    }
}

impl Conn {
    /// The peer address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Protocol negotiation: reads one byte off the socket. `0x00`
    /// can never start an HTTP request line, so it announces the
    /// hosbin preamble (the remaining three magic bytes are then
    /// required); anything else is pushed back for the HTTP parser.
    /// EOF before the first byte is reported as `Http` — the
    /// keep-alive loop then sees a clean close.
    pub fn sniff(&mut self) -> Result<Protocol, bin::BinError> {
        let mut b = [0u8; 1];
        loop {
            match self.stream.read(&mut b) {
                Ok(0) => return Ok(Protocol::Http),
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(bin::BinError::Io(e)),
            }
        }
        if b[0] != bin::MAGIC[0] {
            self.pushback = Some(b[0]);
            return Ok(Protocol::Http);
        }
        let mut rest = [0u8; 3];
        self.stream.read_exact(&mut rest).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                bin::BinError::Truncated("preamble")
            } else {
                bin::BinError::Io(e)
            }
        })?;
        if rest != [bin::MAGIC[1], bin::MAGIC[2], bin::MAGIC[3]] {
            return Err(bin::BinError::BadMagic([b[0], rest[0], rest[1], rest[2]]));
        }
        Ok(Protocol::Hosbin)
    }

    /// Reads the next request (keep-alive loop). `Ok(None)` = peer
    /// closed cleanly between requests.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        let mut r = PushbackReader {
            first: &mut self.pushback,
            inner: &mut self.stream,
        };
        read_request(&mut r, &self.limits)
    }

    /// Reads the next hosbin frame into `body` (capacity reused
    /// across calls). `Ok(None)` = clean close at a frame boundary.
    /// Frames are capped at [`Limits::max_body`].
    pub fn next_frame(&mut self, body: &mut Vec<u8>) -> Result<Option<u8>, bin::BinError> {
        bin::read_frame(&mut self.stream, body, self.limits.max_body)
    }

    /// Writes one hosbin frame, staged through the connection's
    /// reusable write buffer (no per-response allocation).
    pub fn write_frame(&mut self, opcode: u8, body: &[u8]) -> io::Result<()> {
        bin::write_frame(&mut self.stream, &mut self.write_buf, opcode, body)
    }

    /// Writes an HTTP response with `Content-Length` framing. The
    /// head is built in the connection's reusable write buffer — the
    /// steady-state keep-alive loop allocates nothing here.
    pub fn reply(
        &mut self,
        status: u16,
        content_type: &str,
        body: &[u8],
        close: bool,
    ) -> io::Result<()> {
        self.write_buf.clear();
        write!(
            self.write_buf,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            status,
            reason(status),
            content_type,
            body.len()
        )?;
        if close {
            self.write_buf.extend_from_slice(b"Connection: close\r\n");
        }
        self.write_buf.extend_from_slice(b"\r\n");
        self.stream.write_all(&self.write_buf)?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Writes a [`Response`] (thin wrapper over [`Conn::reply`]).
    pub fn respond(&mut self, resp: &Response) -> io::Result<()> {
        self.reply(resp.status, resp.content_type, &resp.body, resp.close)
    }

    /// Test hook: identity of the reusable write buffer, to pin the
    /// no-allocation-per-response property.
    #[doc(hidden)]
    pub fn write_buf_fingerprint(&self) -> (usize, usize) {
        (self.write_buf.as_ptr() as usize, self.write_buf.capacity())
    }
}

/// Minimal blocking HTTP/1.1 client request (one-shot, `Connection:
/// close`): sends `method path` with `body` to `addr`, returns
/// `(status, body)`. Shared by the hos-serve tests, the concurrency
/// oracle and `bench serve` — not a general client.
pub fn client_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: hos\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_client_response(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response"))
}

/// Splits a raw HTTP response into `(status, body)`.
pub fn parse_client_response(raw: &[u8]) -> Option<(u16, Vec<u8>)> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    Some((status, raw[head_end..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_post_with_body_and_keep_alive_default() {
        let req = parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn get_without_body_and_connection_close() {
        let req = parse(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive);
        // HTTP/1.0 defaults to close.
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_truncated_is_typed() {
        assert!(parse(b"").unwrap().is_none());
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHos"),
            Err(HttpError::Truncated("headers"))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Truncated("body"))
        ));
    }

    #[test]
    fn malformed_inputs_are_typed_errors_never_panics() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/9.9\r\n\r\n"),
            Err(HttpError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(HttpError::BadContentLength(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Unsupported(_))
        ));
        // Extra token on the request line.
        assert!(matches!(
            parse(b"GET / HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
    }

    #[test]
    fn limits_are_enforced() {
        let limits = Limits {
            max_head: 64,
            max_body: 8,
        };
        let mut big_head = b"GET /".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', 100));
        assert!(matches!(
            read_request(&mut Cursor::new(&big_head), &limits),
            Err(HttpError::HeadTooLarge(64))
        ));
        let r = read_request(
            &mut Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"),
            &limits,
        );
        assert!(matches!(
            r,
            Err(HttpError::BodyTooLarge {
                declared: 9,
                limit: 8
            })
        ));
    }

    #[test]
    fn error_kinds_and_statuses_are_stable() {
        let cases: Vec<(HttpError, &str, u16)> = vec![
            (HttpError::Truncated("body"), "truncated", 400),
            (
                HttpError::BadRequestLine("x".into()),
                "bad_request_line",
                400,
            ),
            (HttpError::HeadTooLarge(1), "head_too_large", 431),
            (
                HttpError::BodyTooLarge {
                    declared: 2,
                    limit: 1,
                },
                "body_too_large",
                413,
            ),
            (HttpError::Unsupported("x"), "unsupported", 501),
            (
                HttpError::UnsupportedVersion("x".into()),
                "unsupported_version",
                505,
            ),
        ];
        for (e, kind, status) in cases {
            assert_eq!(e.kind(), kind);
            assert_eq!(e.status(), status);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn server_roundtrip_and_shutdown() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let server = std::sync::Arc::new(server);
        let s2 = std::sync::Arc::clone(&server);
        let worker = std::thread::spawn(move || {
            let mut served = 0usize;
            while let Some(mut conn) = s2.accept().unwrap() {
                while let Ok(Some(req)) = conn.next_request() {
                    let keep = req.keep_alive;
                    let body = format!("echo:{}:{}", req.path, req.body_utf8());
                    conn.respond(&Response::text(200, body)).unwrap();
                    served += 1;
                    if !keep {
                        break;
                    }
                }
            }
            served
        });
        let (status, body) = client_request(addr, "POST", "/x", b"hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"echo:/x:hello");
        server.shutdown();
        let served = worker.join().unwrap();
        assert_eq!(served, 1);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = std::sync::Arc::new(HttpServer::bind("127.0.0.1:0").unwrap());
        let addr = server.local_addr();
        let s2 = std::sync::Arc::clone(&server);
        let worker = std::thread::spawn(move || {
            let mut served = 0usize;
            while let Some(mut conn) = s2.accept().unwrap() {
                while let Ok(Some(req)) = conn.next_request() {
                    let keep = req.keep_alive;
                    conn.respond(&Response::text(200, req.body.clone()))
                        .unwrap();
                    served += 1;
                    if !keep {
                        break;
                    }
                }
            }
            served
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        for i in 0..3 {
            let body = format!("req{i}");
            let last = i == 2;
            let head = format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n{}\r\n",
                body.len(),
                if last { "Connection: close\r\n" } else { "" }
            );
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(body.as_bytes()).unwrap();
        }
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert_eq!(text.matches("200 OK").count(), 3);
        assert!(text.ends_with("req2"));
        server.shutdown();
        assert_eq!(worker.join().unwrap(), 3);
    }

    /// Satellite pin: a keep-alive connection must not allocate per
    /// response. After the first reply warms the buffer, its pointer
    /// and capacity stay put across subsequent replies.
    #[test]
    fn keep_alive_reuses_the_write_buffer() {
        let server = std::sync::Arc::new(HttpServer::bind("127.0.0.1:0").unwrap());
        let addr = server.local_addr();
        let s2 = std::sync::Arc::clone(&server);
        let worker = std::thread::spawn(move || {
            let mut conn = s2.accept().unwrap().unwrap();
            let mut fingerprints = Vec::new();
            while let Ok(Some(req)) = conn.next_request() {
                let keep = req.keep_alive;
                conn.reply(200, "text/plain; charset=utf-8", &req.body, !keep)
                    .unwrap();
                fingerprints.push(conn.write_buf_fingerprint());
                if !keep {
                    break;
                }
            }
            fingerprints
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        for i in 0..4 {
            let body = format!("r{i}");
            let last = i == 3;
            let head = format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n{}\r\n",
                body.len(),
                if last { "Connection: close\r\n" } else { "" }
            );
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(body.as_bytes()).unwrap();
        }
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        server.shutdown();
        let fingerprints = worker.join().unwrap();
        assert_eq!(fingerprints.len(), 4);
        // Identical (ptr, capacity) after warm-up: zero per-response
        // allocations on the reply path.
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "write buffer reallocated: {fingerprints:?}"
        );
    }

    /// Protocol negotiation: the same listener serves HTTP and hosbin
    /// by sniffing the first byte, and the sniffed byte is replayed
    /// to the HTTP parser losslessly.
    #[test]
    fn sniff_routes_http_and_hosbin_on_one_listener() {
        let server = std::sync::Arc::new(HttpServer::bind("127.0.0.1:0").unwrap());
        let addr = server.local_addr();
        let s2 = std::sync::Arc::clone(&server);
        let worker = std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            let mut body = Vec::new();
            while let Some(mut conn) = s2.accept().unwrap() {
                match conn.sniff() {
                    Ok(Protocol::Http) => {
                        while let Ok(Some(req)) = conn.next_request() {
                            let keep = req.keep_alive;
                            conn.respond(&Response::text(200, req.path.clone().into_bytes()))
                                .unwrap();
                            outcomes.push(format!("http:{}", req.path));
                            if !keep {
                                break;
                            }
                        }
                    }
                    Ok(Protocol::Hosbin) => {
                        while let Ok(Some(op)) = conn.next_frame(&mut body) {
                            conn.write_frame(op | 0x80, &body).unwrap();
                            outcomes.push(format!("bin:0x{op:02x}"));
                        }
                    }
                    Err(e) => outcomes.push(format!("err:{}", e.kind())),
                }
            }
            outcomes
        });

        // HTTP client — first byte 'G' must be replayed to the parser.
        let (status, resp) = client_request(addr, "GET", "/hello", b"").unwrap();
        assert_eq!(status, 200);
        assert_eq!(resp, b"/hello");

        // hosbin client — echo server answers op | 0x80.
        let mut cli = bin::BinClient::connect(addr).unwrap();
        let (op, body) = cli.call(0x07, b"ping").unwrap();
        assert_eq!(op, 0x87);
        assert_eq!(body, b"ping");
        drop(cli);

        // Bad magic is a typed error at the sniff layer. The blocking
        // read_to_end only returns once the server closes the socket,
        // which happens after the outcome is recorded — no race.
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0x00, b'X', b'Y', b'Z']).unwrap();
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink);
        drop(raw);

        server.shutdown();
        let outcomes = worker.join().unwrap();
        assert!(
            outcomes.contains(&"http:/hello".to_string()),
            "{outcomes:?}"
        );
        assert!(outcomes.contains(&"bin:0x07".to_string()), "{outcomes:?}");
        assert!(
            outcomes.contains(&"err:bad_magic".to_string()),
            "{outcomes:?}"
        );
    }
}
