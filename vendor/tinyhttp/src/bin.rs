//! `hosbin` — a length-prefixed binary framing layer beside HTTP.
//!
//! Wire format, little-endian throughout:
//!
//! ```text
//! connection preamble:  0x00 'H' 'S' 'B'          (once, client → server)
//! frame:                u32 len | u8 opcode | body  (len counts opcode+body, so len >= 1)
//! ```
//!
//! The preamble's first byte is `0x00`, which can never start a valid
//! HTTP request line (method tokens are ASCII graphic), so a server
//! can sniff one byte off an accepted socket and route the connection
//! to either protocol — one listener, two wire formats. All `f64`s
//! travel as raw IEEE-754 bits ([`f64::to_bits`]), which makes binary
//! replies bit-exact by construction — no shortest-round-trip Display
//! involved.
//!
//! The module deliberately knows nothing about hos-serve's opcodes:
//! it moves opaque `(opcode, body)` frames. [`WireReader`] and the
//! `put_*` helpers are the zero-allocation primitive layer both sides
//! encode with; [`BinClient`] is a blocking client that supports
//! pipelining (send many frames, then read the in-order replies).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Connection preamble announcing the binary protocol. Starts with a
/// byte no HTTP method can start with.
pub const MAGIC: [u8; 4] = [0x00, b'H', b'S', b'B'];

/// Everything that can be wrong with bytes arriving on a hosbin
/// connection. `kind` is a stable machine-readable tag mirroring
/// [`crate::HttpError::kind`].
#[derive(Debug)]
pub enum BinError {
    /// Transport failure (includes read timeouts on stalled clients).
    Io(io::Error),
    /// The peer closed the connection mid-frame.
    Truncated(&'static str),
    /// The connection preamble was not [`MAGIC`].
    BadMagic([u8; 4]),
    /// A frame declared `len == 0` (every frame carries an opcode).
    EmptyFrame,
    /// A frame declared more bytes than the configured limit.
    FrameTooLarge { declared: usize, limit: usize },
    /// An opcode the server does not implement.
    UnknownOpcode(u8),
    /// The frame body does not decode as the opcode's payload.
    BadBody(String),
}

impl BinError {
    /// Stable machine-readable tag for error envelopes.
    pub fn kind(&self) -> &'static str {
        match self {
            BinError::Io(_) => "io",
            BinError::Truncated(_) => "truncated",
            BinError::BadMagic(_) => "bad_magic",
            BinError::EmptyFrame => "empty_frame",
            BinError::FrameTooLarge { .. } => "frame_too_large",
            BinError::UnknownOpcode(_) => "unknown_opcode",
            BinError::BadBody(_) => "bad_body",
        }
    }

    /// The status a server maps this error to (mirrors the HTTP
    /// envelope so the differential oracle can compare both paths).
    pub fn status(&self) -> u16 {
        match self {
            BinError::Io(_) | BinError::Truncated(_) => 400,
            BinError::BadMagic(_) | BinError::EmptyFrame => 400,
            BinError::FrameTooLarge { .. } => 413,
            BinError::UnknownOpcode(_) => 404,
            BinError::BadBody(_) => 400,
        }
    }

    /// Whether the frame boundary is still intact after this error —
    /// the frame was fully consumed and the connection can keep
    /// serving (unknown opcode, undecodable body). Transport and
    /// framing errors are fatal for the connection.
    pub fn recoverable(&self) -> bool {
        matches!(self, BinError::UnknownOpcode(_) | BinError::BadBody(_))
    }
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "i/o: {e}"),
            BinError::Truncated(what) => write!(f, "connection closed mid-{what}"),
            BinError::BadMagic(m) => write!(f, "bad connection preamble {m:02x?}"),
            BinError::EmptyFrame => write!(f, "zero-length frame"),
            BinError::FrameTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared frame of {declared} bytes exceeds limit {limit}"
                )
            }
            BinError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            BinError::BadBody(msg) => write!(f, "bad frame body: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Reads one frame into `body` (capacity reused across calls).
/// Returns the opcode, or `Ok(None)` on clean EOF at a frame
/// boundary. Never panics, whatever the bytes — the hos-serve binary
/// protocol property tests pin that.
pub fn read_frame<R: Read>(
    r: &mut R,
    body: &mut Vec<u8>,
    max_frame: usize,
) -> Result<Option<u8>, BinError> {
    let mut len4 = [0u8; 4];
    // First byte distinguishes clean close from truncation.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len4[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(BinError::Truncated("length prefix"));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(BinError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 {
        return Err(BinError::EmptyFrame);
    }
    if len > max_frame {
        return Err(BinError::FrameTooLarge {
            declared: len,
            limit: max_frame,
        });
    }
    let mut op = [0u8; 1];
    read_full(r, &mut op, "opcode")?;
    body.clear();
    body.resize(len - 1, 0);
    read_full(r, body, "body")?;
    Ok(Some(op[0]))
}

fn read_full<R: Read>(r: &mut R, buf: &mut [u8], what: &'static str) -> Result<(), BinError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            BinError::Truncated(what)
        } else {
            BinError::Io(e)
        }
    })
}

/// Writes one frame. `scratch` is a reusable staging buffer so the
/// length prefix, opcode and body go out in a single `write_all` with
/// no allocation on the hot path.
pub fn write_frame<W: Write>(
    w: &mut W,
    scratch: &mut Vec<u8>,
    opcode: u8,
    body: &[u8],
) -> io::Result<()> {
    scratch.clear();
    let len = (body.len() as u64 + 1).min(u32::MAX as u64) as u32;
    scratch.extend_from_slice(&len.to_le_bytes());
    scratch.push(opcode);
    scratch.extend_from_slice(body);
    w.write_all(scratch)?;
    w.flush()
}

// ---------------------------------------------------------------- wire

/// Cursor over a frame body; every accessor is bounds-checked and
/// returns a typed error instead of panicking.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::BadBody(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, BinError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u16(&mut self, what: &str) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// An `f64` as raw IEEE-754 bits — decode is bit-exact.
    pub fn f64(&mut self, what: &str) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<&'a str, BinError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| BinError::BadBody(format!("{what}: invalid UTF-8")))
    }

    /// Asserts the body is fully consumed (trailing garbage is a
    /// decode error, not silently ignored).
    pub fn done(&self) -> Result<(), BinError> {
        if self.remaining() != 0 {
            return Err(BinError::BadBody(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Encode helpers: append primitives to a reusable scratch buffer.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// -------------------------------------------------------------- client

/// Blocking hosbin client over one persistent connection. Replies
/// come back in request order (the server processes a connection's
/// frames sequentially), so pipelining is just "send k frames, then
/// read k replies" — [`BinClient::send`] and [`BinClient::recv`] are
/// the two halves, [`BinClient::call`] the one-shot composition.
pub struct BinClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wscratch: Vec<u8>,
    max_frame: usize,
}

impl BinClient {
    /// Connects and writes the protocol preamble.
    pub fn connect(addr: SocketAddr) -> io::Result<BinClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.write_all(&MAGIC)?;
        Ok(BinClient {
            stream,
            rbuf: Vec::with_capacity(4096),
            wscratch: Vec::with_capacity(4096),
            max_frame: 64 * 1024 * 1024,
        })
    }

    /// Sends one frame without waiting for the reply (pipelining).
    pub fn send(&mut self, opcode: u8, body: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, &mut self.wscratch, opcode, body)
    }

    /// Reads the next reply frame; borrows the internal reusable
    /// buffer. EOF mid-stream is a typed error (the server never
    /// half-answers a frame).
    pub fn recv(&mut self) -> Result<(u8, &[u8]), BinError> {
        match read_frame(&mut self.stream, &mut self.rbuf, self.max_frame)? {
            Some(op) => Ok((op, &self.rbuf)),
            None => Err(BinError::Truncated("reply stream")),
        }
    }

    /// One request, one reply (body copied out).
    pub fn call(&mut self, opcode: u8, body: &[u8]) -> Result<(u8, Vec<u8>), BinError> {
        self.send(opcode, body)?;
        let (op, b) = self.recv()?;
        Ok((op, b.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_reuses_buffers() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut wire, &mut scratch, 0x42, b"hello").unwrap();
        write_frame(&mut wire, &mut scratch, 0x07, b"").unwrap();
        let mut c = Cursor::new(&wire[..]);
        let mut body = Vec::new();
        assert_eq!(read_frame(&mut c, &mut body, 1024).unwrap(), Some(0x42));
        assert_eq!(body, b"hello");
        let cap_ptr = body.as_ptr();
        assert_eq!(read_frame(&mut c, &mut body, 1024).unwrap(), Some(0x07));
        assert!(body.is_empty());
        // The body buffer was reused, not reallocated.
        assert_eq!(body.as_ptr(), cap_ptr);
        assert_eq!(read_frame(&mut c, &mut body, 1024).unwrap(), None);
    }

    #[test]
    fn framing_errors_are_typed() {
        let mut body = Vec::new();
        // Zero-length frame.
        let e = read_frame(&mut Cursor::new(&[0, 0, 0, 0][..]), &mut body, 10).unwrap_err();
        assert!(matches!(e, BinError::EmptyFrame));
        assert_eq!(e.kind(), "empty_frame");
        // Oversized declaration, checked before any body byte is read.
        let e = read_frame(&mut Cursor::new(&[255, 255, 255, 255][..]), &mut body, 10).unwrap_err();
        assert!(matches!(e, BinError::FrameTooLarge { .. }));
        assert_eq!(e.status(), 413);
        // Truncated length prefix and truncated body.
        let e = read_frame(&mut Cursor::new(&[5, 0][..]), &mut body, 10).unwrap_err();
        assert!(matches!(e, BinError::Truncated("length prefix")));
        let e = read_frame(&mut Cursor::new(&[5, 0, 0, 0, 9, 1][..]), &mut body, 10).unwrap_err();
        assert!(matches!(e, BinError::Truncated("body")));
        assert!(!e.recoverable());
        assert!(BinError::UnknownOpcode(9).recoverable());
    }

    #[test]
    fn wire_reader_is_bounds_checked() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 513);
        put_u32(&mut out, 70_000);
        put_u64(&mut out, u64::MAX);
        put_f64(&mut out, -0.0);
        put_str(&mut out, "héllo");
        let mut r = WireReader::new(&out);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 513);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str("f").unwrap(), "héllo");
        r.done().unwrap();
        assert!(r.u8("past end").is_err());
        // Trailing garbage is a typed error.
        let mut r = WireReader::new(&[1, 2]);
        r.u8("x").unwrap();
        assert!(matches!(r.done(), Err(BinError::BadBody(_))));
    }
}
