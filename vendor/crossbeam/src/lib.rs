//! Offline stand-in for the `crossbeam` crate: the `scope` API only,
//! implemented over `std::thread::scope` (which did not exist when
//! crossbeam's scoped threads were designed, and subsumes them today).
//!
//! Semantics difference vs. real crossbeam: a panicking child thread
//! propagates the panic out of [`scope`] (std behaviour) instead of
//! being captured into the returned `Result`. Every call site in this
//! workspace `.expect`s the result, so the observable behaviour — test
//! failure with the child's panic message — is identical.

use std::any::Any;

/// Spawns scoped threads that may borrow from the caller's stack.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// A scope handle; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread bound to the scope. The closure receives the
    /// scope (crossbeam's signature) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Join handle for a scoped thread; mirrors crossbeam's.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// `crossbeam::thread` module alias, matching the real layout.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(3) {
                s.spawn(|_| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn spawn_returns_joinable_handle() {
        let out = super::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
