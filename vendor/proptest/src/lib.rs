//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use:
//! range strategies, `Just`, tuples, `prop::collection::vec`,
//! `.prop_map`, `prop_oneof!`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   (via `Debug`) and the deterministic case seed, but is not
//!   minimised.
//! * **Deterministic seeding.** Cases derive from a fixed global seed
//!   hashed with the test's module path and name, so failures
//!   reproduce across runs and machines. Set `PROPTEST_SEED` to an
//!   integer to explore a different stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    /// Rejection or failure raised inside a test case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: skip this case, draw another.
        Reject(String),
        /// `prop_assert!` failed: abort the whole test.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runner configuration (the `cases` subset).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for a pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    use super::*;

    /// A generator of values for property tests. Object safe; no
    /// shrinking machinery.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates from `self`, then from the strategy `f` returns.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// `prop_filter` combinator.
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) pred: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive values",
                self.whence
            );
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut StdRng) -> V {
            use rand::Rng;
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Element-count specification for [`vec`]: fixed or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` facade module, mirroring real proptest's layout.
pub mod prop {
    pub use super::collection;
    pub use super::strategy;
}

pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::TestCaseError;
    pub use super::ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derives the per-test base seed: fixed default (or `PROPTEST_SEED`)
/// hashed with the test's identity so distinct tests explore distinct
/// streams but each is reproducible.
pub fn base_seed(test_ident: &str) -> u64 {
    let global: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x484f_535f_4d49_4e45); // "HOS_MINE"
    let mut h: u64 = 0xcbf29ce484222325 ^ global;
    for b in test_ident.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the RNG for one case.
pub fn case_rng(test_ident: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(base_seed(test_ident).wrapping_add(case as u64))
}

/// Uniform choice among strategies (boxed internally).
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    format!("{} (at {}:{})", format!($($fmt)*), file!(), line!()),
                ),
            );
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The property-test declaration macro. Parses an optional
/// `#![proptest_config(...)]` header followed by test functions whose
/// parameters are `[mut] name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let ident = concat!(module_path!(), "::", stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while passed < config.cases {
                let mut rng = $crate::case_rng(ident, case);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(rng, $body, $($params)*);
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{ident}: too many prop_assume! rejections \
                                 ({rejected}) before {} cases passed",
                                config.cases
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "{ident}: property failed on case {case} \
                             (seed {}): {msg}",
                            $crate::base_seed(ident).wrapping_add(case as u64),
                            msg = msg
                        );
                    }
                }
                case += 1;
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block,) => { $body };
    ($rng:ident, $body:block) => { $body };
    ($rng:ident, $body:block, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?)
    };
    ($rng:ident, $body:block, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $body $(, $($rest)*)?)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Color {
        Red,
        Green,
        Gray(f64),
    }

    fn arb_color() -> impl Strategy<Value = Color> {
        prop_oneof![
            Just(Color::Red),
            Just(Color::Green),
            (0.0f64..1.0).prop_map(Color::Gray),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10, m in 3u64..=9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((3..=9).contains(&m));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..10, 4), w in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((2..6).contains(&w.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map(c in arb_color(), pair in (0u8..4, 10u8..14)) {
            match c {
                Color::Red | Color::Green => {}
                Color::Gray(g) => prop_assert!((0.0..1.0).contains(&g)),
            }
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
        }

        #[test]
        fn assume_rejects_cleanly(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "only even values reach here, got {}", n);
        }

        #[test]
        fn mut_binding_works(mut v in prop::collection::vec(0i32..100, 1..20)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let a = crate::base_seed("mod::test_a");
        let b = crate::base_seed("mod::test_a");
        let c = crate::base_seed("mod::test_b");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
