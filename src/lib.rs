//! # hos-miner — umbrella crate
//!
//! Re-exports the public API of the HOS-Miner workspace so examples,
//! integration tests and downstream users need a single dependency.
//!
//! See `DESIGN.md` for the system inventory and `README.md` for a
//! quickstart. The heavy lifting lives in the member crates:
//!
//! * [`data`] — datasets, subspaces, metrics, synthetic workloads
//! * [`index`] — k-NN engines (linear scan, X-tree)
//! * [`lattice`] — subspace lattice bookkeeping and saving factors
//! * [`core`] — outlying degree, learning, dynamic search, filtering
//! * [`baselines`] — exhaustive search, evolutionary search, LOF & co.

pub use hos_baselines as baselines;
pub use hos_core as core;
pub use hos_data as data;
pub use hos_index as index;
pub use hos_lattice as lattice;

pub use hos_core::{HosMiner, HosMinerConfig, QueryOutcome};
pub use hos_data::{Dataset, Metric, Subspace};
