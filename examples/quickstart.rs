//! Quickstart: generate data with planted subspace outliers, fit
//! HOS-Miner, and ask for the outlying subspaces of a few points.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::synth::planted::{generate, PlantedSpec};
use hos_miner::data::table::{fmt_f64, Table};
use hos_miner::Subspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic workload: 2000 background points in 8 dimensions,
    //    plus three outliers planted in known subspaces.
    let spec = PlantedSpec {
        n_background: 2000,
        d: 8,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 100.0,
        targets: vec![
            Subspace::from_dims(&[0, 1]),
            Subspace::from_dims(&[4]),
            Subspace::from_dims(&[2, 5, 7]),
        ],
        shift_sigmas: 12.0,
        seed: 7,
    };
    let workload = generate(&spec)?;
    println!(
        "dataset: {} points, {} dims; planted outliers: {:?}",
        workload.dataset.len(),
        workload.dataset.dim(),
        workload.outlier_ids()
    );

    // 2. Fit: index, derive the threshold T from the 95th percentile of
    //    full-space OD, and run the sampling-based learning process.
    let config = HosMinerConfig {
        k: 5,
        threshold: ThresholdPolicy::FullSpaceQuantile {
            q: 0.95,
            sample: 200,
        },
        sample_size: 20,
        ..HosMinerConfig::default()
    };
    let miner = HosMiner::fit(workload.dataset.clone(), config)?;
    println!(
        "threshold T = {:.3} (95th pct of full-space OD)",
        miner.threshold()
    );

    // 3. Query every planted outlier and one background point.
    let mut table = Table::new(vec![
        "point",
        "planted",
        "minimal outlying subspaces",
        "OD evals",
        "lattice",
        "pruned",
    ]);
    let mut queries: Vec<(usize, String)> = workload
        .outliers
        .iter()
        .map(|o| (o.id, o.subspace.to_string()))
        .collect();
    queries.push((0, "-".to_string()));

    for (id, planted) in queries {
        let out = miner.query_id(id)?;
        let minimal = if out.minimal.is_empty() {
            "(none — not an outlier)".to_string()
        } else {
            out.minimal
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        table.push(vec![
            format!("#{id}"),
            planted,
            minimal,
            out.stats.od_evals.to_string(),
            out.stats.lattice_size.to_string(),
            format!(
                "{}",
                out.stats.pruned_outlier + out.stats.pruned_non_outlier
            ),
        ]);
    }
    println!("\n{}", table.render());

    // 4. The search cost story: the lattice has 2^8 - 1 = 255
    //    subspaces but the dynamic search evaluates only a fraction.
    let out = miner.query_id(workload.outlier_ids()[0])?;
    println!(
        "evaluated fraction for point #{}: {}",
        workload.outlier_ids()[0],
        fmt_f64(out.stats.evaluated_fraction())
    );
    Ok(())
}
