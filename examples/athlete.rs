//! The paper's motivating application (§1): "in the case of designing
//! a training program for an athlete, it is critical to identify the
//! specific subspace(s) in which an athlete deviates from his or her
//! teammates in the daily training performances."
//!
//! We simulate a squad of athletes measured on six training metrics.
//! One athlete has an unremarkable profile in every single metric but
//! an anomalous *combination* of endurance vs. recovery — exactly the
//! kind of weakness a per-metric report would miss.
//!
//! Run with:
//! ```sh
//! cargo run --release --example athlete
//! ```

use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::normalize::{normalize, NormKind};
use hos_miner::data::synth::normal;
use hos_miner::data::table::Table;
use hos_miner::data::{Dataset, DatasetBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const METRICS: [&str; 6] = [
    "sprint_s",
    "endurance_km",
    "strength_kg",
    "recovery_h",
    "agility",
    "accuracy",
];

fn squad(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new().with_names(METRICS.iter().map(|s| s.to_string()).collect());
    for _ in 0..240 {
        // Endurance and recovery are physiologically coupled: athletes
        // with more endurance volume need proportionally more recovery.
        let endurance = normal(&mut rng, 60.0, 8.0);
        let recovery = 0.2 * endurance + normal(&mut rng, 0.0, 0.8);
        let row = vec![
            normal(&mut rng, 11.0, 0.5),  // sprint
            endurance,                    // endurance
            normal(&mut rng, 95.0, 12.0), // strength
            recovery,                     // recovery
            normal(&mut rng, 7.0, 1.0),   // agility
            normal(&mut rng, 0.7, 0.08),  // accuracy
        ];
        b.push_row(&row).expect("valid row");
    }
    b.build().expect("valid squad")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut data = squad(11);
    // The athlete under review: every metric individually within the
    // squad's normal range, but recovery is far too short for that
    // endurance volume (broken coupling).
    let athlete = vec![11.1, 76.0, 97.0, 8.0, 7.2, 0.71];
    let athlete_id = data.push_row(&athlete)?;

    // The metrics live on wildly different scales (seconds vs km vs
    // kg), so distances must be computed on z-scores — otherwise the
    // widest column drowns every other signal. This is standard
    // preprocessing for any global-distance-threshold method.
    let (zdata, _norm) = normalize(&data, NormKind::ZScore)?;

    let miner = HosMiner::fit(
        zdata,
        HosMinerConfig {
            k: 6,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 240,
            },
            sample_size: 20,
            ..HosMinerConfig::default()
        },
    )?;

    println!(
        "squad of {} athletes, metrics: {:?}\n",
        data.len() - 1,
        METRICS
    );
    let mut profile = Table::new(vec!["metric", "athlete", "squad mean", "squad std"]);
    for (c, name) in METRICS.iter().enumerate() {
        let col: Vec<f64> = data.column(c).take(data.len() - 1).collect();
        profile.push(vec![
            name.to_string(),
            format!("{:.2}", athlete[c]),
            format!("{:.2}", hos_miner::data::stats::mean(&col)),
            format!("{:.2}", hos_miner::data::stats::std_dev(&col)),
        ]);
    }
    println!("{}", profile.render());

    let out = miner.query_id(athlete_id)?;
    if out.minimal.is_empty() {
        println!("No deviating subspace found — profile consistent with the squad.");
    } else {
        println!("Deviating metric combinations (minimal outlying subspaces):");
        for s in &out.minimal {
            let names: Vec<&str> = s.dims().map(|d| METRICS[d]).collect();
            println!("  {s}  ->  {}", names.join(" + "));
        }
        println!(
            "\nTraining focus: the athlete's weakness is the *combination* above, \
             not any single metric (each marginal is within the normal range)."
        );
    }
    println!(
        "\nsearch cost: {} OD evaluations over a lattice of {} subspaces",
        out.stats.od_evals, out.stats.lattice_size
    );
    Ok(())
}
