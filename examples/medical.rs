//! The paper's second motivating application (§1): "In a medical
//! system, it is useful for the Doctors to identify from voluminous
//! medical data the subspaces in which a particular patient is found
//! abnormal and therefore a corresponding medical treatment can be
//! provided in a timely manner."
//!
//! We simulate a cohort of patients with eight routine lab values,
//! including two physiologically coupled pairs, then run a full-cohort
//! *scan*: rank patients by full-space outlying degree and report, for
//! each flagged patient, exactly which lab combination is abnormal.
//!
//! Run with:
//! ```sh
//! cargo run --release --example medical
//! ```

use hos_miner::core::{scan_outliers, HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::normalize::{normalize, NormKind};
use hos_miner::data::synth::normal;
use hos_miner::data::table::Table;
use hos_miner::data::{Dataset, DatasetBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LABS: [&str; 8] = [
    "hemoglobin",
    "hematocrit", // tightly coupled (~3:1 ratio)
    "sodium",
    "chloride", // coupled electrolytes
    "glucose",
    "creatinine",
    "wbc",
    "platelets",
];

/// A cohort of healthy-ish patients with realistic couplings.
fn cohort(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DatasetBuilder::new().with_names(LABS.iter().map(|s| s.to_string()).collect());
    for _ in 0..n {
        let hgb = normal(&mut rng, 14.0, 1.2);
        let hct = hgb * 3.0 + normal(&mut rng, 0.0, 0.6);
        let na = normal(&mut rng, 140.0, 2.5);
        let cl = na - 36.0 + normal(&mut rng, 0.0, 1.2);
        let row = vec![
            hgb,
            hct,
            na,
            cl,
            normal(&mut rng, 95.0, 12.0),  // glucose
            normal(&mut rng, 0.9, 0.15),   // creatinine
            normal(&mut rng, 7.0, 1.6),    // wbc
            normal(&mut rng, 250.0, 50.0), // platelets
        ];
        b.push_row(&row).expect("valid row");
    }
    b.build().expect("valid cohort")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut data = cohort(500, 23);

    // Three patients with clinically distinct abnormalities:
    // A: classic single-lab outlier (severe hyperglycemia).
    let a = data.push_row(&[14.1, 42.5, 139.0, 103.5, 320.0, 0.9, 7.2, 240.0])?;
    // B: every lab individually plausible, but hemoglobin/hematocrit
    //    ratio broken (e.g. a lab error or recent transfusion).
    let b = data.push_row(&[11.5, 52.5, 141.0, 104.8, 98.0, 0.85, 6.8, 260.0])?;
    // C: sodium-chloride gap anomaly (acid-base disorder signature).
    let c = data.push_row(&[14.5, 43.2, 136.5, 115.5, 92.0, 1.0, 7.5, 255.0])?;

    // Lab values live on different scales: z-score first.
    let (z, _) = normalize(&data, NormKind::ZScore)?;
    let miner = HosMiner::fit(
        z,
        HosMinerConfig {
            k: 6,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.99,
                sample: 300,
            },
            sample_size: 20,
            ..HosMinerConfig::default()
        },
    )?;

    println!(
        "cohort of {} patients, {} labs; scanning for abnormal patients...\n",
        data.len(),
        LABS.len()
    );
    let report = scan_outliers(&miner, 8)?;
    let mut table = Table::new(vec![
        "patient",
        "full-space OD",
        "abnormal lab combination(s)",
    ]);
    for hit in &report.hits {
        let label = match hit.id {
            id if id == a => "A (planted: glucose)".to_string(),
            id if id == b => "B (planted: hgb/hct)".to_string(),
            id if id == c => "C (planted: na/cl)".to_string(),
            id => format!("#{id}"),
        };
        let combos: Vec<String> = hit
            .outcome
            .minimal
            .iter()
            .map(|s| {
                let names: Vec<&str> = s.dims().map(|d| LABS[d]).collect();
                names.join("+")
            })
            .collect();
        table.push(vec![
            label,
            format!("{:.2}", hit.full_od),
            combos.join("  "),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} of {} patients needed no subspace search at all (full-space OD below T = {:.2}).",
        report.skipped,
        data.len(),
        report.threshold
    );
    println!(
        "\nThe clinical payoff is the third column: patient B's labs are all within\n\
         reference ranges individually — only the hemoglobin+hematocrit *combination*\n\
         is flagged, which is what directs the follow-up."
    );
    Ok(())
}
