//! Side-by-side comparison of HOS-Miner against the baselines the
//! paper positions itself against (demo part 3 and §1):
//!
//! * the Aggarwal–Yu evolutionary sparse-subspace search — the
//!   "space → outliers" competitor;
//! * exhaustive lattice evaluation — the no-pruning upper bound;
//! * full-space detectors (LOF, top-n kNN distance) — what a
//!   subspace-blind detector reports about the same points.
//!
//! Run with:
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use hos_miner::baselines::evolutionary::EvolutionarySearch;
use hos_miner::baselines::{exhaustive_search, knn_outlier, lof, EvoConfig, ExhaustiveMode};
use hos_miner::core::od::OdMode;
use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::synth::planted::{generate, PlantedSpec};
use hos_miner::data::table::Table;
use hos_miner::Subspace;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = PlantedSpec {
        n_background: 1500,
        d: 8,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 80.0,
        targets: vec![Subspace::from_dims(&[1, 4]), Subspace::from_dims(&[6])],
        shift_sigmas: 12.0,
        seed: 3,
    };
    let w = generate(&spec)?;
    let query_id = w.outliers[0].id;
    let target = w.outliers[0].subspace;
    println!(
        "workload: {} points, d=8; examining planted outlier #{query_id} (target {target})\n",
        w.dataset.len()
    );

    // --- HOS-Miner -----------------------------------------------------
    let t0 = Instant::now();
    let miner = HosMiner::fit(
        w.dataset.clone(),
        HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 200,
            },
            sample_size: 20,
            ..HosMinerConfig::default()
        },
    )?;
    let fit_time = t0.elapsed();
    let t0 = Instant::now();
    let hos = miner.query_id(query_id)?;
    let hos_time = t0.elapsed();

    // --- Exhaustive ground truth ---------------------------------------
    let t0 = Instant::now();
    let exact = exhaustive_search(
        miner.engine(),
        w.dataset.row(query_id),
        Some(query_id),
        5,
        miner.threshold(),
        ExhaustiveMode::Full,
        OdMode::Raw,
    );
    let exact_time = t0.elapsed();

    // --- Evolutionary search (Aggarwal–Yu) ------------------------------
    let t0 = Instant::now();
    let es = EvolutionarySearch::fit(
        &w.dataset,
        EvoConfig {
            phi: 8,
            cube_dim: 2,
            population: 80,
            generations: 50,
            best_m: 12,
            seed: 1,
            ..EvoConfig::default()
        },
    );
    let cubes = es.run();
    let evo_spaces = es.outlying_subspaces_of(&cubes, w.dataset.row(query_id));
    let evo_time = t0.elapsed();

    // --- Full-space detectors -------------------------------------------
    let full = w.dataset.full_space();
    let lof_top = lof::top_lof(miner.engine(), 10, full, 5);
    let knn_top = knn_outlier::top_knn_outliers(miner.engine(), 5, full, 5);

    let fmt_spaces = |v: &[Subspace]| -> String {
        if v.is_empty() {
            "(none)".into()
        } else {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        }
    };

    let mut table = Table::new(vec![
        "method",
        "answer about point",
        "OD/space evals",
        "time",
    ]);
    table.push(vec![
        "HOS-Miner (dynamic)".to_string(),
        format!("minimal outlying: {}", fmt_spaces(&hos.minimal)),
        hos.stats.od_evals.to_string(),
        format!("{:.1?}", hos_time),
    ]);
    table.push(vec![
        "Exhaustive".to_string(),
        format!(
            "minimal outlying: {}",
            fmt_spaces(&hos_miner::core::minimal_subspaces(&exact.subspaces()))
        ),
        exact.stats.od_evals.to_string(),
        format!("{:.1?}", exact_time),
    ]);
    table.push(vec![
        "Evolutionary (A-Y)".to_string(),
        format!("sparse cubes containing point: {}", fmt_spaces(&evo_spaces)),
        format!("{} cubes", cubes.len()),
        format!("{:.1?}", evo_time),
    ]);
    table.push(vec![
        "LOF (full space)".to_string(),
        format!(
            "point rank: {}",
            lof_top
                .iter()
                .position(|&(id, _)| id == query_id)
                .map(|p| format!("#{} of top-5", p + 1))
                .unwrap_or_else(|| "not in top-5".into())
        ),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push(vec![
        "kNN-dist (full space)".to_string(),
        format!(
            "point rank: {}",
            knn_top
                .iter()
                .position(|&(id, _)| id == query_id)
                .map(|p| format!("#{} of top-5", p + 1))
                .unwrap_or_else(|| "not in top-5".into())
        ),
        "-".to_string(),
        "-".to_string(),
    ]);
    println!("{}", table.render());
    println!("(HOS-Miner fit — indexing + threshold + learning — took {fit_time:.1?})");
    println!(
        "\nNote the contrast the paper draws: the full-space detectors can only say \
         *whether* the point is an outlier; the evolutionary method finds sparse \
         regions and only incidentally attributes subspaces to points; HOS-Miner \
         answers the outlier → subspaces question directly and exactly."
    );
    Ok(())
}
