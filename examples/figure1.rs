//! Reproduction of the paper's Figure 1: the same query point `p`
//! shown in three 2-dimensional views of a high-dimensional dataset.
//! In the first view (a correlated pair of attributes) `p` is clearly
//! an outlier; in the two blob views it blends in.
//!
//! Run with:
//! ```sh
//! cargo run --release --example figure1
//! ```

use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::synth::correlated::{figure1_views, CorrelatedSpec};
use hos_miner::data::table::{ascii_scatter, fmt_f64, Table};
use hos_miner::data::Metric;
use hos_miner::index::{KnnEngine, LinearScan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = figure1_views(&CorrelatedSpec {
        n: 300,
        pairs: 3,
        correlated_pairs: vec![0],
        band_noise: 0.03,
        seed: 42,
    })?;

    let engine = LinearScan::new(fig.dataset.clone(), Metric::L2);
    let k = 5;

    println!("Figure 1 — three 2-d views of the same 6-d data; '*' is the query point p\n");
    let mut table = Table::new(vec!["view", "kind", "OD(p, view)"]);
    let views: Vec<_> = fig
        .outlying_views
        .iter()
        .map(|&v| (v, "correlated"))
        .chain(fig.inlying_views.iter().map(|&v| (v, "blob")))
        .collect();
    for &(view, kind) in &views {
        let dims = view.dim_vec();
        let pts: Vec<(f64, f64)> = fig
            .dataset
            .iter()
            .map(|(_, row)| (row[dims[0]], row[dims[1]]))
            .collect();
        let highlight = (fig.query[dims[0]], fig.query[dims[1]]);
        println!("view {view} ({kind}):");
        println!("{}", ascii_scatter(&pts, highlight, 48, 14));
        let od = engine.od(&fig.query, k, view, None);
        table.push(vec![view.to_string(), kind.to_string(), fmt_f64(od)]);
    }
    println!("{}", table.render());

    // Confirm with the full system: HOS-Miner should return exactly
    // the correlated view (or a subset of it) as minimal.
    let miner = HosMiner::fit(
        fig.dataset.clone(),
        HosMinerConfig {
            k,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.98,
                sample: 200,
            },
            sample_size: 15,
            ..HosMinerConfig::default()
        },
    )?;
    let out = miner.query_point(&fig.query)?;
    println!(
        "HOS-Miner minimal outlying subspaces of p: {}",
        out.minimal
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "(search evaluated {} of {} subspaces)",
        out.stats.od_evals, out.stats.lattice_size
    );
    Ok(())
}
