//! Keeps the README's quickstart snippet honest: this is the same
//! code, compiled and asserted.

use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::{Dataset, Subspace};

#[test]
fn readme_quickstart() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            let x = (i as f64) / 200.0;
            vec![x, x]
        })
        .collect();
    rows.push(vec![0.1, 0.9]); // breaks the x==y structure
    let data = Dataset::from_rows(&rows)?;

    let miner = HosMiner::fit(
        data,
        HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 200,
            },
            ..HosMinerConfig::default()
        },
    )?;

    let result = miner.query_id(200)?;
    assert_eq!(result.minimal, vec![Subspace::from_dims(&[0, 1])]);
    assert_eq!(result.minimal[0].to_string(), "[1,2]");

    // README "Batch queries" section: the batch API answers like the
    // single-query API, in input order.
    let outcomes = miner.query_ids(&[200, 7, 57])?;
    assert_eq!(outcomes[0].minimal, vec![Subspace::from_dims(&[0, 1])]);
    assert!(!outcomes[1].is_outlier());
    Ok(())
}
