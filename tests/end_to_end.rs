//! Cross-crate integration tests: the full HOS-Miner pipeline against
//! the exhaustive oracle, across engines, metrics and workloads.

use hos_miner::baselines::{exhaustive_search, ExhaustiveMode};
use hos_miner::core::od::OdMode;
use hos_miner::core::{minimal_subspaces, HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::normalize::{normalize, NormKind};
use hos_miner::data::synth::planted::{generate, PlantedSpec};
use hos_miner::data::synth::uniform;
use hos_miner::data::Metric;
use hos_miner::index::Engine;
use hos_miner::{Dataset, Subspace};

fn planted(seed: u64, d: usize) -> hos_miner::data::synth::planted::PlantedWorkload {
    generate(&PlantedSpec {
        n_background: 600,
        d,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 80.0,
        targets: vec![
            Subspace::from_dims(&[0, 1]),
            Subspace::from_dims(&[d - 1]),
            Subspace::from_dims(&[2, 3, 4]),
        ],
        shift_sigmas: 11.0,
        seed,
    })
    .expect("valid spec")
}

/// The headline correctness claim: the dynamic search returns exactly
/// the subspaces the exhaustive oracle returns, for dataset members
/// and external queries, on both engines.
#[test]
fn dynamic_search_equals_exhaustive_oracle() {
    let w = planted(5, 7);
    for engine in [Engine::Linear, Engine::XTree] {
        let miner = HosMiner::fit(
            w.dataset.clone(),
            HosMinerConfig {
                k: 5,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.9,
                    sample: 150,
                },
                engine,
                sample_size: 8,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        for &(id, _) in w
            .outliers
            .iter()
            .map(|o| (o.id, o.subspace))
            .collect::<Vec<_>>()
            .iter()
        {
            let got = miner.query_id(id).unwrap();
            let row: Vec<f64> = w.dataset.row(id).to_vec();
            let oracle = exhaustive_search(
                miner.engine(),
                &row,
                Some(id),
                5,
                miner.threshold(),
                ExhaustiveMode::Full,
                OdMode::Raw,
            );
            let got_spaces: Vec<Subspace> = got.outlying.iter().map(|s| s.subspace).collect();
            assert_eq!(got_spaces, oracle.subspaces(), "{engine} point {id}");
            assert_eq!(got.minimal, minimal_subspaces(&oracle.subspaces()));
        }
    }
}

/// Planted outliers are detected; their target subspace is covered by
/// the minimal frontier; most background points are clean.
#[test]
fn planted_targets_covered() {
    let w = planted(9, 8);
    let miner = HosMiner::fit(
        w.dataset.clone(),
        HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 200,
            },
            sample_size: 12,
            ..HosMinerConfig::default()
        },
    )
    .unwrap();
    let mut targets_hit = 0;
    for o in &w.outliers {
        let out = miner.query_id(o.id).unwrap();
        assert!(out.is_outlier(), "planted point {} undetected", o.id);
        // The planting is *intended* ground truth: a target can be
        // washed out when another background cluster happens to sit
        // along the shifted axis. What must always hold is consistency
        // with the measured OD (the answer set is exact).
        let od = miner
            .engine()
            .od(w.dataset.row(o.id), 5, o.subspace, Some(o.id));
        let in_answer = out.outlying.iter().any(|s| s.subspace == o.subspace);
        assert_eq!(
            in_answer,
            od >= miner.threshold(),
            "answer/OD inconsistency for target {} of point {}",
            o.subspace,
            o.id
        );
        if in_answer {
            targets_hit += 1;
        }
    }
    assert!(
        targets_hit >= 2,
        "only {targets_hit}/3 planted targets detected"
    );
    let clean = (0..50)
        .filter(|&i| !miner.query_id(i).unwrap().is_outlier())
        .count();
    assert!(clean >= 45, "only {clean}/50 background points clean");
}

/// Self-exclusion matters: querying a member by id must not let the
/// point count itself as its own nearest neighbour.
#[test]
fn member_queries_exclude_self() {
    let w = planted(13, 6);
    let miner = HosMiner::fit(
        w.dataset.clone(),
        HosMinerConfig {
            k: 3,
            threshold: ThresholdPolicy::Fixed(5.0),
            sample_size: 0,
            ..HosMinerConfig::default()
        },
    )
    .unwrap();
    let o = &w.outliers[0];
    // By id: detected (neighbours are real background points).
    let by_id = miner.query_id(o.id).unwrap();
    // By coordinates: the identical member is part of the dataset, so
    // the first neighbour is itself at distance 0, deflating the OD.
    let by_point = miner.query_point(w.dataset.row(o.id)).unwrap();
    assert!(by_id.outlying.len() >= by_point.outlying.len());
    assert!(by_id.is_outlier());
}

/// Normalisation pipeline: z-scored data flows end-to-end and external
/// queries can be mapped through the same transform.
#[test]
fn normalized_pipeline_with_external_query() {
    let ds = uniform(400, 5, 0.0, 100.0, 3).unwrap();
    let (z, norm) = normalize(&ds, NormKind::ZScore).unwrap();
    let miner = HosMiner::fit(
        z,
        HosMinerConfig {
            k: 4,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.9,
                sample: 100,
            },
            sample_size: 5,
            ..HosMinerConfig::default()
        },
    )
    .unwrap();
    // A far-out raw-space query, mapped through the fitted transform.
    let raw_query = vec![500.0, 50.0, 50.0, 50.0, 50.0];
    let zq = norm.apply_row(&raw_query).unwrap();
    let out = miner.query_point(&zq).unwrap();
    assert!(out.is_outlier());
    assert!(out.minimal.iter().any(|s| s.contains_dim(0)));
}

/// The Figure 1 workload end-to-end: minimal answer is the correlated
/// view and nothing else.
#[test]
fn figure1_pipeline() {
    use hos_miner::data::synth::correlated::{figure1_views, CorrelatedSpec};
    let fig = figure1_views(&CorrelatedSpec {
        n: 300,
        pairs: 3,
        correlated_pairs: vec![0],
        band_noise: 0.03,
        seed: 42,
    })
    .unwrap();
    let miner = HosMiner::fit(
        fig.dataset.clone(),
        HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.98,
                sample: 200,
            },
            sample_size: 10,
            ..HosMinerConfig::default()
        },
    )
    .unwrap();
    let out = miner.query_point(&fig.query).unwrap();
    assert_eq!(out.minimal, fig.outlying_views, "minimal {:?}", out.minimal);
}

/// Different metrics all produce valid (oracle-matching) results.
#[test]
fn all_metrics_agree_with_their_own_oracle() {
    let w = planted(21, 6);
    for metric in [Metric::L1, Metric::L2, Metric::LInf] {
        let miner = HosMiner::fit(
            w.dataset.clone(),
            HosMinerConfig {
                k: 4,
                metric,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.9,
                    sample: 100,
                },
                sample_size: 6,
                ..HosMinerConfig::default()
            },
        )
        .unwrap();
        let id = w.outliers[0].id;
        let got = miner.query_id(id).unwrap();
        let oracle = exhaustive_search(
            miner.engine(),
            w.dataset.row(id),
            Some(id),
            4,
            miner.threshold(),
            ExhaustiveMode::Full,
            OdMode::Raw,
        );
        let got_spaces: Vec<Subspace> = got.outlying.iter().map(|s| s.subspace).collect();
        assert_eq!(got_spaces, oracle.subspaces(), "{metric:?}");
    }
}

/// CSV round-trip feeds the miner: write a workload out, read it back,
/// get identical results.
#[test]
fn csv_roundtrip_preserves_results() {
    use hos_miner::data::csv::{read_csv, write_csv, CsvOptions};
    let w = planted(30, 5);
    let mut buf = Vec::new();
    write_csv(&w.dataset, &mut buf, ',').unwrap();
    let back: Dataset = read_csv(&buf[..], &CsvOptions::default()).unwrap();
    let cfg = HosMinerConfig {
        k: 4,
        threshold: ThresholdPolicy::Fixed(8.0),
        sample_size: 5,
        ..HosMinerConfig::default()
    };
    let a = HosMiner::fit(w.dataset.clone(), cfg).unwrap();
    let b = HosMiner::fit(back, cfg).unwrap();
    let id = w.outliers[0].id;
    assert_eq!(
        a.query_id(id).unwrap().minimal,
        b.query_id(id).unwrap().minimal
    );
}
