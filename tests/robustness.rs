//! Robustness and failure-injection tests: degenerate datasets,
//! adversarial parameter choices, and the error paths a production
//! user would hit.

use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::{Dataset, Metric};
use hos_miner::index::{Engine, KnnEngine, LinearScan, VaFile, VaFileConfig, XTree, XTreeConfig};
use hos_miner::Subspace;

fn cfg_fixed(t: f64, k: usize) -> HosMinerConfig {
    HosMinerConfig {
        k,
        threshold: ThresholdPolicy::Fixed(t),
        sample_size: 0,
        ..HosMinerConfig::default()
    }
}

#[test]
fn all_duplicate_points() {
    // Every pairwise distance is zero: nothing can be an outlier.
    let rows: Vec<Vec<f64>> = (0..30).map(|_| vec![1.0, 2.0, 3.0]).collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let miner = HosMiner::fit(ds, cfg_fixed(0.001, 3)).unwrap();
    for id in [0, 15, 29] {
        let out = miner.query_id(id).unwrap();
        assert!(!out.is_outlier(), "duplicate point {id} flagged");
    }
    // But a distant external query is outlying everywhere.
    let out = miner.query_point(&[100.0, 2.0, 3.0]).unwrap();
    assert!(out.is_outlier());
    assert_eq!(out.minimal, vec![Subspace::from_dims(&[0])]);
}

#[test]
fn constant_columns() {
    // One live column among dead ones.
    let mut rows: Vec<Vec<f64>> = (0..40).map(|i| vec![5.0, i as f64, 7.0]).collect();
    rows.push(vec![5.0, 1000.0, 7.0]);
    let ds = Dataset::from_rows(&rows).unwrap();
    let miner = HosMiner::fit(ds, cfg_fixed(50.0, 3)).unwrap();
    let out = miner.query_id(40).unwrap();
    assert_eq!(out.minimal, vec![Subspace::from_dims(&[1])]);
    // Engines survive constant columns too.
    let ds2 = miner.engine().dataset().clone();
    for engine in [Engine::XTree, Engine::VaFile] {
        let e = hos_miner::index::knn::build_engine(engine, ds2.clone(), Metric::L2);
        let nn = e.knn(&[5.0, 0.0, 7.0], 3, Subspace::full(3), None);
        assert_eq!(nn.len(), 3, "{engine}");
    }
}

#[test]
fn k_equals_dataset_minus_one() {
    let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let miner = HosMiner::fit(ds, cfg_fixed(1.0, 9)).unwrap();
    let out = miner.query_id(0).unwrap();
    // With k = n - 1 every remaining point is a neighbour; ODs are
    // large, so everything is outlying and the minimal set is level 1.
    assert!(out.is_outlier());
    assert!(out.minimal.iter().all(|s| s.dim() == 1));
}

#[test]
fn threshold_extremes() {
    let rows: Vec<Vec<f64>> = (0..50)
        .map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64])
        .collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    // Minuscule threshold: every subspace outlying, minimal = singles.
    let lo = HosMiner::fit(ds.clone(), cfg_fixed(1e-9, 3)).unwrap();
    let out = lo.query_point(&[100.0, 100.0, 100.0]).unwrap();
    assert_eq!(out.outlying.len(), 7);
    assert_eq!(out.minimal.len(), 3);
    // Astronomical threshold: nothing outlying, 1 OD evaluation
    // settles it (full space below T prunes the whole lattice down).
    let hi = HosMiner::fit(ds, cfg_fixed(1e12, 3)).unwrap();
    let out = hi.query_point(&[100.0, 100.0, 100.0]).unwrap();
    assert!(!out.is_outlier());
    assert_eq!(out.stats.od_evals, 1);
}

#[test]
fn one_dimensional_data() {
    let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let miner = HosMiner::fit(ds, cfg_fixed(30.0, 2)).unwrap();
    let out = miner.query_point(&[1000.0]).unwrap();
    assert_eq!(out.minimal, vec![Subspace::from_dims(&[0])]);
    let inl = miner.query_id(10).unwrap();
    assert!(!inl.is_outlier());
}

#[test]
fn huge_coordinate_magnitudes() {
    // 1e12-scale coordinates: pre-metric accumulation must not
    // overflow into inf (1e12 squared = 1e24, well within f64).
    let rows: Vec<Vec<f64>> = (0..30)
        .map(|i| vec![1e12 + i as f64 * 1e9, -1e12 + i as f64 * 1e9])
        .collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    for (name, e) in [
        (
            "linear",
            Box::new(LinearScan::new(ds.clone(), Metric::L2)) as Box<dyn KnnEngine>,
        ),
        (
            "xtree",
            Box::new(XTree::build(ds.clone(), Metric::L2, XTreeConfig::default())),
        ),
        (
            "vafile",
            Box::new(VaFile::build(
                ds.clone(),
                Metric::L2,
                VaFileConfig::default(),
            )),
        ),
    ] {
        let nn = e.knn(ds.row(0), 3, Subspace::full(2), Some(0));
        assert_eq!(nn.len(), 3, "{name}");
        assert!(nn.iter().all(|n| n.dist.is_finite()), "{name}");
    }
}

#[test]
fn adversarial_engine_agreement_on_grid_data() {
    // Integer-grid data maximises distance ties — the worst case for
    // heap-based selection determinism. All engines must agree on the
    // distance multiset.
    let mut rows = Vec::new();
    for x in 0..6 {
        for y in 0..6 {
            for z in 0..3 {
                rows.push(vec![x as f64, y as f64, z as f64]);
            }
        }
    }
    let ds = Dataset::from_rows(&rows).unwrap();
    let lin = LinearScan::new(ds.clone(), Metric::L1);
    let xt = XTree::build(ds.clone(), Metric::L1, XTreeConfig::default());
    let va = VaFile::build(ds.clone(), Metric::L1, VaFileConfig::default());
    for q in [[0.0, 0.0, 0.0], [2.5, 2.5, 1.5], [5.0, 0.0, 2.0]] {
        for s in [Subspace::full(3), Subspace::from_dims(&[0, 2])] {
            let a: Vec<f64> = lin.knn(&q, 8, s, None).iter().map(|n| n.dist).collect();
            let b: Vec<f64> = xt.knn(&q, 8, s, None).iter().map(|n| n.dist).collect();
            let c: Vec<f64> = va.knn(&q, 8, s, None).iter().map(|n| n.dist).collect();
            assert_eq!(a, b, "xtree vs linear at {q:?} {s}");
            assert_eq!(a, c, "vafile vs linear at {q:?} {s}");
        }
    }
}

#[test]
fn error_paths_are_errors_not_panics() {
    let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
    // k >= n.
    assert!(HosMiner::fit(ds.clone(), cfg_fixed(1.0, 3)).is_err());
    // Non-positive threshold.
    assert!(HosMiner::fit(ds.clone(), cfg_fixed(0.0, 1)).is_err());
    assert!(HosMiner::fit(ds.clone(), cfg_fixed(f64::NAN, 1)).is_err());
    // Bad queries on a good miner.
    let miner = HosMiner::fit(ds, cfg_fixed(1.0, 1)).unwrap();
    assert!(miner.query_point(&[1.0]).is_err());
    assert!(miner.query_point(&[f64::INFINITY, 0.0]).is_err());
    assert!(miner.query_id(99).is_err());
}

#[test]
fn dataset_rejects_poison_values() {
    assert!(Dataset::from_rows(&[vec![f64::NAN]]).is_err());
    assert!(Dataset::from_rows(&[vec![f64::NEG_INFINITY]]).is_err());
    let mut ds = Dataset::empty();
    ds.push_row(&[1.0]).unwrap();
    assert!(ds.push_row(&[f64::NAN]).is_err());
    // The failed push must not have corrupted the dataset.
    assert_eq!(ds.len(), 1);
}

#[test]
fn learning_with_more_samples_than_points() {
    let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, (i % 4) as f64]).collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let miner = HosMiner::fit(
        ds,
        HosMinerConfig {
            k: 2,
            threshold: ThresholdPolicy::Fixed(3.0),
            sample_size: 1000, // > n, must cap silently
            ..HosMinerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(miner.model().samples, 12);
}

#[test]
fn heavy_tailed_marginals_end_to_end() {
    // Skewed data: the exponential tail produces natural full-space
    // outliers; the pipeline must stay exact (dynamic == oracle) and
    // sane (answers non-empty only above threshold).
    use hos_miner::baselines::{exhaustive_search, ExhaustiveMode};
    use hos_miner::core::od::OdMode;
    use hos_miner::data::synth::skewed::{mixed_marginals, ColumnDist};
    let cols = [
        ColumnDist::Exponential { lambda: 1.0 },
        ColumnDist::LogNormal {
            mu: 0.0,
            sigma: 0.8,
        },
        ColumnDist::Normal { mean: 0.0, sd: 1.0 },
        ColumnDist::Uniform { lo: 0.0, hi: 1.0 },
    ];
    let ds = mixed_marginals(500, &cols, 19).unwrap();
    let miner = HosMiner::fit(
        ds.clone(),
        HosMinerConfig {
            k: 5,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 200,
            },
            sample_size: 8,
            ..HosMinerConfig::default()
        },
    )
    .unwrap();
    let mut outliers = 0;
    for id in (0..500).step_by(25) {
        let out = miner.query_id(id).unwrap();
        let row: Vec<f64> = ds.row(id).to_vec();
        let oracle = exhaustive_search(
            miner.engine(),
            &row,
            Some(id),
            5,
            miner.threshold(),
            ExhaustiveMode::Full,
            OdMode::Raw,
        );
        let got: Vec<Subspace> = out.outlying.iter().map(|s| s.subspace).collect();
        assert_eq!(got, oracle.subspaces(), "point {id}");
        if out.is_outlier() {
            outliers += 1;
        }
    }
    // A 0.95-quantile threshold flags a handful of the sampled 20.
    assert!(outliers <= 5, "{outliers} of 20 skewed points flagged");
}

#[test]
fn xtree_survives_pathological_insert_orders() {
    // Sorted insertion order is the classic R-tree worst case.
    let mut rows: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![i as f64, (600 - i) as f64, (i * i % 101) as f64])
        .collect();
    rows.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
    let ds = Dataset::from_rows(&rows).unwrap();
    let t = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
    t.check_invariants().unwrap();
    let lin = LinearScan::new(ds.clone(), Metric::L2);
    for id in [0, 300, 599] {
        let q: Vec<f64> = ds.row(id).to_vec();
        let a = t.knn(&q, 4, Subspace::full(3), Some(id));
        let b = lin.knn(&q, 4, Subspace::full(3), Some(id));
        for (x, y) in a.iter().zip(&b) {
            assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }
}
