//! Tests pinned to specific claims and worked examples in the paper
//! text, so a reader can trace each assertion back to a sentence.

use hos_miner::core::priors::Priors;
use hos_miner::core::search::dynamic_search;
use hos_miner::core::{learn, minimal_subspaces};
use hos_miner::data::{Dataset, Metric};
use hos_miner::index::{KnnEngine, LinearScan};
use hos_miner::lattice::{binomial, dsf, usf, Lattice, TsfComputer};
use hos_miner::Subspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// §2: "OD is defined as the sum of the distances between a point and
/// its k nearest neighbors."
#[test]
fn od_definition() {
    let ds = Dataset::from_rows(&[
        vec![0.0, 0.0],
        vec![1.0, 0.0],
        vec![0.0, 2.0],
        vec![4.0, 4.0],
    ])
    .unwrap();
    let e = LinearScan::new(ds, Metric::L2);
    let od = e.od(&[0.0, 0.0], 2, Subspace::full(2), Some(0));
    assert!((od - (1.0 + 2.0)).abs() < 1e-12);
}

/// §2 Property 1 & 2 and the inequality they rest on:
/// "ODs1(p) >= ODs2(p) if s1 ⊇ s2".
#[test]
fn od_monotonicity_claim() {
    let mut rng = StdRng::seed_from_u64(77);
    let d = 6;
    let flat: Vec<f64> = (0..200 * d).map(|_| rng.gen_range(0.0..5.0)).collect();
    let ds = Dataset::from_flat(flat, d).unwrap();
    let e = LinearScan::new(ds, Metric::L2);
    let q: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..5.0)).collect();
    for _ in 0..200 {
        let m1: u64 = rng.gen_range(1..(1 << d));
        let m2: u64 = rng.gen_range(1..(1 << d));
        let s2 = Subspace::from_mask(m1 & m2);
        if s2.is_empty() {
            continue;
        }
        let s1 = Subspace::from_mask(m1);
        let od1 = e.od(&q, 5, s1, None);
        let od2 = e.od(&q, 5, s2, None);
        assert!(od2 <= od1 + 1e-9, "OD({s2})={od2} > OD({s1})={od1}");
    }
}

/// §3.1 worked example: "Refer to a 4-dimensional space,
/// DSF([1,2,3]) = C(3,1)*1 + C(3,2)*2 = 9 and
/// USF([1,4]) = C(2,1)*(2+1) + C(2,2)*(2+2) = 10."
#[test]
fn dsf_usf_worked_example() {
    assert_eq!(dsf(3), 9.0);
    assert_eq!(usf(2, 4), 10.0);
}

/// §3.4 worked example: outlying subspaces [1,3], [2,4], [1,2,3],
/// [1,2,4], [1,3,4], [2,3,4], [1,2,3,4] filter down to [1,3], [2,4].
#[test]
fn filter_worked_example() {
    let parse = |s: &str| -> Subspace { s.parse().unwrap() };
    let input: Vec<Subspace> = [
        "[1,3]",
        "[2,4]",
        "[1,2,3]",
        "[1,2,4]",
        "[1,3,4]",
        "[2,3,4]",
        "[1,2,3,4]",
    ]
    .iter()
    .map(|s| parse(s))
    .collect();
    let minimal = minimal_subspaces(&input);
    assert_eq!(minimal, vec![parse("[1,3]"), parse("[2,4]")]);
}

/// §3.2: the fixed priors of the learning phase.
#[test]
fn learning_phase_fixed_priors() {
    let d = 7;
    let p = Priors::uniform(d);
    assert_eq!((p.up(1), p.down(1)), (1.0, 0.0));
    assert_eq!((p.up(d), p.down(d)), (0.0, 1.0));
    for m in 2..d {
        assert_eq!((p.up(m), p.down(m)), (0.5, 0.5));
    }
}

/// §3.2: "pdown(1) = pup(d) = 0" after averaging the learned values.
#[test]
fn learned_priors_boundary_convention() {
    let mut rng = StdRng::seed_from_u64(15);
    let d = 5;
    let flat: Vec<f64> = (0..300 * d).map(|_| rng.gen_range(0.0..1.0)).collect();
    let ds = Dataset::from_flat(flat, d).unwrap();
    let e = LinearScan::new(ds, Metric::L2);
    let model = learn(&e, 4, 0.8, 10, 3, 1).unwrap();
    assert_eq!(model.priors.down(1), 0.0);
    assert_eq!(model.priors.up(d), 0.0);
}

/// §1 problem statement: "If the answer set is empty for p, we say
/// that p is not an outlier in any subspaces." — and by monotonicity
/// this is decidable from the full space alone.
#[test]
fn empty_answer_iff_full_space_below_threshold() {
    let mut rng = StdRng::seed_from_u64(31);
    let d = 5;
    let flat: Vec<f64> = (0..300 * d).map(|_| rng.gen_range(0.0..1.0)).collect();
    let ds = Dataset::from_flat(flat, d).unwrap();
    let e = LinearScan::new(ds, Metric::L2);
    let t = 1.0;
    let priors = Priors::uniform(d);
    for id in 0..30 {
        let row: Vec<f64> = e.dataset().row(id).to_vec();
        let full_od = e.od(&row, 4, Subspace::full(d), Some(id));
        let out = dynamic_search(&e, &row, Some(id), 4, t, &priors, 1);
        assert_eq!(
            out.outlying.is_empty(),
            full_od < t,
            "point {id}: full OD {full_od}, answer {:?}",
            out.outlying.len()
        );
    }
}

/// §3.1 downward pruning: "if ODs1(p) < T, then ODs2(p) < T, where
/// s1 ⊇ s2" — verified through the lattice closure.
#[test]
fn downward_pruning_soundness() {
    let mut rng = StdRng::seed_from_u64(41);
    let d = 5;
    let flat: Vec<f64> = (0..200 * d).map(|_| rng.gen_range(0.0..1.0)).collect();
    let ds = Dataset::from_flat(flat, d).unwrap();
    let e = LinearScan::new(ds, Metric::L2);
    let q: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
    let t = 0.9;
    // Find a subspace below threshold and check all its subsets are too.
    for mask in 1u64..(1 << d) {
        let s1 = Subspace::from_mask(mask);
        if e.od(&q, 4, s1, None) < t {
            for s2 in s1.strict_subsets() {
                assert!(
                    e.od(&q, 4, s2, None) < t,
                    "{s2} violates Property 1 under {s1}"
                );
            }
            break;
        }
    }
}

/// §3.1 upward pruning: "if ODs2(p) >= T, then ODs1(p) >= T".
#[test]
fn upward_pruning_soundness() {
    let mut rng = StdRng::seed_from_u64(43);
    let d = 5;
    let mut rows: Vec<Vec<f64>> = (0..150)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    rows.push(vec![9.0, 0.5, 0.5, 0.5, 0.5]);
    let ds = Dataset::from_rows(&rows).unwrap();
    let e = LinearScan::new(ds, Metric::L2);
    let q: Vec<f64> = e.dataset().row(150).to_vec();
    let t = 5.0;
    let s2 = Subspace::from_dims(&[0]);
    assert!(e.od(&q, 4, s2, Some(150)) >= t);
    for s1 in s2.supersets(d) {
        assert!(e.od(&q, 4, s1, Some(150)) >= t, "{s1} violates Property 2");
    }
}

/// The TSF level-ordering machinery exists and distinguishes levels:
/// on a fresh lattice middle levels of a reasonably-sized space have
/// strictly positive TSF, and the denominators match Definition 3.
#[test]
fn tsf_definition_sanity() {
    let d = 8;
    let t = TsfComputer::new(d);
    let l = Lattice::new(d);
    let p = Priors::uniform(d);
    for m in 1..=d {
        let v = t.tsf(m, p.up(m), p.down(m), &l);
        assert!(v >= 0.0);
        if m > 1 && m < d {
            assert!(v > 0.0, "TSF({m}) should be positive on a fresh lattice");
        }
    }
    // Lattice totals are binomials.
    for m in 1..=d {
        assert_eq!(l.remaining_at(m) as f64, binomial(d, m));
    }
}
