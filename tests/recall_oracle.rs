//! Recall-contract oracle for the approximate kNN tier: the
//! tentpole's pinning test.
//!
//! `HnswEngine` relaxes exactly one half of the engine contract —
//! *recall* (which points come back), never *values* (every reported
//! distance and OD is an exact f64 over real rows). This file pins
//! both halves against exhaustive ground truth on seeded workloads:
//!
//! * **Recall**: mean recall@k at the default search width clears the
//!   0.95 contract for every metric × shard count × subspace dim
//!   combination, and stays there after a churn burst (tombstones +
//!   fresh graph inserts). Ground truth is a `LinearScan` sweep over
//!   the same rows.
//! * **Exactness**: reported neighbour distances equal a from-scratch
//!   `Metric::dist_sub` recomputation bit for bit, and approximate ODs
//!   are never *below* the exact OD — a missed true neighbour can only
//!   be replaced by a farther candidate, so the approximation errs
//!   exclusively toward flagging points as *more* outlying.
//! * **Calibration**: `calibrate_search_width` drives any engine —
//!   including a sharded one, through the `dyn KnnEngine` seam — to a
//!   width whose measured recall meets the requested target, and
//!   leaves that width applied.
//!
//! Churned op-sequences with per-step differential checks live in
//! `incremental_oracle.rs`; this file owns the breadth sweep.

use hos_miner::data::{Dataset, Metric, Subspace};
use hos_miner::index::{
    build_engine_sharded, calibrate_search_width, recall_at_k, Engine, KnnEngine,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 8;
const K: usize = 5;
const N: usize = 600;

fn seeded_dataset(seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let flat: Vec<f64> = (0..n * D).map(|_| rng.gen_range(0.0..100.0)).collect();
    Dataset::from_flat(flat, D).unwrap()
}

/// Mean recall@k of `approx` against `exact` over member probes in
/// subspace `s`, with the exactness invariants asserted on the way:
/// both engines share one global id space, so no translation is
/// needed.
fn checked_mean_recall(
    exact: &dyn KnnEngine,
    approx: &dyn KnnEngine,
    s: Subspace,
    ctx: &str,
) -> f64 {
    let ds = approx.dataset();
    let metric = approx.metric();
    let live: Vec<usize> = (0..ds.len()).filter(|&i| ds.is_live(i)).collect();
    let probes: Vec<usize> = (0..24).map(|i| live[i * live.len() / 24]).collect();
    let mut sum = 0.0;
    for &qid in &probes {
        let q = ds.row(qid);
        let a = approx.knn(q, K, s, Some(qid));
        for nb in &a {
            assert_eq!(
                nb.dist,
                metric.dist_sub(q, ds.row(nb.id), s),
                "{ctx} {s}: reported distance not exact"
            );
        }
        let e = exact.knn(q, K, s, Some(qid));
        // Sum of the k returned distances can only meet or exceed the
        // true minimum the exact engine attains.
        let (a_od, e_od) = (approx.od(q, K, s, Some(qid)), exact.od(q, K, s, Some(qid)));
        assert!(
            a_od >= e_od,
            "{ctx} {s}: approximate OD {a_od} below exact {e_od}"
        );
        sum += recall_at_k(&e, &a);
    }
    sum / probes.len() as f64
}

/// The breadth sweep: default-width recall clears the contract for
/// every metric, shard count, and subspace dimensionality.
#[test]
fn default_width_recall_clears_contract_across_metrics_shards_subspaces() {
    let subspaces = [
        Subspace::from_dims(&[1, 6]),
        Subspace::from_dims(&[0, 2, 4, 7]),
        Subspace::full(D),
    ];
    for metric in [Metric::L1, Metric::L2, Metric::LInf] {
        let ds = seeded_dataset(0xC0FF_EE00 ^ metric.name().len() as u64, N);
        let exact = build_engine_sharded(Engine::Linear, ds.clone(), metric, 1, 1);
        for shards in [1usize, 2, 4] {
            let approx = build_engine_sharded(Engine::Hnsw, ds.clone(), metric, shards, 1);
            for s in subspaces {
                let ctx = format!("metric={metric:?} shards={shards}");
                let recall = checked_mean_recall(exact.as_ref(), approx.as_ref(), s, &ctx);
                assert!(
                    recall >= 0.95,
                    "{ctx} {s}: mean recall {recall} below the 0.95 contract"
                );
            }
        }
    }
}

/// Recall holds after churn: a removal burst (tombstones the search
/// must skip) plus fresh inserts (graph links added after build), with
/// the exact oracle maintained through the same ops so the id spaces
/// stay aligned.
#[test]
fn default_width_recall_survives_churn_burst() {
    let ds = seeded_dataset(0x5EED_CAFE, N);
    let metric = Metric::L2;
    let mut exact = build_engine_sharded(Engine::Linear, ds.clone(), metric, 1, 1);
    let mut approx = build_engine_sharded(Engine::Hnsw, ds, metric, 2, 1);
    let mut rng = StdRng::seed_from_u64(9);
    for i in 0..100usize {
        let id = (i * 31 + 7) % N;
        // Both sides see the identical op stream, so inserted rows get
        // the same ids in both engines.
        if !exact.dataset().is_live(id) {
            continue;
        }
        exact.as_incremental().unwrap().remove(id).unwrap();
        approx.as_incremental().unwrap().remove(id).unwrap();
        if i % 2 == 0 {
            let row: Vec<f64> = (0..D).map(|_| rng.gen_range(0.0..100.0)).collect();
            let a = exact.as_incremental().unwrap().insert(&row).unwrap();
            let b = approx.as_incremental().unwrap().insert(&row).unwrap();
            assert_eq!(a, b, "engines disagree on appended ids");
        }
    }
    for s in [Subspace::from_dims(&[2, 5]), Subspace::full(D)] {
        let recall = checked_mean_recall(exact.as_ref(), approx.as_ref(), s, "churned");
        assert!(
            recall >= 0.95,
            "churned {s}: mean recall {recall} below the 0.95 contract"
        );
    }
}

/// `calibrate_search_width` reaches the requested target through the
/// trait object — sharded or not — and leaves the width applied, so
/// an independently drawn probe set measures at or near the target.
#[test]
fn calibration_hits_target_through_dyn_trait_and_shards() {
    let metric = Metric::L2;
    let ds = seeded_dataset(0xBEEF_0001, N);
    let exact = build_engine_sharded(Engine::Linear, ds.clone(), metric, 1, 1);
    for shards in [1usize, 3] {
        let approx = build_engine_sharded(Engine::Hnsw, ds.clone(), metric, shards, 1);
        let ef = calibrate_search_width(approx.as_ref(), K, 0.98, 24, 0x1234_5678);
        assert_eq!(
            approx.search_width(),
            Some(ef),
            "shards={shards}: calibrated width not left applied"
        );
        assert!(ef >= 2 * K, "shards={shards}: ladder started below 2k");
        let recall = checked_mean_recall(
            exact.as_ref(),
            approx.as_ref(),
            Subspace::full(D),
            "calibrated",
        );
        assert!(
            recall >= 0.95,
            "shards={shards}: post-calibration recall {recall} under ef={ef}"
        );
    }
}
