//! Seeded oracle sweep: across many seeds and dimensionalities
//! `d ∈ 4..=8`, the dynamic TSF-ordered search must return *exactly*
//! the subspaces a brute-force enumeration of the whole lattice
//! returns — for every metric, with and without self-exclusion, with
//! the cached-projection fast path engaged (LinearScan provides a
//! `QueryContext`, so `dynamic_search` runs entirely on the cache).
//!
//! This complements `oracle_property.rs` (random-strategy based,
//! fixed d): fixed seeds over a d-range give reproducible coverage of
//! every lattice size from 15 to 255 subspaces.

use hos_miner::core::priors::Priors;
use hos_miner::core::search::dynamic_search;
use hos_miner::data::{Dataset, Metric, Subspace};
use hos_miner::index::{KnnEngine, LinearScan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dataset(rng: &mut StdRng, n: usize, d: usize) -> Dataset {
    let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-20.0..20.0)).collect();
    Dataset::from_flat(flat, d).unwrap()
}

/// Ground truth by exhaustive enumeration: every non-empty subspace,
/// one uncached OD each.
fn exhaustive(
    engine: &dyn KnnEngine,
    q: &[f64],
    k: usize,
    t: f64,
    ex: Option<usize>,
) -> Vec<Subspace> {
    Subspace::all_nonempty(engine.dataset().dim())
        .filter(|&s| engine.od(q, k, s, ex) >= t)
        .collect()
}

#[test]
fn dynamic_search_equals_exhaustive_over_seeds_and_dims() {
    let metrics = [Metric::L1, Metric::L2, Metric::LInf];
    for d in 4..=8 {
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed * 1000 + d as u64);
            let n = rng.gen_range(20..80);
            let ds = random_dataset(&mut rng, n, d);
            let metric = metrics[(seed as usize + d) % metrics.len()];
            let engine = LinearScan::new(ds, metric);
            let k = rng.gen_range(1..5usize);
            let t = rng.gen_range(1.0..50.0);
            // Half the cases query a member (self-excluded), half an
            // external point.
            let (q, ex): (Vec<f64>, Option<usize>) = if seed % 2 == 0 {
                let id = rng.gen_range(0..n);
                (engine.dataset().row(id).to_vec(), Some(id))
            } else {
                ((0..d).map(|_| rng.gen_range(-25.0..25.0)).collect(), None)
            };

            let out = dynamic_search(&engine, &q, ex, k, t, &Priors::uniform(d), 1);
            let mut got = out.subspaces();
            got.sort_by_key(|s| s.mask());
            let mut expected = exhaustive(&engine, &q, k, t, ex);
            expected.sort_by_key(|s| s.mask());
            assert_eq!(
                got, expected,
                "divergence at d={d} seed={seed} metric={metric:?} k={k} T={t}"
            );

            // The cost accounting must always partition the lattice.
            let s = &out.stats;
            assert_eq!(
                s.od_evals + s.pruned_outlier + s.pruned_non_outlier,
                s.lattice_size,
                "accounting hole at d={d} seed={seed}"
            );
        }
    }
}

#[test]
fn dynamic_search_never_evaluates_more_than_the_lattice() {
    // Adversarial thresholds (everything outlying / nothing outlying):
    // pruning must close the lattice in one or two rounds.
    for d in 4..=8 {
        let mut rng = StdRng::seed_from_u64(77 + d as u64);
        let ds = random_dataset(&mut rng, 40, d);
        let engine = LinearScan::new(ds, Metric::L2);
        let q: Vec<f64> = engine.dataset().row(0).to_vec();
        let priors = Priors::uniform(d);
        for t in [1e-9, 1e9] {
            let out = dynamic_search(&engine, &q, Some(0), 3, t, &priors, 1);
            assert!(out.stats.od_evals <= out.stats.lattice_size);
            if t > 1.0 {
                assert!(out.outlying.is_empty());
            } else {
                assert_eq!(out.outlying.len() as u64, out.stats.lattice_size);
            }
        }
    }
}
