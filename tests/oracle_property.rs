//! The strongest correctness statement in the repository, as a
//! property test: on arbitrary random data, for arbitrary k, T,
//! metric and priors, the dynamic TSF-ordered search returns *exactly*
//! the set of subspaces the brute-force oracle returns — pruning never
//! loses an answer and never invents one.

use hos_miner::baselines::{exhaustive_search, ExhaustiveMode};
use hos_miner::core::od::OdMode;
use hos_miner::core::priors::Priors;
use hos_miner::core::search::dynamic_search;
use hos_miner::data::{Dataset, Metric};
use hos_miner::index::{KnnEngine, LinearScan};
use hos_miner::Subspace;
use proptest::prelude::*;

const D: usize = 5;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-20.0f64..20.0, D), 5..60)
        .prop_map(|rows| Dataset::from_rows(&rows).unwrap())
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

fn arb_priors() -> impl Strategy<Value = Priors> {
    // Arbitrary valid per-level probabilities: the search result must
    // not depend on the priors (only its cost may).
    (
        prop::collection::vec(0.0f64..1.0, D + 1),
        prop::collection::vec(0.0f64..1.0, D + 1),
    )
        .prop_map(|(up, down)| Priors::from_values(up, down).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_equals_oracle(ds in arb_dataset(),
                             query in prop::collection::vec(-25.0f64..25.0, D),
                             k in 1usize..6,
                             threshold in 0.5f64..60.0,
                             metric in arb_metric(),
                             priors in arb_priors(),
                             threads in 1usize..4) {
        let engine = LinearScan::new(ds, metric);
        let dynamic = dynamic_search(&engine, &query, None, k, threshold, &priors, threads);
        let oracle = exhaustive_search(
            &engine, &query, None, k, threshold, ExhaustiveMode::Full, OdMode::Raw);
        prop_assert_eq!(dynamic.subspaces(), oracle.subspaces(),
            "metric {:?} k {} T {}", metric, k, threshold);
        // Cost accounting is complete in both.
        let s = &dynamic.stats;
        prop_assert_eq!(s.od_evals + s.pruned_outlier + s.pruned_non_outlier, s.lattice_size);
        // And the dynamic search never does more OD work than the oracle.
        prop_assert!(s.od_evals <= oracle.stats.od_evals);
    }

    /// Membership exclusion: excluding the queried member can only
    /// grow OD values, hence the answer set can only grow.
    #[test]
    fn exclusion_grows_answers(ds in arb_dataset(),
                               k in 1usize..5,
                               threshold in 0.5f64..40.0,
                               metric in arb_metric()) {
        prop_assume!(ds.len() > k + 1);
        let engine = LinearScan::new(ds, metric);
        let query: Vec<f64> = engine.dataset().row(0).to_vec();
        let priors = Priors::uniform(D);
        let with_self = dynamic_search(&engine, &query, None, k, threshold, &priors, 1);
        let without_self = dynamic_search(&engine, &query, Some(0), k, threshold, &priors, 1);
        for s in with_self.subspaces() {
            prop_assert!(without_self.contains(s),
                "answer {} vanished when the query excluded itself", s);
        }
    }

    /// The minimal frontier is always an antichain that covers the
    /// whole answer set.
    #[test]
    fn minimal_frontier_invariants(ds in arb_dataset(),
                                   query in prop::collection::vec(-25.0f64..25.0, D),
                                   k in 1usize..5,
                                   threshold in 0.5f64..40.0) {
        let engine = LinearScan::new(ds, Metric::L2);
        let out = dynamic_search(&engine, &query, None, k, threshold,
                                 &Priors::uniform(D), 1);
        let subspaces: Vec<Subspace> = out.subspaces();
        let minimal = hos_miner::core::minimal_subspaces(&subspaces);
        for a in &minimal {
            for b in &minimal {
                prop_assert!(a == b || !a.is_subset_of(*b));
            }
            prop_assert!(subspaces.contains(a));
        }
        for s in &subspaces {
            prop_assert!(minimal.iter().any(|m| m.is_subset_of(*s)));
        }
        // By upward closure, every superset of an answer is an answer.
        for s in &subspaces {
            for sup in s.supersets(D) {
                prop_assert!(subspaces.contains(&sup),
                    "{} outlying but its superset {} is not", s, sup);
            }
        }
    }
}
