//! Batch-search determinism: the multi-threaded multi-query front-end
//! must be indistinguishable from running every query serially — same
//! answer sets, same minimal frontiers, and the same `SearchStats`
//! evaluation accounting (everything except wall-clock seconds).

use hos_miner::core::batch::{batch_search, BatchQuery};
use hos_miner::core::priors::Priors;
use hos_miner::core::search::{dynamic_search, SearchOutcome};
use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::{Dataset, Metric};
use hos_miner::index::{KnnEngine, LinearScan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 6;

fn dataset(seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat: Vec<f64> = (0..n * D).map(|_| rng.gen_range(0.0..10.0)).collect();
    // Two planted outliers: one along dim 0, one along dims {2,4}.
    flat.extend([90.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
    flat.extend([5.0, 5.0, 70.0, 5.0, 70.0, 5.0]);
    Dataset::from_flat(flat, D).unwrap()
}

fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome, what: &str) {
    assert_eq!(a.outlying, b.outlying, "{what}: answer sets differ");
    assert_eq!(
        a.stats.od_evals, b.stats.od_evals,
        "{what}: od_evals differ"
    );
    assert_eq!(a.stats.pruned_outlier, b.stats.pruned_outlier, "{what}");
    assert_eq!(
        a.stats.pruned_non_outlier, b.stats.pruned_non_outlier,
        "{what}"
    );
    assert_eq!(a.stats.rounds, b.stats.rounds, "{what}: rounds differ");
    assert_eq!(a.stats.lattice_size, b.stats.lattice_size, "{what}");
    assert_eq!(
        a.level_eval_stats, b.level_eval_stats,
        "{what}: eval stats differ"
    );
    assert_eq!(a.level_outlier_fraction, b.level_outlier_fraction, "{what}");
}

#[test]
fn batch_search_deterministic_across_thread_counts() {
    let ds = dataset(5, 150);
    let n = ds.len();
    let engine = LinearScan::new(ds, Metric::L2);
    let rows: Vec<Vec<f64>> = (0..n)
        .step_by(7)
        .map(|i| engine.dataset().row(i).to_vec())
        .collect();
    let queries: Vec<BatchQuery<'_>> = rows
        .iter()
        .zip((0..n).step_by(7))
        .map(|(r, id)| BatchQuery {
            point: r,
            exclude: Some(id),
        })
        .collect();
    let priors = Priors::uniform(D);

    let serial = batch_search(&engine, &queries, 4, 25.0, &priors, 1);
    for threads in [2, 3, 8, 64] {
        let parallel = batch_search(&engine, &queries, 4, 25.0, &priors, threads);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_outcome_eq(a, b, &format!("query {i} with {threads} threads"));
        }
    }
}

#[test]
fn batch_search_matches_standalone_dynamic_search() {
    let ds = dataset(9, 120);
    let n = ds.len();
    let engine = LinearScan::new(ds, Metric::L1);
    let priors = Priors::uniform(D);
    let rows: Vec<Vec<f64>> = vec![
        engine.dataset().row(n - 2).to_vec(), // planted outlier
        engine.dataset().row(0).to_vec(),     // background
    ];
    let queries = [
        BatchQuery {
            point: &rows[0],
            exclude: Some(n - 2),
        },
        BatchQuery {
            point: &rows[1],
            exclude: Some(0),
        },
    ];
    let batch = batch_search(&engine, &queries, 5, 30.0, &priors, 4);
    for (q, got) in queries.iter().zip(&batch) {
        let solo = dynamic_search(&engine, q.point, q.exclude, 5, 30.0, &priors, 1);
        assert_outcome_eq(got, &solo, "batch vs standalone");
    }
    assert!(!batch[0].outlying.is_empty(), "planted outlier not found");
}

#[test]
fn miner_batch_apis_agree_with_single_query_apis() {
    let miner = HosMiner::fit(
        dataset(13, 200),
        HosMinerConfig {
            k: 4,
            threshold: ThresholdPolicy::Fixed(25.0),
            metric: Metric::L2,
            sample_size: 0,
            threads: 4,
            ..HosMinerConfig::default()
        },
    )
    .unwrap();

    let ids: Vec<usize> = vec![200, 201, 0, 11, 42];
    let batch = miner.query_ids(&ids).unwrap();
    for (&id, got) in ids.iter().zip(&batch) {
        let solo = miner.query_id(id).unwrap();
        assert_eq!(got.outlying, solo.outlying, "point {id}");
        assert_eq!(got.minimal, solo.minimal, "point {id}");
        assert_eq!(got.stats.od_evals, solo.stats.od_evals, "point {id}");
    }
    // The planted outliers are outlying; the background points vary
    // but must agree with the single-query API (checked above).
    assert!(batch[0].is_outlier());
    assert!(batch[1].is_outlier());

    let points = vec![vec![1e3; D], vec![5.0; D]];
    let by_batch = miner.query_points(&points).unwrap();
    for (p, got) in points.iter().zip(&by_batch) {
        let solo = miner.query_point(p).unwrap();
        assert_eq!(got.outlying, solo.outlying);
        assert_eq!(got.minimal, solo.minimal);
    }
}
