//! Differential-equivalence harness for incremental maintenance: the
//! PR's pinning test.
//!
//! For proptest-generated sequences of insert/remove/query operations,
//! the incrementally-maintained engine must be indistinguishable from
//! a **cold rebuild** over the surviving rows — across every engine
//! kind (linear scan, X-tree, VA-file), every metric, and shard counts
//! 1..=4:
//!
//! * **ODs bit-identical** (`assert_eq!` on `f64`, no epsilon): the
//!   distances are computed by the same code over the same row bytes
//!   and summed in the same ascending `(distance, id)` order whichever
//!   maintenance path produced the candidate set.
//! * **Top-k neighbour lists identical** after translating ids through
//!   the compaction map (incremental ids are append-only and the map
//!   is strictly increasing, so the `(distance, id)` tie-break order
//!   is preserved by the translation).
//!
//! A deterministic miner-level differential test extends the statement
//! end to end: `HosMiner::insert_point`/`retire_point` against a fresh
//! `HosMiner::fit` on the compacted dataset.
//!
//! The approximate tier rides the same harness two ways. At exhaustive
//! search width (`ef = usize::MAX`) `HnswEngine` *is* the exact scan
//! (pinned by the `ef = n` property test), so it joins every
//! bit-identity stream above — which drags its graph-insert and
//! tombstone/rebuild machinery through the differential oracle for
//! free. At its default width it keeps only a **recall contract**, so
//! a dedicated churn stream checks the relaxed statement instead:
//! reported distances stay bitwise-exact, mean recall@k against a cold
//! exact rebuild clears the 0.95 contract, and widening back to
//! exhaustive mid-stream restores bit-identity.

use hos_miner::core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_miner::data::{Dataset, Metric, PointId};
use hos_miner::index::{
    build_engine_sharded, recall_at_k, Engine, HnswConfig, KnnEngine, Neighbor,
};
use hos_miner::Subspace;
use proptest::prelude::*;

const D: usize = 3;
const K: usize = 3;

/// One step of a generated stream.
#[derive(Clone, Debug)]
enum Op {
    /// Append this row.
    Insert(Vec<f64>),
    /// Remove the live point at this (index modulo live-count)
    /// position — resolved against the current live set at apply time.
    Remove(usize),
}

/// Coarse grid values force plenty of exact distance ties, so the
/// `(distance, id)` tie-break is genuinely exercised by the
/// equivalence assertions.
fn arb_row() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u8..8).prop_map(|v| v as f64 * 0.5), D)
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            arb_row().prop_map(Op::Insert),
            (0usize..64).prop_map(Op::Remove),
        ],
        1..16,
    )
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

/// The mirror the oracle is rebuilt from: the live rows in insertion
/// order, each tagged with its id in the *incremental* engine.
struct Mirror {
    live: Vec<(PointId, Vec<f64>)>,
    next_id: PointId,
}

impl Mirror {
    fn new(rows: &[Vec<f64>]) -> Mirror {
        Mirror {
            live: rows.iter().cloned().enumerate().collect(),
            next_id: rows.len(),
        }
    }

    fn dataset(&self) -> Dataset {
        let rows: Vec<Vec<f64>> = self.live.iter().map(|(_, r)| r.clone()).collect();
        if rows.is_empty() {
            Dataset::empty()
        } else {
            Dataset::from_rows(&rows).unwrap()
        }
    }
}

/// Asserts that the incremental engine and a cold rebuild agree on
/// every subspace OD (bitwise) and every top-k neighbour list (ids
/// translated through the mirror's id map) for a spread of query
/// points — external and live members alike.
fn assert_equivalent(
    inc: &dyn KnnEngine,
    mirror: &Mirror,
    kind: Engine,
    metric: Metric,
    shards: usize,
    step: usize,
) {
    let cold_ds = mirror.dataset();
    let cold = build_engine_sharded(kind, cold_ds, metric, shards, 2);
    // The approximate engine only promises bit-identity at exhaustive
    // width — the callers below set the incremental side to match.
    if kind == Engine::Hnsw {
        cold.set_search_width(usize::MAX);
    }
    let ctx = format!("{kind} metric={metric:?} shards={shards} step={step}");

    // Queries: one external probe plus up to three live members.
    let mut queries: Vec<(Vec<f64>, Option<usize>)> = vec![(vec![1.25; D], None)];
    for idx in [
        0usize,
        mirror.live.len() / 2,
        mirror.live.len().saturating_sub(1),
    ] {
        if idx < mirror.live.len() {
            queries.push((mirror.live[idx].1.clone(), Some(idx)));
        }
    }

    for (q, cold_exclude) in queries {
        let inc_exclude = cold_exclude.map(|j| mirror.live[j].0);
        let k = K.min(
            mirror
                .live
                .len()
                .saturating_sub(usize::from(cold_exclude.is_some())),
        );
        for s in Subspace::all_nonempty(D) {
            let a = inc.knn(&q, k, s, inc_exclude);
            let b = cold.knn(&q, k, s, cold_exclude);
            assert_eq!(a.len(), b.len(), "{ctx} {s}: lengths differ");
            for (x, y) in a.iter().zip(&b) {
                // Bitwise distance equality AND exact id correspondence
                // through the (strictly increasing) compaction map.
                assert_eq!(x.dist, y.dist, "{ctx} {s}: distances differ");
                assert_eq!(
                    x.id, mirror.live[y.id].0,
                    "{ctx} {s}: ids differ beyond the compaction map"
                );
            }
            assert_eq!(
                inc.od(&q, k, s, inc_exclude),
                cold.od(&q, k, s, cold_exclude),
                "{ctx} {s}: OD differs"
            );
        }
        // The evaluator path (what the dynamic search actually calls)
        // agrees too, through its cached and uncached phases — and,
        // since the prefix-stack port, the batch runs the walker
        // kernel: pin it against BOTH the cold rebuild and the direct
        // per-subspace engine queries (no walker, no cache), so the
        // walker is bit-identical to the canonical combine across
        // engines, metrics, shard counts and mutation histories.
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(D).collect();
        let direct: Vec<f64> = subspaces
            .iter()
            .map(|&s| inc.od(&q, k, s, inc_exclude))
            .collect();
        let mut ev_inc = inc.evaluator(&q, k, inc_exclude);
        let mut ev_cold = cold.evaluator(&q, k, cold_exclude);
        let batch = ev_inc.od_batch(&subspaces, 2);
        assert_eq!(
            batch,
            ev_cold.od_batch(&subspaces, 2),
            "{ctx}: evaluator batch differs"
        );
        assert_eq!(batch, direct, "{ctx}: walker batch != direct engine ODs");

        // Where the engine hands out a distance cache, drive the
        // standalone PrefixWalker over the whole lattice (walker order
        // AND adversarial mask order) and pin ODs and top-k neighbour
        // lists against the direct QueryContext combine, bit for bit.
        if let Some(walk_ctx) = inc.query_context(&q) {
            let mut w = walk_ctx.walker();
            let mut ordered = subspaces.clone();
            ordered.sort_by(|a, b| a.walk_cmp(*b));
            for pass in [&ordered, &subspaces] {
                for &s in pass {
                    w.seek(s);
                    assert_eq!(
                        w.od(k, inc_exclude),
                        walk_ctx.od(k, s, inc_exclude),
                        "{ctx} {s}: walker OD != direct combine"
                    );
                    assert_eq!(
                        w.knn(k, inc_exclude),
                        walk_ctx.knn(k, s, inc_exclude),
                        "{ctx} {s}: walker top-k != direct combine"
                    );
                }
            }
        }
    }
}

/// Applies one op to both the incremental engine and the mirror.
fn apply(op: &Op, inc: &mut Box<dyn KnnEngine>, mirror: &mut Mirror) {
    match op {
        Op::Insert(row) => {
            let id = inc
                .as_incremental()
                .expect("all engines are incremental")
                .insert(row)
                .expect("valid insert");
            assert_eq!(id, mirror.next_id, "insert ids are append-only");
            mirror.live.push((id, row.clone()));
            mirror.next_id += 1;
        }
        Op::Remove(pick) => {
            if mirror.live.is_empty() {
                return;
            }
            let idx = pick % mirror.live.len();
            let (id, _) = mirror.live.remove(idx);
            inc.as_incremental()
                .expect("all engines are incremental")
                .remove(id)
                .expect("valid remove");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: after EVERY op in a random stream, the
    /// incremental engine state is bit-identical (ODs, neighbour
    /// lists, evaluator batches) to a cold rebuild — for every engine
    /// kind, metric, and shard count 1..=4.
    #[test]
    fn incremental_state_equals_cold_rebuild(
        initial in prop::collection::vec(arb_row(), 8..20),
        ops in arb_ops(),
        metric in arb_metric(),
    ) {
        for kind in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
            for shards in 1usize..=4 {
                let mut inc = build_engine_sharded(
                    kind,
                    Dataset::from_rows(&initial).unwrap(),
                    metric,
                    shards,
                    2,
                );
                if kind == Engine::Hnsw {
                    inc.set_search_width(usize::MAX);
                }
                let mut mirror = Mirror::new(&initial);
                assert_equivalent(inc.as_ref(), &mirror, kind, metric, shards, 0);
                for (step, op) in ops.iter().enumerate() {
                    apply(op, &mut inc, &mut mirror);
                    assert_equivalent(inc.as_ref(), &mirror, kind, metric, shards, step + 1);
                }
            }
        }
    }
}

/// Deterministic, denser long-run variant: hundreds of ops drive the
/// X-tree through several bounded re-bulk-loads, the VA-file through
/// out-of-range mark widening, and the HNSW graph (at exhaustive
/// width) through tombstone accumulation past its bounded-rebuild
/// threshold; equivalence is checked at checkpoints.
#[test]
fn long_streams_with_rebuilds_stay_equivalent() {
    // A deterministic pseudo-stream with values drifting out of the
    // initial range (forces VA-file mark widening) and heavy removal
    // pressure (forces X-tree re-bulk-loads).
    let initial: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![(i % 5) as f64, (i % 7) as f64 * 0.5, (i % 3) as f64])
        .collect();
    let mut ops = Vec::new();
    for i in 0..220usize {
        if i % 3 == 0 {
            ops.push(Op::Remove(i * 7 + 1));
        } else {
            // Drift: coordinates wander far beyond the build range.
            let t = i as f64;
            ops.push(Op::Insert(vec![
                10.0 + t * 0.5,
                -(t * 0.25),
                (i % 9) as f64,
            ]));
        }
    }
    for kind in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
        for shards in [1usize, 3] {
            for metric in [Metric::L2, Metric::LInf] {
                let mut inc = build_engine_sharded(
                    kind,
                    Dataset::from_rows(&initial).unwrap(),
                    metric,
                    shards,
                    2,
                );
                if kind == Engine::Hnsw {
                    inc.set_search_width(usize::MAX);
                }
                let mut mirror = Mirror::new(&initial);
                for (step, op) in ops.iter().enumerate() {
                    apply(op, &mut inc, &mut mirror);
                    if step % 20 == 19 || step + 1 == ops.len() {
                        assert_equivalent(inc.as_ref(), &mirror, kind, metric, shards, step + 1);
                    }
                }
                // The stream kept a healthy live set throughout.
                assert!(inc.dataset().live_len() > K, "{kind} shards={shards}");
            }
        }
    }
}

/// Miner-level differential: insert/retire through `HosMiner` equals a
/// fresh fit on the compacted dataset — outcomes (outlying sets,
/// minimal frontiers, evaluation counts) are identical once member ids
/// pass through the compaction map.
#[test]
fn miner_incremental_equals_refit_on_compacted_data() {
    let mut rows: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            vec![
                (i % 8) as f64 * 0.25,
                (i % 5) as f64 * 0.25,
                (i % 3) as f64 * 0.25,
            ]
        })
        .collect();
    rows.push(vec![40.0, 0.25, 0.5]); // outlying along dim 0
    let config = HosMinerConfig {
        k: 4,
        threshold: ThresholdPolicy::Fixed(8.0),
        sample_size: 0, // uniform priors: fit is dataset-order invariant
        ..HosMinerConfig::default()
    };
    for engine in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
        for shards in 1usize..=4 {
            let cfg = HosMinerConfig {
                engine,
                shards,
                threads: 2,
                // Exhaustive width makes the approximate tier exact, so
                // the miner-level bit-identity statement covers it too.
                ef: (engine == Engine::Hnsw).then_some(usize::MAX),
                ..config
            };
            let mut inc = HosMiner::fit(Dataset::from_rows(&rows).unwrap(), cfg).unwrap();
            let mut mirror = Mirror::new(&rows);
            // Stream: retire a band of early rows, insert replacements
            // plus a fresh outlier along dim 2.
            for id in [3usize, 9, 17, 25, 33] {
                inc.retire_point(id).unwrap();
                let pos = mirror.live.iter().position(|(mid, _)| *mid == id).unwrap();
                mirror.live.remove(pos);
            }
            for j in 0..6 {
                let row = vec![(j % 4) as f64 * 0.25, (j % 3) as f64 * 0.25, 0.25];
                let id = inc.insert_point(&row).unwrap();
                mirror.live.push((id, row));
            }
            let out_row = vec![0.5, 0.25, 60.0];
            let out_id = inc.insert_point(&out_row).unwrap();
            mirror.live.push((out_id, out_row));

            let cold = HosMiner::fit(mirror.dataset(), cfg).unwrap();
            assert_eq!(inc.threshold(), cold.threshold());
            // Every live member: identical outcome through the id map.
            for (cold_id, (inc_id, _)) in mirror.live.iter().enumerate() {
                let a = inc.query_id(*inc_id).unwrap();
                let b = cold.query_id(cold_id).unwrap();
                assert_eq!(
                    a.outlying, b.outlying,
                    "{engine} shards={shards} id={inc_id}"
                );
                assert_eq!(a.minimal, b.minimal, "{engine} shards={shards} id={inc_id}");
                assert_eq!(
                    a.stats.od_evals, b.stats.od_evals,
                    "{engine} shards={shards} id={inc_id}"
                );
            }
            // The fresh outlier is found exactly where it was planted.
            let out = inc.query_id(out_id).unwrap();
            assert_eq!(out.minimal, vec![Subspace::from_dims(&[2])], "{engine}");
            // External probes agree without any id mapping.
            let probe = vec![0.1, 0.2, 0.3];
            assert_eq!(
                inc.query_point(&probe).unwrap().outlying,
                cold.query_point(&probe).unwrap().outlying
            );
        }
    }
}

/// Hash-derived pseudo-random row: continuous-ish values (two decimal
/// places over [0, 100)) so exact distance ties — which would make
/// id-based recall counting unfair to a correct candidate set — are
/// vanishingly rare.
fn hashed_row(i: usize) -> Vec<f64> {
    (0..D)
        .map(|j| {
            let mut x = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64) << 32 | 0xABCD);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x % 10_000) as f64 / 100.0
        })
        .collect()
}

/// The recall-contract oracle for the approximate tier at one
/// checkpoint of a churn stream: reported distances are bitwise-exact
/// recomputations, mean recall@k against a cold exact rebuild clears
/// the 0.95 contract, and the exhaustive-width escape hatch restores
/// full bit-identity mid-stream.
fn assert_hnsw_contract(inc: &dyn KnnEngine, mirror: &Mirror, shards: usize, step: usize) {
    let metric = Metric::L2;
    let cold = build_engine_sharded(Engine::Linear, mirror.dataset(), metric, 1, 1);
    let ctx = format!("hnsw shards={shards} step={step}");
    let ds = inc.dataset();
    let probes: Vec<usize> = (0..12).map(|i| i * mirror.live.len() / 12).collect();
    let subspaces = [Subspace::full(D), Subspace::from_dims(&[0, 2])];

    // Translate the exact oracle's compacted ids into the incremental
    // engine's id space so recall counts true positives.
    let exact_topk = |pos: usize, row: &[f64], s: Subspace| -> Vec<Neighbor> {
        cold.knn(row, K, s, Some(pos))
            .iter()
            .map(|n| Neighbor {
                id: mirror.live[n.id].0,
                dist: n.dist,
            })
            .collect()
    };

    let (mut recall_sum, mut recall_n) = (0.0f64, 0usize);
    for &pos in &probes {
        let (inc_id, ref row) = mirror.live[pos];
        for &s in &subspaces {
            let approx = inc.knn(row, K, s, Some(inc_id));
            for nb in &approx {
                // Whatever the candidate set missed, what it reported
                // is the true distance, bit for bit.
                assert_eq!(
                    nb.dist,
                    metric.dist_sub(row, ds.row(nb.id), s),
                    "{ctx} {s}: reported distance not exact"
                );
            }
            recall_sum += recall_at_k(&exact_topk(pos, row, s), &approx);
            recall_n += 1;
        }
    }
    let mean = recall_sum / recall_n as f64;
    assert!(mean >= 0.95, "{ctx}: mean recall {mean} below the contract");

    // Escape hatch under churn: exhaustive width is bit-identical to
    // the exact oracle, and the default width comes back afterwards.
    inc.set_search_width(usize::MAX);
    for &pos in &probes {
        let (inc_id, ref row) = mirror.live[pos];
        for &s in &subspaces {
            assert_eq!(
                inc.knn(row, K, s, Some(inc_id)),
                exact_topk(pos, row, s),
                "{ctx} {s}: exhaustive width not bit-identical"
            );
            assert_eq!(
                inc.od(row, K, s, Some(inc_id)),
                cold.od(row, K, s, Some(pos)),
                "{ctx} {s}: exhaustive OD differs"
            );
        }
    }
    inc.set_search_width(HnswConfig::default().ef_search);
}

/// The relaxed-contract stream: a dataset large enough that the
/// default search width genuinely approximates (live count stays above
/// `ef` throughout), churned with ~2:1 removals-to-inserts so shard
/// graphs accumulate tombstones and cross their bounded-rebuild
/// threshold mid-stream. The recall contract must hold at every
/// checkpoint — not just on the freshly built graph.
#[test]
fn hnsw_recall_contract_survives_churn() {
    const N: usize = 360;
    let initial: Vec<Vec<f64>> = (0..N).map(hashed_row).collect();
    let mut ops = Vec::new();
    for i in 0..150usize {
        if i % 3 == 2 {
            ops.push(Op::Insert(hashed_row(N + i)));
        } else {
            ops.push(Op::Remove(i * 13 + 5));
        }
    }
    for shards in [1usize, 3] {
        let mut inc = build_engine_sharded(
            Engine::Hnsw,
            Dataset::from_rows(&initial).unwrap(),
            Metric::L2,
            shards,
            1,
        );
        let mut mirror = Mirror::new(&initial);
        assert_hnsw_contract(inc.as_ref(), &mirror, shards, 0);
        for (step, op) in ops.iter().enumerate() {
            apply(op, &mut inc, &mut mirror);
            if step % 50 == 49 || step + 1 == ops.len() {
                assert_hnsw_contract(inc.as_ref(), &mirror, shards, step + 1);
            }
        }
        // The stream never left the approximate regime: the contract
        // checks above exercised real candidate generation, not the
        // small-n exact fallback.
        assert!(
            inc.dataset().live_len() > HnswConfig::default().ef_search,
            "shards={shards}: stream fell back to exact"
        );
    }
}

/// The k >= n / empty-dataset regression, exercised end to end at the
/// workspace level: removals drive every engine below `k` and all the
/// way to empty; checked queries return the typed error and unchecked
/// ones degrade gracefully (shorter lists), never panicking.
#[test]
fn draining_every_engine_below_k_is_a_typed_error() {
    use hos_miner::index::IndexError;
    let rows: Vec<Vec<f64>> = (0..6)
        .map(|i| vec![i as f64, (i % 2) as f64, 0.0])
        .collect();
    for kind in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
        for shards in 1usize..=4 {
            let mut e = build_engine_sharded(
                kind,
                Dataset::from_rows(&rows).unwrap(),
                Metric::L2,
                shards,
                1,
            );
            let s = Subspace::full(3);
            for id in 0..6 {
                let removed = 6 - e.dataset().live_len();
                let expect_err = e.dataset().live_len() < K;
                let got = e.try_knn(&[0.0; 3], K, s, None);
                if expect_err {
                    assert_eq!(
                        got,
                        Err(IndexError::InsufficientPoints {
                            available: e.dataset().live_len(),
                            k: K
                        }),
                        "{kind} shards={shards} removed={removed}"
                    );
                } else {
                    assert_eq!(got.unwrap().len(), K, "{kind} shards={shards}");
                }
                // Unchecked queries degrade to shorter lists, no panic.
                assert_eq!(
                    e.knn(&[0.0; 3], K, s, None).len(),
                    K.min(e.dataset().live_len()),
                    "{kind} shards={shards}"
                );
                e.as_incremental().unwrap().remove(id).unwrap();
            }
            // Fully drained: empty results, typed error on the checked path.
            assert!(e.knn(&[0.0; 3], K, s, None).is_empty());
            assert!(e.range(&[0.0; 3], 100.0, s, None).is_empty());
            assert_eq!(
                e.try_knn(&[0.0; 3], 1, s, None),
                Err(IndexError::InsufficientPoints { available: 0, k: 1 })
            );
        }
    }
}
