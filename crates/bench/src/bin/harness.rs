//! The experiment harness binary. See `hos-bench` crate docs.
//!
//! ```sh
//! cargo run -p hos-bench --release --bin harness -- all
//! cargo run -p hos-bench --release --bin harness -- e2 e5
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let ids: Vec<String> = std::env::args().skip(1).collect();
    if ids
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!(
            "usage: harness [all | {}]",
            hos_bench::experiments::ALL.join(" | ")
        );
        return ExitCode::SUCCESS;
    }
    match hos_bench::experiments::run(&ids) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
