//! # hos-bench
//!
//! The experiment harness: every table and figure promised by the
//! demo paper's evaluation plan (part 3), regenerable from the command
//! line. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded results.
//!
//! ```sh
//! cargo run -p hos-bench --release --bin harness -- all
//! cargo run -p hos-bench --release --bin harness -- e2 e3
//! ```
//!
//! Each experiment prints an aligned table and writes a CSV to
//! `results/`.

pub mod experiments;
pub mod workloads;

use hos_data::table::Table;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where result CSVs are written (relative to the workspace root).
pub fn results_dir() -> PathBuf {
    // When run via `cargo run -p hos-bench`, cwd is the workspace root.
    PathBuf::from("results")
}

/// Prints a table under a heading and writes its CSV.
pub fn emit(id: &str, title: &str, table: &Table, dir: &Path) {
    println!("\n=== {id}: {title} ===\n");
    println!("{}", table.render());
    let path = dir.join(format!("{id}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Milliseconds with 2 decimals, for table cells.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures() {
        let (v, s) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(s >= 0.009, "measured {s}");
    }

    #[test]
    fn ms_format() {
        assert_eq!(ms(0.001234), "1.23");
    }
}
