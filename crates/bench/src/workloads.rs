//! Shared workload builders for the experiments.

use hos_data::synth::planted::{generate, PlantedSpec, PlantedWorkload};
use hos_data::Subspace;

/// The standard planted workload used across experiments: clustered
/// background plus one outlier per target subspace (a single dim, a
/// pair, and a triple, where dimensionality allows).
pub fn standard_planted(n: usize, d: usize, seed: u64) -> PlantedWorkload {
    let mut targets = vec![Subspace::from_dims(&[0])];
    if d >= 4 {
        targets.push(Subspace::from_dims(&[1, 2]));
    }
    if d >= 6 {
        targets.push(Subspace::from_dims(&[3, 4, 5]));
    }
    generate(&PlantedSpec {
        n_background: n,
        d,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 100.0,
        targets,
        shift_sigmas: 12.0,
        seed,
    })
    .expect("valid standard spec")
}

/// Query mix for efficiency experiments: the planted outliers plus an
/// equal number of background points (ids 0, 1, 2, ...).
pub fn query_mix(w: &PlantedWorkload) -> Vec<usize> {
    let mut q = w.outlier_ids();
    let n_out = q.len();
    q.extend(0..n_out);
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_planted_shapes() {
        let w = standard_planted(500, 8, 1);
        assert_eq!(w.dataset.dim(), 8);
        assert_eq!(w.dataset.len(), 503);
        assert_eq!(w.outliers.len(), 3);
        let w2 = standard_planted(100, 3, 1);
        assert_eq!(w2.outliers.len(), 1);
        let w3 = standard_planted(100, 5, 1);
        assert_eq!(w3.outliers.len(), 2);
    }

    #[test]
    fn query_mix_balances() {
        let w = standard_planted(200, 8, 2);
        let q = query_mix(&w);
        assert_eq!(q.len(), 6);
        assert_eq!(&q[3..], &[0, 1, 2]);
    }
}
