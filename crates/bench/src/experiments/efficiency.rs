//! F1 (Figure 1 reproduction) and the efficiency experiments E1–E4.

use crate::workloads::{query_mix, standard_planted};
use crate::{emit, ms, timed};
use hos_baselines::{exhaustive_search, ExhaustiveMode};
use hos_core::od::OdMode;
use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::synth::correlated::{figure1_views, CorrelatedSpec};
use hos_data::table::{fmt_f64, Table};
use hos_data::Metric;
use hos_index::{KnnEngine, LinearScan};
use std::path::Path;

fn fit(dataset: hos_data::Dataset, k: usize, samples: usize) -> HosMiner {
    HosMiner::fit(
        dataset,
        HosMinerConfig {
            k,
            threshold: ThresholdPolicy::FullSpaceQuantile {
                q: 0.95,
                sample: 200,
            },
            sample_size: samples,
            ..HosMinerConfig::default()
        },
    )
    .expect("fit")
}

/// F1 — Figure 1: the same point has very different outlying degrees
/// in different 2-d views.
pub fn f1_figure1(dir: &Path) {
    let fig = figure1_views(&CorrelatedSpec {
        n: 300,
        pairs: 3,
        correlated_pairs: vec![0],
        band_noise: 0.03,
        seed: 42,
    })
    .expect("figure 1 data");
    let engine = LinearScan::new(fig.dataset.clone(), Metric::L2);
    let mut t = Table::new(vec!["view", "kind", "OD(p view)", "outlier in view"]);
    let miner = fit(fig.dataset.clone(), 5, 10);
    for (view, kind) in fig
        .outlying_views
        .iter()
        .map(|&v| (v, "correlated"))
        .chain(fig.inlying_views.iter().map(|&v| (v, "blob")))
    {
        let od = engine.od(&fig.query, 5, view, None);
        t.push(vec![
            view.to_string(),
            kind.to_string(),
            fmt_f64(od),
            (od >= miner.threshold()).to_string(),
        ]);
    }
    emit(
        "f1_views",
        "Figure 1 — per-view outlying degree of p",
        &t,
        dir,
    );
    let out = miner.query_point(&fig.query).expect("query");
    println!(
        "HOS-Miner minimal answer for p: {}",
        out.minimal
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
}

/// E1 — efficiency vs dataset size N at fixed d.
pub fn e1_scale_n(dir: &Path) {
    let d = 10;
    let k = 5;
    let mut t = Table::new(vec![
        "N",
        "dyn evals",
        "dyn ms",
        "static evals",
        "static ms",
        "exh evals",
        "exh ms",
        "speedup",
    ]);
    for n in [1000usize, 2000, 4000, 8000] {
        let w = standard_planted(n, d, 100 + n as u64);
        let miner = fit(w.dataset.clone(), k, 16);
        let queries = query_mix(&w);
        let mut dyn_evals = 0.0;
        let mut dyn_time = 0.0;
        let mut st_evals = 0.0;
        let mut st_time = 0.0;
        let mut ex_evals = 0.0;
        let mut ex_time = 0.0;
        for &id in &queries {
            let row: Vec<f64> = w.dataset.row(id).to_vec();
            let (out, s) = timed(|| miner.query_id(id).expect("query"));
            dyn_evals += out.stats.od_evals as f64;
            dyn_time += s;
            let (st, s) = timed(|| {
                exhaustive_search(
                    miner.engine(),
                    &row,
                    Some(id),
                    k,
                    miner.threshold(),
                    ExhaustiveMode::BothStatic,
                    OdMode::Raw,
                )
            });
            st_evals += st.stats.od_evals as f64;
            st_time += s;
            let (ex, s) = timed(|| {
                exhaustive_search(
                    miner.engine(),
                    &row,
                    Some(id),
                    k,
                    miner.threshold(),
                    ExhaustiveMode::Full,
                    OdMode::Raw,
                )
            });
            ex_evals += ex.stats.od_evals as f64;
            ex_time += s;
        }
        let q = queries.len() as f64;
        t.push(vec![
            n.to_string(),
            format!("{:.0}", dyn_evals / q),
            ms(dyn_time / q),
            format!("{:.0}", st_evals / q),
            ms(st_time / q),
            format!("{:.0}", ex_evals / q),
            ms(ex_time / q),
            format!("{:.1}x", ex_time / dyn_time.max(1e-12)),
        ]);
    }
    emit(
        "e1_scale_n",
        "efficiency vs dataset size (d=10, k=5, per-query averages)",
        &t,
        dir,
    );
}

/// E2 + E3 — efficiency and pruning power vs dimensionality.
pub fn e2_e3_scale_d(dir: &Path) {
    let n = 2000;
    let k = 5;
    let mut e2 = Table::new(vec![
        "d",
        "lattice",
        "dyn evals",
        "dyn ms",
        "exh evals",
        "exh ms",
        "speedup",
    ]);
    let mut e3 = Table::new(vec![
        "d",
        "lattice",
        "evaluated frac",
        "pruned-in frac",
        "pruned-out frac",
    ]);
    for d in [6usize, 8, 10, 12, 14, 16] {
        let w = standard_planted(n, d, 200 + d as u64);
        let miner = fit(w.dataset.clone(), k, 16);
        let queries = query_mix(&w);
        let mut dyn_evals = 0.0;
        let mut dyn_time = 0.0;
        let mut ex_evals = 0.0;
        let mut ex_time = 0.0;
        let mut pruned_in = 0.0;
        let mut pruned_out = 0.0;
        let lattice = (1u64 << d) - 1;
        for &id in &queries {
            let row: Vec<f64> = w.dataset.row(id).to_vec();
            let (out, s) = timed(|| miner.query_id(id).expect("query"));
            dyn_evals += out.stats.od_evals as f64;
            pruned_in += out.stats.pruned_outlier as f64;
            pruned_out += out.stats.pruned_non_outlier as f64;
            dyn_time += s;
            // Cap exhaustive at d <= 14: beyond that a single query
            // needs 2^d * N distance sums and the point is made.
            if d <= 14 {
                let (ex, s) = timed(|| {
                    exhaustive_search(
                        miner.engine(),
                        &row,
                        Some(id),
                        k,
                        miner.threshold(),
                        ExhaustiveMode::Full,
                        OdMode::Raw,
                    )
                });
                ex_evals += ex.stats.od_evals as f64;
                ex_time += s;
            }
        }
        let q = queries.len() as f64;
        let (ex_evals_s, ex_ms_s, speedup) = if d <= 14 {
            (
                format!("{:.0}", ex_evals / q),
                ms(ex_time / q),
                format!("{:.1}x", ex_time / dyn_time.max(1e-12)),
            )
        } else {
            ("(skipped)".into(), "-".into(), "-".into())
        };
        e2.push(vec![
            d.to_string(),
            lattice.to_string(),
            format!("{:.0}", dyn_evals / q),
            ms(dyn_time / q),
            ex_evals_s,
            ex_ms_s,
            speedup,
        ]);
        e3.push(vec![
            d.to_string(),
            lattice.to_string(),
            fmt_f64(dyn_evals / q / lattice as f64),
            fmt_f64(pruned_in / q / lattice as f64),
            fmt_f64(pruned_out / q / lattice as f64),
        ]);
    }
    emit(
        "e2_scale_d",
        "efficiency vs dimensionality (N=2000, k=5, per-query averages)",
        &e2,
        dir,
    );
    emit(
        "e3_pruning",
        "pruning power vs dimensionality (fractions of the lattice)",
        &e3,
        dir,
    );
}

/// E4 — effect of the learning sample size S on query cost.
pub fn e4_sampling(dir: &Path) {
    let n = 2000;
    let d = 12;
    let k = 5;
    let w = standard_planted(n, d, 77);
    // Learned priors encode "how likely is pruning at each level for a
    // typical point", so their payoff differs sharply between inlier
    // queries (the common case the priors describe) and outlier
    // queries; report both regimes separately. The WholeLevel rows
    // reproduce the paper's literal fraction definition, whose
    // near-zero p_up degrades outlier queries (learning module docs).
    use hos_core::learning::{learn_full, FractionMode};
    use hos_core::priors::Priors;
    use hos_core::search::dynamic_search;
    use hos_index::LinearScan;

    let engine = LinearScan::new(w.dataset.clone(), hos_data::Metric::L2);
    let threshold = hos_core::ThresholdPolicy::FullSpaceQuantile {
        q: 0.95,
        sample: 200,
    }
    .resolve(&engine, k, 0)
    .expect("threshold");
    let outlier_ids = w.outlier_ids();
    let inlier_ids: Vec<usize> = (0..outlier_ids.len()).collect();

    let mut t = Table::new(vec![
        "priors",
        "S",
        "learn evals",
        "inlier query evals",
        "inlier ms",
        "outlier query evals",
        "outlier ms",
    ]);
    let mut row = |label: &str, s: usize, priors: &Priors, learn_evals: u64| {
        let avg = |ids: &[usize]| -> (f64, f64) {
            let mut evals = 0.0;
            let mut time = 0.0;
            for &id in ids {
                let q: Vec<f64> = w.dataset.row(id).to_vec();
                let (out, secs) =
                    timed(|| dynamic_search(&engine, &q, Some(id), k, threshold, priors, 1));
                evals += out.stats.od_evals as f64;
                time += secs;
            }
            (evals / ids.len() as f64, time / ids.len() as f64)
        };
        let (in_evals, in_time) = avg(&inlier_ids);
        let (out_evals, out_time) = avg(&outlier_ids);
        t.push(vec![
            label.to_string(),
            s.to_string(),
            learn_evals.to_string(),
            format!("{in_evals:.0}"),
            ms(in_time),
            format!("{out_evals:.0}"),
            ms(out_time),
        ]);
    };
    row("uniform (no learning)", 0, &Priors::uniform(d), 0);
    for s in [16usize, 64] {
        for (mode, label) in [
            (FractionMode::EvaluatedOnly, "learned, evaluated-only"),
            (
                FractionMode::WholeLevel,
                "learned, whole-level (paper literal)",
            ),
        ] {
            let model = learn_full(&engine, k, threshold, s, 1, 1, 1.0, mode).expect("learn");
            row(label, s, &model.priors, model.total_stats.od_evals);
        }
    }
    emit(
        "e4_sampling",
        "prior variants vs query cost (N=2000, d=12, k=5)",
        &t,
        dir,
    );
}
