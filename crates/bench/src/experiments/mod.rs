//! Experiment implementations. Each function regenerates one (or two
//! closely coupled) tables/figures from DESIGN.md §4.

pub mod efficiency;
pub mod sensitivity;
pub mod versus;

use crate::results_dir;
use std::collections::BTreeSet;

/// All experiment ids in execution order.
pub const ALL: &[&str] = &[
    "f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e8b", "e9", "e10", "e11", "e12",
];

/// Runs a set of experiment ids (deduplicated, in canonical order).
/// Returns an error message listing any unknown ids.
pub fn run(ids: &[String]) -> Result<(), String> {
    let dir = results_dir();
    let requested: BTreeSet<String> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        ids.iter().map(|s| s.to_ascii_lowercase()).collect()
    };
    let unknown: Vec<String> = requested
        .iter()
        .filter(|id| !ALL.contains(&id.as_str()))
        .cloned()
        .collect();
    if !unknown.is_empty() {
        return Err(format!(
            "unknown experiment id(s) {unknown:?}; valid ids: {}",
            ALL.join(" ")
        ));
    }
    // e2 and e3 share one run; execute it once if either is requested.
    let mut did_e2e3 = false;
    for id in ALL {
        if !requested.contains(*id) {
            continue;
        }
        match *id {
            "f1" => efficiency::f1_figure1(&dir),
            "e1" => efficiency::e1_scale_n(&dir),
            "e2" | "e3" => {
                if !did_e2e3 {
                    efficiency::e2_e3_scale_d(&dir);
                    did_e2e3 = true;
                }
            }
            "e4" => efficiency::e4_sampling(&dir),
            "e5" => versus::e5_effectiveness(&dir),
            "e6" => versus::e6_vs_evo_time(&dir),
            "e7" => versus::e7_index(&dir),
            "e8" => sensitivity::e8_k_and_t(&dir),
            "e8b" => sensitivity::e8b_normalized_od(&dir),
            "e9" => sensitivity::e9_filter(&dir),
            "e10" => sensitivity::e10_detectors(&dir),
            "e11" => sensitivity::e11_intensional(&dir),
            "e12" => sensitivity::e12_frontier(&dir),
            _ => unreachable!(),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_ids_rejected() {
        let err = run(&["e99".to_string()]).unwrap_err();
        assert!(err.contains("e99"));
    }

    #[test]
    fn all_ids_are_lowercase_and_unique() {
        let set: BTreeSet<&str> = ALL.iter().copied().collect();
        assert_eq!(set.len(), ALL.len());
        assert!(ALL.iter().all(|id| id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())));
    }
}
