//! E5–E7: comparisons against the evolutionary method and the X-tree
//! vs linear-scan index question.

use crate::workloads::standard_planted;
use crate::{emit, ms, timed};
use hos_baselines::evolutionary::EvolutionarySearch;
use hos_baselines::{exhaustive_search, EvoConfig, ExhaustiveMode};
use hos_core::od::OdMode;
use hos_core::{minimal_subspaces, HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::table::{fmt_f64, Table};
use hos_data::{Metric, Subspace};
use hos_index::{KnnEngine, LinearScan, VaFile, VaFileConfig, XTree, XTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Precision/recall of a detected set against a ground-truth set.
fn precision_recall(detected: &[Subspace], truth: &[Subspace]) -> (f64, f64) {
    if detected.is_empty() {
        return (
            if truth.is_empty() { 1.0 } else { 0.0 },
            if truth.is_empty() { 1.0 } else { 0.0 },
        );
    }
    let hit = detected.iter().filter(|s| truth.contains(s)).count() as f64;
    let p = hit / detected.len() as f64;
    let r = if truth.is_empty() {
        1.0
    } else {
        hit / truth.len() as f64
    };
    (p, r)
}

/// E5 — effectiveness: exact minimal outlying subspaces (oracle) vs
/// HOS-Miner vs the evolutionary method's subspace attribution.
pub fn e5_effectiveness(dir: &Path) {
    let d = 8;
    let k = 5;
    let mut t = Table::new(vec![
        "seed",
        "point",
        "truth (minimal)",
        "HOS P",
        "HOS R",
        "evo P",
        "evo R",
    ]);
    let mut hos_p_sum = 0.0;
    let mut hos_r_sum = 0.0;
    let mut evo_p_sum = 0.0;
    let mut evo_r_sum = 0.0;
    let mut rows = 0.0;
    for seed in [1u64, 2, 3] {
        let w = standard_planted(1200, d, 300 + seed);
        let miner = HosMiner::fit(
            w.dataset.clone(),
            HosMinerConfig {
                k,
                threshold: ThresholdPolicy::FullSpaceQuantile {
                    q: 0.95,
                    sample: 200,
                },
                sample_size: 12,
                ..HosMinerConfig::default()
            },
        )
        .expect("fit");
        // Evolutionary search on the same data; cube_dim 2 gives it
        // the best shot at the planted pair structures.
        let es = EvolutionarySearch::fit(
            &w.dataset,
            EvoConfig {
                phi: 8,
                cube_dim: 2,
                population: 120,
                generations: 80,
                best_m: 40,
                seed,
                ..EvoConfig::default()
            },
        );
        let cubes = es.run();
        for o in &w.outliers {
            let row: Vec<f64> = w.dataset.row(o.id).to_vec();
            // Exact ground truth from the oracle.
            let oracle = exhaustive_search(
                miner.engine(),
                &row,
                Some(o.id),
                k,
                miner.threshold(),
                ExhaustiveMode::Full,
                OdMode::Raw,
            );
            let truth = minimal_subspaces(&oracle.subspaces());
            let hos = miner.query_id(o.id).expect("query").minimal;
            let evo = minimal_subspaces(&es.outlying_subspaces_of(&cubes, &row));
            let (hp, hr) = precision_recall(&hos, &truth);
            let (ep, er) = precision_recall(&evo, &truth);
            hos_p_sum += hp;
            hos_r_sum += hr;
            evo_p_sum += ep;
            evo_r_sum += er;
            rows += 1.0;
            t.push(vec![
                seed.to_string(),
                format!("#{}", o.id),
                truth
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
                fmt_f64(hp),
                fmt_f64(hr),
                fmt_f64(ep),
                fmt_f64(er),
            ]);
        }
    }
    t.push(vec![
        "avg".into(),
        "-".into(),
        "-".into(),
        fmt_f64(hos_p_sum / rows),
        fmt_f64(hos_r_sum / rows),
        fmt_f64(evo_p_sum / rows),
        fmt_f64(evo_r_sum / rows),
    ]);
    emit(
        "e5_effectiveness",
        "effectiveness vs evolutionary search (precision/recall on exact minimal subspaces)",
        &t,
        dir,
    );
}

/// E6 — efficiency: HOS-Miner per-query cost vs a full evolutionary run
/// (the evolutionary method has no per-query mode: it searches the
/// whole space once and answers from the discovered cubes).
pub fn e6_vs_evo_time(dir: &Path) {
    let d = 10;
    let k = 5;
    let mut t = Table::new(vec![
        "N",
        "HOS fit ms",
        "HOS query ms",
        "evo run ms",
        "evo/query ratio",
    ]);
    for n in [1000usize, 2000, 4000] {
        let w = standard_planted(n, d, 400 + n as u64);
        let (miner, fit_s) = timed(|| {
            HosMiner::fit(
                w.dataset.clone(),
                HosMinerConfig {
                    k,
                    threshold: ThresholdPolicy::FullSpaceQuantile {
                        q: 0.95,
                        sample: 200,
                    },
                    sample_size: 12,
                    ..HosMinerConfig::default()
                },
            )
            .expect("fit")
        });
        let ids = w.outlier_ids();
        let (_, query_s) = timed(|| {
            for &id in &ids {
                let _ = miner.query_id(id).expect("query");
            }
        });
        let query_avg = query_s / ids.len() as f64;
        let (_, evo_s) = timed(|| {
            let es = EvolutionarySearch::fit(
                &w.dataset,
                EvoConfig {
                    phi: 8,
                    cube_dim: 2,
                    population: 100,
                    generations: 60,
                    best_m: 15,
                    seed: 9,
                    ..EvoConfig::default()
                },
            );
            es.run()
        });
        t.push(vec![
            n.to_string(),
            ms(fit_s),
            ms(query_avg),
            ms(evo_s),
            format!("{:.0}x", evo_s / query_avg.max(1e-12)),
        ]);
    }
    emit(
        "e6_vs_evo_time",
        "efficiency vs evolutionary search (d=10; evo amortises over all points, HOS per query)",
        &t,
        dir,
    );
}

/// E7 — the index question: X-tree vs linear scan for subspace k-NN.
pub fn e7_index(dir: &Path) {
    let k = 5;
    let mut t = Table::new(vec![
        "N",
        "d",
        "|s|",
        "xtree evals/q",
        "xtree ms/q",
        "vafile evals/q",
        "vafile ms/q",
        "linear evals/q",
        "linear ms/q",
    ]);
    for (n, d) in [(4000usize, 8usize), (16000, 8), (16000, 16)] {
        let w = standard_planted(n, d, 500 + n as u64 + d as u64);
        let xtree = XTree::build(w.dataset.clone(), Metric::L2, XTreeConfig::default());
        let vafile = VaFile::build(w.dataset.clone(), Metric::L2, VaFileConfig::default());
        let linear = LinearScan::new(w.dataset.clone(), Metric::L2);
        let mut rng = StdRng::seed_from_u64(7);
        for sub_dim in [2usize, d / 2, d] {
            let queries: Vec<(Vec<f64>, Subspace)> = (0..20)
                .map(|_| {
                    let id = rng.gen_range(0..w.dataset.len());
                    let mut dims: Vec<usize> = (0..d).collect();
                    for i in 0..sub_dim {
                        let j = rng.gen_range(i..d);
                        dims.swap(i, j);
                    }
                    (
                        w.dataset.row(id).to_vec(),
                        Subspace::from_dims(&dims[..sub_dim]),
                    )
                })
                .collect();
            let run = |engine: &dyn KnnEngine| -> (f64, f64) {
                let before = engine.distance_evals();
                let (_, secs) = timed(|| {
                    for (q, s) in &queries {
                        let _ = engine.knn(q, k, *s, None);
                    }
                });
                let evals = (engine.distance_evals() - before) as f64 / queries.len() as f64;
                (evals, secs / queries.len() as f64)
            };
            let (xe, xt_s) = run(&xtree);
            let (ve, vt_s) = run(&vafile);
            let (le, lt_s) = run(&linear);
            t.push(vec![
                n.to_string(),
                d.to_string(),
                sub_dim.to_string(),
                format!("{xe:.0}"),
                ms(xt_s),
                format!("{ve:.0}"),
                ms(vt_s),
                format!("{le:.0}"),
                ms(lt_s),
            ]);
        }
    }
    emit(
        "e7_index",
        "X-tree vs VA-file vs linear scan for subspace k-NN (20 queries each, k=5)",
        &t,
        dir,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_recall_cases() {
        let a = Subspace::from_dims(&[0]);
        let b = Subspace::from_dims(&[1]);
        let c = Subspace::from_dims(&[2]);
        assert_eq!(precision_recall(&[a, b], &[a, b]), (1.0, 1.0));
        assert_eq!(precision_recall(&[a, c], &[a, b]), (0.5, 0.5));
        assert_eq!(precision_recall(&[], &[a]), (0.0, 0.0));
        assert_eq!(precision_recall(&[], &[]), (1.0, 1.0));
        let (p, r) = precision_recall(&[a], &[]);
        assert_eq!(p, 0.0);
        assert_eq!(r, 1.0);
    }
}
