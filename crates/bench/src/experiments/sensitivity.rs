//! E8–E10: parameter sensitivity, the normalised-OD ablation, the
//! refinement filter, and the full-space detector context.

use crate::workloads::standard_planted;
use crate::{emit, ms, timed};
use hos_baselines::loci::{loci_outliers, LociConfig};
use hos_baselines::{db_outlier, exhaustive_search, intensional, knn_outlier, lof, ExhaustiveMode};
use hos_core::od::OdMode;
use hos_core::{minimal_subspaces, HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::table::{fmt_f64, Table};
use hos_data::Subspace;
use std::path::Path;

fn fit_with(dataset: hos_data::Dataset, k: usize, q: f64) -> HosMiner {
    HosMiner::fit(
        dataset,
        HosMinerConfig {
            k,
            threshold: ThresholdPolicy::FullSpaceQuantile { q, sample: 200 },
            sample_size: 12,
            ..HosMinerConfig::default()
        },
    )
    .expect("fit")
}

/// E8 — sensitivity to k and the threshold quantile.
///
/// Uses a *moderately* displaced outlier (6 sigma instead of the 12 of
/// the standard workload): an extreme outlier crosses every plausible
/// threshold in the same subspaces, which would make the sweep flat.
pub fn e8_k_and_t(dir: &Path) {
    use hos_data::synth::planted::{generate, PlantedSpec};
    let d = 10;
    let w = generate(&PlantedSpec {
        n_background: 1500,
        d,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 100.0,
        targets: vec![Subspace::from_dims(&[1, 2])],
        shift_sigmas: 6.0,
        seed: 600,
    })
    .expect("spec");
    let qid = w.outlier_ids()[0];
    let mut t = Table::new(vec![
        "k",
        "T quantile",
        "T",
        "answer size",
        "minimal size",
        "OD evals",
        "query ms",
    ]);
    for k in [1usize, 5, 10, 20] {
        for q in [0.80f64, 0.90, 0.95, 0.99] {
            let miner = fit_with(w.dataset.clone(), k, q);
            let (out, secs) = timed(|| miner.query_id(qid).expect("query"));
            t.push(vec![
                k.to_string(),
                format!("{q:.2}"),
                fmt_f64(miner.threshold()),
                out.outlying.len().to_string(),
                out.minimal.len().to_string(),
                out.stats.od_evals.to_string(),
                ms(secs),
            ]);
        }
    }
    emit(
        "e8_kt",
        "sensitivity to k and threshold quantile (N=1500, d=10, one 6-sigma planted outlier)",
        &t,
        dir,
    );
}

/// E8b — ablation: the paper's raw OD vs the dimension-normalised
/// extension, evaluated exhaustively (the normalised OD is not
/// monotone, so no pruning is allowed).
pub fn e8b_normalized_od(dir: &Path) {
    let d = 8;
    let k = 5;
    let w = standard_planted(1200, d, 700);
    // A *low* threshold quantile exposes the bias: with raw OD and a
    // global T, ordinary points whose full-space OD just clears T are
    // declared outlying in many high-dimensional subspaces purely
    // because OD grows with dimension.
    let miner = fit_with(w.dataset.clone(), k, 0.80);
    let engine = miner.engine();
    let full = w.dataset.full_space();

    // Query points: the planted pair-outlier plus the three background
    // points closest above the threshold (the borderline cases).
    let mut borderline: Vec<(usize, f64)> = (0..200)
        .map(|i| (i, engine.od(w.dataset.row(i), k, full, Some(i))))
        .filter(|&(_, od)| od >= miner.threshold())
        .collect();
    borderline.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut queries: Vec<(usize, String)> = borderline
        .iter()
        .take(3)
        .map(|&(id, _)| (id, "background".to_string()))
        .collect();
    queries.push((w.outlier_ids()[1], "planted [2,3]".to_string()));

    let mut t = Table::new(vec![
        "point",
        "kind",
        "raw: answers/level (1..d)",
        "raw minimal",
        "norm: answers/level (1..d)",
        "norm minimal",
    ]);
    for (id, kind) in queries {
        let row: Vec<f64> = w.dataset.row(id).to_vec();
        let run = |mode: OdMode, threshold: f64| {
            exhaustive_search(
                engine,
                &row,
                Some(id),
                k,
                threshold,
                ExhaustiveMode::Full,
                mode,
            )
        };
        let raw = run(OdMode::Raw, miner.threshold());
        // The normalised OD needs a comparably normalised threshold:
        // divide the full-space-quantile T by the full-space scale so
        // the full-space decision is identical by construction.
        let norm_threshold = miner.threshold() / engine.metric().dim_scale(d);
        let norm = run(OdMode::DimNormalized, norm_threshold);
        let per_level = |out: &hos_core::SearchOutcome| -> String {
            (1..=d)
                .map(|m| {
                    out.outlying
                        .iter()
                        .filter(|s| s.subspace.dim() == m)
                        .count()
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join("/")
        };
        let fmt_min = |spaces: Vec<Subspace>| -> String {
            let m = minimal_subspaces(&spaces);
            if m.is_empty() {
                "(none)".into()
            } else if m.len() > 4 {
                format!("{} sets, e.g. {}", m.len(), m[0])
            } else {
                m.iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        };
        t.push(vec![
            format!("#{id}"),
            kind,
            per_level(&raw),
            fmt_min(raw.subspaces()),
            per_level(&norm),
            fmt_min(norm.subspaces()),
        ]);
    }
    emit(
        "e8b_norm",
        "ablation: raw OD (paper) vs dimension-normalised OD (extension); T at the 0.80 quantile",
        &t,
        dir,
    );
}

/// E9 — the refinement filter: raw answer-set size vs minimal frontier.
pub fn e9_filter(dir: &Path) {
    let d = 10;
    let w = standard_planted(1500, d, 800);
    let miner = fit_with(w.dataset.clone(), 5, 0.95);
    let mut t = Table::new(vec!["point", "outlying subspaces", "minimal", "reduction"]);
    for o in &w.outliers {
        let out = miner.query_id(o.id).expect("query");
        let raw = out.outlying.len();
        let min = out.minimal.len();
        t.push(vec![
            format!("#{}", o.id),
            raw.to_string(),
            min.to_string(),
            if raw == 0 {
                "-".into()
            } else {
                format!("{:.1}x", raw as f64 / min.max(1) as f64)
            },
        ]);
    }
    // The paper's §3.4 worked example as a sanity row.
    let worked: Vec<Subspace> = [
        "[1,3]",
        "[2,4]",
        "[1,2,3]",
        "[1,2,4]",
        "[1,3,4]",
        "[2,3,4]",
        "[1,2,3,4]",
    ]
    .iter()
    .map(|s| s.parse().expect("valid"))
    .collect();
    let minimal = minimal_subspaces(&worked);
    t.push(vec![
        "paper §3.4".into(),
        worked.len().to_string(),
        minimal.len().to_string(),
        format!("{:.1}x", worked.len() as f64 / minimal.len() as f64),
    ]);
    emit(
        "e9_filter",
        "result refinement: answer set vs minimal frontier (N=1500, d=10)",
        &t,
        dir,
    );
}

/// E10 — context: do classic full-space detectors flag the same points
/// HOS-Miner's full-space OD flags? (They say *whether*, not *where*.)
pub fn e10_detectors(dir: &Path) {
    let d = 8;
    let k = 5;
    let w = standard_planted(1200, d, 900);
    let miner = fit_with(w.dataset.clone(), k, 0.95);
    let engine = miner.engine();
    let full = w.dataset.full_space();
    let planted = w.outlier_ids();
    let top_n = 10;

    // Rank by full-space OD.
    let mut od_rank: Vec<(usize, f64)> = (0..w.dataset.len())
        .map(|i| (i, engine.od(w.dataset.row(i), k, full, Some(i))))
        .collect();
    od_rank.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    od_rank.truncate(top_n);
    let od_top: Vec<usize> = od_rank.iter().map(|x| x.0).collect();

    let lof_top: Vec<usize> = lof::top_lof(engine, 10, full, top_n)
        .iter()
        .map(|x| x.0)
        .collect();
    let knn_top: Vec<usize> = knn_outlier::top_knn_outliers(engine, k, full, top_n)
        .iter()
        .map(|x| x.0)
        .collect();
    // DB outliers with dmin tied to the threshold scale.
    let dmin = miner.threshold() / k as f64;
    let db: Vec<usize> = db_outlier::db_outliers(engine, 0.995, dmin, full);

    let jaccard = |a: &[usize], b: &[usize]| -> f64 {
        let sa: std::collections::BTreeSet<_> = a.iter().collect();
        let sb: std::collections::BTreeSet<_> = b.iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let uni = sa.union(&sb).count() as f64;
        if uni == 0.0 {
            1.0
        } else {
            inter / uni
        }
    };
    let hits = |ids: &[usize]| planted.iter().filter(|p| ids.contains(p)).count();

    let mut t = Table::new(vec![
        "detector",
        "top-set size",
        "planted found",
        "Jaccard vs OD top-10",
    ]);
    t.push(vec![
        "full-space OD (ours)".into(),
        od_top.len().to_string(),
        format!("{}/{}", hits(&od_top), planted.len()),
        "1".into(),
    ]);
    t.push(vec![
        "LOF".into(),
        lof_top.len().to_string(),
        format!("{}/{}", hits(&lof_top), planted.len()),
        fmt_f64(jaccard(&lof_top, &od_top)),
    ]);
    t.push(vec![
        "kth-NN distance".into(),
        knn_top.len().to_string(),
        format!("{}/{}", hits(&knn_top), planted.len()),
        fmt_f64(jaccard(&knn_top, &od_top)),
    ]);
    t.push(vec![
        "DB(0.995, T/k)".into(),
        db.len().to_string(),
        format!("{}/{}", hits(&db), planted.len()),
        fmt_f64(jaccard(&db, &od_top)),
    ]);
    let loci = loci_outliers(engine, full, LociConfig::default());
    t.push(vec![
        "LOCI (3-sigma MDEF)".into(),
        loci.len().to_string(),
        format!("{}/{}", hits(&loci), planted.len()),
        fmt_f64(jaccard(&loci, &od_top)),
    ]);
    emit(
        "e10_detectors",
        "full-space detector context (N=1200, d=8, 3 planted outliers)",
        &t,
        dir,
    );
}

/// E12 — extension: the frontier (Apriori-style) search at
/// dimensionalities far beyond the materialised lattice's d <= 26
/// limit, with `max_dim`-bounded exploration.
pub fn e12_frontier(dir: &Path) {
    use hos_core::frontier::frontier_search;
    use hos_data::synth::planted::{generate, PlantedSpec};
    use hos_data::Metric;
    use hos_index::LinearScan;

    let mut t = Table::new(vec![
        "d",
        "max_dim",
        "minimal count",
        "planted covered",
        "complete",
        "OD evals",
        "query ms",
        "inlier evals",
    ]);
    for d in [16usize, 24, 32, 48] {
        let w = generate(&PlantedSpec {
            n_background: 1000,
            d,
            n_clusters: 3,
            cluster_sigma: 1.0,
            extent: 100.0,
            targets: vec![Subspace::from_dims(&[0]), Subspace::from_dims(&[1, 2])],
            shift_sigmas: 12.0,
            seed: 1200 + d as u64,
        })
        .expect("spec");
        let engine = LinearScan::new(w.dataset.clone(), Metric::L2);
        let threshold = hos_core::ThresholdPolicy::FullSpaceQuantile {
            q: 0.95,
            sample: 200,
        }
        .resolve(&engine, 5, 0)
        .expect("threshold");
        let qid = w.outlier_ids()[1];
        let q: Vec<f64> = w.dataset.row(qid).to_vec();
        for max_dim in [2usize, 3] {
            let ((out, inlier_evals), secs) = crate::timed(|| {
                let out = frontier_search(&engine, &q, Some(qid), 5, threshold, max_dim, 1);
                let iq: Vec<f64> = w.dataset.row(0).to_vec();
                let inl = frontier_search(&engine, &iq, Some(0), 5, threshold, max_dim, 1);
                (out, inl.stats.od_evals)
            });
            // The planted deviation is "covered" when some reported
            // minimal subspace is comparable with the target: a subset
            // (the injected shift already outlying in fewer dims) or a
            // superset (outlying only with a borderline companion dim
            // at high d, where the global threshold grows with
            // dimensionality).
            let target = Subspace::from_dims(&[1, 2]);
            let covered = out
                .minimal
                .iter()
                .any(|s| s.is_subset_of(target) || s.is_superset_of(target));
            t.push(vec![
                d.to_string(),
                max_dim.to_string(),
                out.minimal.len().to_string(),
                covered.to_string(),
                out.complete.to_string(),
                out.stats.od_evals.to_string(),
                ms(secs),
                inlier_evals.to_string(),
            ]);
        }
    }
    emit(
        "e12_frontier",
        "extension: frontier search beyond the lattice limit (N=1000, k=5, planted [1] and [2,3])",
        &t,
        dir,
    );
}

/// E11 — the "space → outliers" contrast made concrete: Knorr & Ng's
/// intensional knowledge (strongest outlying spaces + strongest/weak
/// outliers) side by side with HOS-Miner's per-point answers for the
/// same points.
pub fn e11_intensional(dir: &Path) {
    let d = 6;
    let w = standard_planted(600, d, 1100);
    let miner = fit_with(w.dataset.clone(), 5, 0.95);
    // DB predicate tuned to the workload scale: dmin of one OD "hop".
    let dmin = miner.threshold() / 5.0;
    let ik = intensional::intensional_knowledge(miner.engine(), 0.995, dmin);

    let mut t = Table::new(vec!["quantity", "value"]);
    t.push(vec![
        "strongest outlying spaces".to_string(),
        ik.strongest_spaces
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" "),
    ]);
    t.push(vec![
        "strongest outliers".to_string(),
        format!("{:?}", ik.strongest_outliers),
    ]);
    t.push(vec![
        "weak outliers".to_string(),
        format!("{:?}", ik.weak_outliers),
    ]);
    for &id in ik.strongest_outliers.iter().take(4) {
        let out = miner.query_id(id).expect("query");
        t.push(vec![
            format!("HOS-Miner minimal subspaces of #{id}"),
            out.minimal
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    emit(
        "e11_intensional",
        "space->outliers (Knorr-Ng intensional knowledge) vs outlier->spaces (HOS-Miner), d=6",
        &t,
        dir,
    );
}
