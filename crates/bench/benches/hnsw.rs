//! Approximate-vs-exact crossover benchmarks for the HNSW tier.
//!
//! The question this file answers: at what dataset size does
//! candidate-generation-plus-exact-re-rank (`HnswEngine`) beat the
//! exact scans it competes with — and what does the default `ef` buy
//! in recall at that point? Three groups:
//!
//! * `hnsw_vs_linear_knn` — one full-space k-NN query per engine
//!   across the n sweep; the per-n pair locates the crossover (the
//!   `hnsw_crossover_n` kernel key tracks the same break-even through
//!   `bench compare`).
//! * `hnsw_ef_sweep` — query latency as `ef` widens at the largest n:
//!   the recall/latency dial the calibration routine climbs.
//! * `hnsw_build` — graph construction per n, the cost the query-side
//!   wins have to amortise.
//!
//! Every timed configuration is recall-sanity-checked against the
//! exact engine before the clock starts (mean recall@k over a probe
//! batch must clear the 0.95 contract at default `ef`), so a broken
//! graph can never post a flattering number. Results land in
//! `bench-summary.json` (see the criterion stub); the single-core
//! container makes the absolute numbers conservative.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::{recall_at_k, HnswConfig, HnswEngine, KnnEngine, LinearScan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 8;
const K: usize = 5;
const SIZES: [usize; 3] = [2_000, 8_000, 32_000];

fn dataset(n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(42);
    let flat: Vec<f64> = (0..n * D).map(|_| rng.gen_range(0.0..100.0)).collect();
    Dataset::from_flat(flat, D).unwrap()
}

/// Mean recall@k of `approx` against `exact` over a probe batch of
/// member queries.
fn mean_recall(exact: &dyn KnnEngine, approx: &dyn KnnEngine, n: usize) -> f64 {
    let s = Subspace::full(D);
    let ds = exact.dataset();
    let probes: Vec<usize> = (0..32).map(|i| i * n / 32).collect();
    probes
        .iter()
        .map(|&qid| {
            let q = ds.row(qid);
            recall_at_k(
                &exact.knn(q, K, s, Some(qid)),
                &approx.knn(q, K, s, Some(qid)),
            )
        })
        .sum::<f64>()
        / probes.len() as f64
}

fn bench_hnsw_crossover(c: &mut Criterion) {
    let full = Subspace::full(D);

    let mut group = c.benchmark_group(format!("hnsw_vs_linear_knn_d{D}_k{K}"));
    group.sample_size(20);
    for n in SIZES {
        let ds = dataset(n);
        let hnsw = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let recall = mean_recall(&linear, &hnsw, n);
        assert!(recall >= 0.95, "n={n}: recall {recall} below contract");
        let query: Vec<f64> = ds.row(17).to_vec();
        group.bench_function(format!("hnsw_n{n}"), |b| {
            b.iter(|| black_box(hnsw.knn(&query, K, full, Some(17))));
        });
        group.bench_function(format!("linear_n{n}"), |b| {
            b.iter(|| black_box(linear.knn(&query, K, full, Some(17))));
        });
    }
    group.finish();

    let n = SIZES[SIZES.len() - 1];
    let ds = dataset(n);
    let hnsw = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
    let query: Vec<f64> = ds.row(17).to_vec();
    let mut group = c.benchmark_group(format!("hnsw_ef_sweep_n{n}_d{D}_k{K}"));
    group.sample_size(20);
    for ef in [32usize, 96, 256, 1024] {
        hnsw.set_search_width(ef);
        group.bench_function(format!("ef{ef}"), |b| {
            b.iter(|| black_box(hnsw.knn(&query, K, full, Some(17))));
        });
    }
    hnsw.set_search_width(HnswConfig::default().ef_search);
    group.finish();

    let mut group = c.benchmark_group(format!("hnsw_build_d{D}"));
    group.sample_size(10);
    for n in SIZES {
        let ds = dataset(n);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                black_box(HnswEngine::build(
                    ds.clone(),
                    Metric::L2,
                    HnswConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hnsw_crossover);
criterion_main!(benches);
