//! Criterion benchmarks for the baselines (feeds E6/E10): one
//! evolutionary generation step, LOF scoring, and kNN-outlier ranking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hos_baselines::evolutionary::EvolutionarySearch;
use hos_baselines::{knn_outlier, lof, EvoConfig};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::LinearScan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(4);
    let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(0.0..1.0)).collect();
    Dataset::from_flat(flat, d).unwrap()
}

fn bench_evolutionary(c: &mut Criterion) {
    let ds = dataset(1000, 8);
    c.bench_function("evo_fit_discretize_1k_8d", |b| {
        b.iter(|| {
            black_box(EvolutionarySearch::fit(
                &ds,
                EvoConfig {
                    phi: 8,
                    cube_dim: 2,
                    ..EvoConfig::default()
                },
            ))
        });
    });
    let cfg = EvoConfig {
        phi: 8,
        cube_dim: 2,
        population: 50,
        generations: 10,
        best_m: 5,
        seed: 1,
        ..EvoConfig::default()
    };
    c.bench_function("evo_run_10gen_pop50", |b| {
        b.iter(|| {
            let es = EvolutionarySearch::fit(&ds, cfg.clone());
            black_box(es.run())
        });
    });
}

fn bench_detectors(c: &mut Criterion) {
    let ds = dataset(1000, 6);
    let engine = LinearScan::new(ds, Metric::L2);
    let s = Subspace::full(6);
    c.bench_function("lof_scores_1k_6d", |b| {
        b.iter(|| black_box(lof::lof_scores(&engine, 10, s)));
    });
    c.bench_function("knn_outlier_top10_1k_6d", |b| {
        b.iter(|| black_box(knn_outlier::top_knn_outliers(&engine, 5, s, 10)));
    });
}

criterion_group!(benches, bench_evolutionary, bench_detectors);
criterion_main!(benches);
