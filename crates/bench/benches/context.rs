//! Criterion benchmarks for the query-context distance cache: a full
//! lattice of per-subspace OD evaluations (the workload of one
//! dynamic-search query, n=5000, d=10, k=10) with and without the
//! cached per-dimension pre-distance matrix.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::{KnnEngine, LinearScan, QueryContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 5000;
const D: usize = 10;
const K: usize = 10;

fn dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    let flat: Vec<f64> = (0..N * D).map(|_| rng.gen_range(0.0..100.0)).collect();
    Dataset::from_flat(flat, D).unwrap()
}

fn bench_full_lattice_od(c: &mut Criterion) {
    let ds = dataset();
    let engine = LinearScan::new(ds.clone(), Metric::L2);
    let query: Vec<f64> = ds.row(17).to_vec();
    let subspaces: Vec<Subspace> = Subspace::all_nonempty(D).collect();

    let mut group = c.benchmark_group("full_lattice_od_n5000_d10_k10");
    group.sample_size(10);
    group.bench_function("uncached_scan", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &s in &subspaces {
                total += engine.od(&query, K, s, Some(17));
            }
            black_box(total)
        });
    });
    group.bench_function("cached_context", |b| {
        b.iter(|| {
            let ctx = QueryContext::build(&ds, Metric::L2, &query);
            let mut total = 0.0;
            for &s in &subspaces {
                total += ctx.od(K, s, Some(17));
            }
            black_box(total)
        });
    });
    group.finish();

    // A single level (the shape batch_od sees per search round), to
    // show the cache also pays before the lattice is fully walked.
    let level5: Vec<Subspace> = Subspace::all_of_dim(D, 5).collect();
    let mut group = c.benchmark_group("level5_od_n5000_d10_k10");
    group.sample_size(10);
    group.bench_function("uncached_scan", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &s in &level5 {
                total += engine.od(&query, K, s, Some(17));
            }
            black_box(total)
        });
    });
    group.bench_function("cached_context", |b| {
        b.iter(|| {
            let ctx = QueryContext::build(&ds, Metric::L2, &query);
            let mut total = 0.0;
            for &s in &level5 {
                total += ctx.od(K, s, Some(17));
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_full_lattice_od);
criterion_main!(benches);
