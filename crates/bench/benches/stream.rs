//! Streaming-maintenance throughput: updates/s and queries/s under a
//! sliding window, per engine.
//!
//! The workload the `stream` CLI serves: a window of `W` points over
//! an endless row stream, each arrival paired with one retirement
//! (steady state), with full-space OD queries interleaved. Three
//! shapes per engine configuration:
//!
//! * `updates` — one insert + one remove of the oldest live point per
//!   iteration: the pure maintenance cost. Inverse time = sliding
//!   window updates/s.
//! * `queries_under_churn` — one full-space OD against the churned
//!   window: detection latency while tombstones and appended rows are
//!   present (the X-tree's bounded re-bulk-load and the VA-file's
//!   widened marks are in play by then).
//! * `interleaved` — ten updates then one OD query, the CLI's
//!   steady-state mix.
//!
//! Results land in `bench-summary.json` (criterion stub) and CI
//! uploads them next to the shard-scaling summary, so streaming
//! throughput is tracked across PRs alongside batch latency.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::{build_engine_sharded, Engine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const W: usize = 10_000;
const D: usize = 8;
const K: usize = 8;

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let flat: Vec<f64> = (0..n * D).map(|_| rng.gen_range(0.0..100.0)).collect();
    Dataset::from_flat(flat, D).unwrap()
}

/// Engine configurations under test: every engine kind plus the
/// sharded composition (per-shard routing is its own maintenance
/// path).
fn configs() -> Vec<(String, Engine, usize)> {
    vec![
        ("linear".into(), Engine::Linear, 1),
        ("linear_shards4".into(), Engine::Linear, 4),
        ("xtree".into(), Engine::XTree, 1),
        ("vafile".into(), Engine::VaFile, 1),
    ]
}

/// A rotating supply of fresh rows to insert.
struct RowFeed {
    rows: Vec<f64>,
    at: usize,
}

impl RowFeed {
    fn new(seed: u64) -> RowFeed {
        let mut rng = StdRng::seed_from_u64(seed);
        RowFeed {
            rows: (0..4096 * D).map(|_| rng.gen_range(0.0..100.0)).collect(),
            at: 0,
        }
    }

    fn next(&mut self) -> &[f64] {
        let i = self.at % 4096;
        self.at += 1;
        &self.rows[i * D..(i + 1) * D]
    }
}

fn bench_stream(c: &mut Criterion) {
    let full = Subspace::full(D);

    let mut group = c.benchmark_group(format!("stream_updates_w{W}_d{D}"));
    group.sample_size(10);
    for (name, kind, shards) in configs() {
        let mut engine = build_engine_sharded(kind, dataset(W, 1), Metric::L2, shards, shards);
        let mut feed = RowFeed::new(2);
        let mut oldest = 0usize;
        group.bench_function(&name, |b| {
            b.iter(|| {
                let inc = engine.as_incremental().expect("incremental");
                let id = inc.insert(feed.next()).expect("insert");
                inc.remove(oldest).expect("remove");
                oldest += 1;
                black_box(id)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("stream_queries_under_churn_w{W}_d{D}_k{K}"));
    group.sample_size(10);
    for (name, kind, shards) in configs() {
        let mut engine = build_engine_sharded(kind, dataset(W, 3), Metric::L2, shards, shards);
        // Churn 20% of the window first so tombstones, appended rows
        // and any rebuilds are in play when the queries run.
        let mut feed = RowFeed::new(4);
        {
            let inc = engine.as_incremental().expect("incremental");
            for oldest in 0..W / 5 {
                inc.insert(feed.next()).expect("insert");
                inc.remove(oldest).expect("remove");
            }
        }
        let query: Vec<f64> = engine.dataset().row(W - 1).to_vec();
        group.bench_function(&name, |b| {
            b.iter(|| black_box(engine.od(&query, K, full, Some(W - 1))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("stream_interleaved_w{W}_d{D}_k{K}"));
    group.sample_size(10);
    for (name, kind, shards) in configs() {
        let mut engine = build_engine_sharded(kind, dataset(W, 5), Metric::L2, shards, shards);
        let mut feed = RowFeed::new(6);
        let mut oldest = 0usize;
        group.bench_function(&name, |b| {
            b.iter(|| {
                let mut last = 0usize;
                {
                    let inc = engine.as_incremental().expect("incremental");
                    for _ in 0..10 {
                        last = inc.insert(feed.next()).expect("insert");
                        inc.remove(oldest).expect("remove");
                        oldest += 1;
                    }
                }
                let query: Vec<f64> = engine.dataset().row(last).to_vec();
                black_box(engine.od(&query, K, full, Some(last)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
