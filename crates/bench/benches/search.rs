//! Criterion benchmarks for the subspace searches (feeds E1/E2):
//! dynamic TSF-ordered search vs static pruned sweeps vs exhaustive.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hos_baselines::{exhaustive_search, ExhaustiveMode};
use hos_core::od::OdMode;
use hos_core::priors::Priors;
use hos_core::search::dynamic_search;
use hos_data::synth::planted::{generate, PlantedSpec};
use hos_data::{Metric, Subspace};
use hos_index::LinearScan;

fn setup(d: usize) -> (LinearScan, Vec<f64>, usize, f64) {
    let w = generate(&PlantedSpec {
        n_background: 1000,
        d,
        n_clusters: 3,
        cluster_sigma: 1.0,
        extent: 80.0,
        targets: vec![Subspace::from_dims(&[0, 1])],
        shift_sigmas: 12.0,
        seed: 9,
    })
    .unwrap();
    let id = w.outliers[0].id;
    let query: Vec<f64> = w.dataset.row(id).to_vec();
    let engine = LinearScan::new(w.dataset, Metric::L2);
    // A threshold in the interesting range: between typical and
    // planted full-space ODs.
    use hos_index::KnnEngine;
    let typical = engine.od(engine.dataset().row(0), 5, Subspace::full(d), Some(0));
    (engine, query, id, typical * 2.0)
}

fn bench_search_strategies(c: &mut Criterion) {
    let d = 10;
    let (engine, query, id, t) = setup(d);
    let priors = Priors::uniform(d);
    let mut group = c.benchmark_group("outlier_query_d10");
    group.bench_function("dynamic", |b| {
        b.iter(|| black_box(dynamic_search(&engine, &query, Some(id), 5, t, &priors, 1)));
    });
    group.bench_function("static_both", |b| {
        b.iter(|| {
            black_box(exhaustive_search(
                &engine,
                &query,
                Some(id),
                5,
                t,
                ExhaustiveMode::BothStatic,
                OdMode::Raw,
            ))
        });
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            black_box(exhaustive_search(
                &engine,
                &query,
                Some(id),
                5,
                t,
                ExhaustiveMode::Full,
                OdMode::Raw,
            ))
        });
    });
    group.finish();
}

fn bench_dimensional_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_by_d");
    for d in [8usize, 12, 16] {
        let (engine, query, id, t) = setup(d);
        let priors = Priors::uniform(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(dynamic_search(&engine, &query, Some(id), 5, t, &priors, 1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_strategies, bench_dimensional_scaling);
criterion_main!(benches);
