//! Criterion benchmarks for the lattice machinery (feeds E3): pruning
//! closures and per-round TSF computation, the bookkeeping overhead
//! the dynamic search pays on top of OD evaluations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hos_core::priors::Priors;
use hos_data::Subspace;
use hos_lattice::{Lattice, TsfComputer};

fn bench_prune_closures(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_closure");
    for d in [12usize, 16, 20] {
        // Prune down from a mid-level subspace: 2^(d/2) subsets.
        let mid = Subspace::from_dims(&(0..d / 2).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("down_mid", d), &d, |b, _| {
            b.iter_batched(
                || Lattice::new(d),
                |mut l| black_box(l.prune_down(mid)),
                criterion::BatchSize::SmallInput,
            );
        });
        let single = Subspace::from_dims(&[0]);
        group.bench_with_input(BenchmarkId::new("up_single", d), &d, |b, _| {
            b.iter_batched(
                || Lattice::new(d),
                |mut l| black_box(l.prune_up(single)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_tsf_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsf_all_levels");
    for d in [12usize, 16, 20] {
        let tsf = TsfComputer::new(d);
        let lattice = Lattice::new(d);
        let priors = Priors::uniform(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut best = 0.0f64;
                for m in 1..=d {
                    best = best.max(tsf.tsf(m, priors.up(m), priors.down(m), &lattice));
                }
                black_box(best)
            });
        });
    }
    group.finish();
}

fn bench_open_at_level(c: &mut Criterion) {
    let d = 16;
    let lattice = Lattice::new(d);
    c.bench_function("open_at_level_8_of_16", |b| {
        b.iter(|| black_box(lattice.open_at_level(8).len()));
    });
}

criterion_group!(
    benches,
    bench_prune_closures,
    bench_tsf_round,
    bench_open_at_level
);
criterion_main!(benches);
