//! Criterion benchmarks for the lattice machinery (feeds E3): the
//! prefix-stack lattice kernel against the direct per-subspace
//! combine (the headline `>= 2x` full-lattice target), per-node cost
//! across levels (the `|s|`-independence claim), plus pruning closures
//! and per-round TSF computation — the bookkeeping overhead the
//! dynamic search pays on top of OD evaluations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hos_core::priors::Priors;
use hos_data::{Dataset, Metric, Subspace};
use hos_index::QueryContext;
use hos_lattice::{Lattice, TsfComputer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 2000;
const K: usize = 10;

fn dataset(d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    let flat: Vec<f64> = (0..N * d).map(|_| rng.gen_range(0.0..100.0)).collect();
    Dataset::from_flat(flat, d).unwrap()
}

/// Full-lattice query workload (all `2^d - 1` subspace ODs of one
/// query point, the cost of one worst-case dynamic search): the
/// pre-PR baseline recombines `|s|` cached columns per node
/// (`QueryContext::od`); the prefix-stack walker folds exactly one
/// column per node. Both paths produce bit-identical ODs — asserted
/// here, so the bench can never silently compare different work.
fn bench_full_lattice_kernel(c: &mut Criterion) {
    for d in [10usize, 12] {
        let ds = dataset(d);
        let query: Vec<f64> = ds.row(17).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L2, &query);
        let mut ordered: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        ordered.sort_by(|a, b| a.walk_cmp(*b));

        // Equivalence guard: identical sums, bit for bit.
        {
            let mut w = ctx.walker();
            let direct: f64 = ordered.iter().map(|&s| ctx.od(K, s, Some(17))).sum();
            let walked: f64 = ordered
                .iter()
                .map(|&s| {
                    w.seek(s);
                    w.od(K, Some(17))
                })
                .sum();
            assert_eq!(direct, walked, "kernel must stay bit-identical");
        }

        let mut group = c.benchmark_group(format!("full_lattice_n{N}_d{d}_k{K}"));
        group.sample_size(10);
        group.bench_function("direct_combine", |b| {
            b.iter(|| {
                let mut total = 0.0;
                for &s in &ordered {
                    total += ctx.od(K, s, Some(17));
                }
                black_box(total)
            });
        });
        group.bench_function("prefix_walker", |b| {
            b.iter(|| {
                let mut w = ctx.walker();
                let mut total = 0.0;
                for &s in &ordered {
                    w.seek(s);
                    total += w.od(K, Some(17));
                }
                black_box(total)
            });
        });
        group.finish();
    }
}

/// Per-node cost across single levels of a d=12 lattice: the direct
/// combine grows linearly in `|s| = m`; the walker's per-node cost is
/// one fold per distinct trie prefix — flat in `m`. Ids encode the
/// level so the summary JSON tracks the shape across PRs.
fn bench_per_node_level_cost(c: &mut Criterion) {
    let d = 12usize;
    let ds = dataset(d);
    let query: Vec<f64> = ds.row(17).to_vec();
    let ctx = QueryContext::build(&ds, Metric::L2, &query);
    let mut group = c.benchmark_group(format!("level_walk_n{N}_d{d}_k{K}"));
    group.sample_size(10);
    for m in [2usize, 6, 10] {
        let mut level: Vec<Subspace> = Subspace::all_of_dim(d, m).collect();
        level.sort_by(|a, b| a.walk_cmp(*b));
        group.bench_with_input(BenchmarkId::new("direct_combine", m), &m, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for &s in &level {
                    total += ctx.od(K, s, Some(17));
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("prefix_walker", m), &m, |b, _| {
            b.iter(|| {
                let mut w = ctx.walker();
                let mut total = 0.0;
                for &s in &level {
                    w.seek(s);
                    total += w.od(K, Some(17));
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_prune_closures(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_closure");
    for d in [12usize, 16, 20] {
        // Prune down from a mid-level subspace: 2^(d/2) subsets.
        let mid = Subspace::from_dims(&(0..d / 2).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("down_mid", d), &d, |b, _| {
            b.iter_batched(
                || Lattice::new(d),
                |mut l| black_box(l.prune_down(mid)),
                criterion::BatchSize::SmallInput,
            );
        });
        let single = Subspace::from_dims(&[0]);
        group.bench_with_input(BenchmarkId::new("up_single", d), &d, |b, _| {
            b.iter_batched(
                || Lattice::new(d),
                |mut l| black_box(l.prune_up(single)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_tsf_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsf_all_levels");
    for d in [12usize, 16, 20] {
        let tsf = TsfComputer::new(d);
        let lattice = Lattice::new(d);
        let priors = Priors::uniform(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut best = 0.0f64;
                for m in 1..=d {
                    best = best.max(tsf.tsf(m, priors.up(m), priors.down(m), &lattice));
                }
                black_box(best)
            });
        });
    }
    group.finish();
}

fn bench_open_at_level(c: &mut Criterion) {
    let d = 16;
    let lattice = Lattice::new(d);
    c.bench_function("open_at_level_8_of_16", |b| {
        b.iter(|| black_box(lattice.open_at_level(8).len()));
    });
}

criterion_group!(
    benches,
    bench_full_lattice_kernel,
    bench_per_node_level_cost,
    bench_prune_closures,
    bench_tsf_round,
    bench_open_at_level
);
criterion_main!(benches);
