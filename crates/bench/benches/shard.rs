//! Shard-scaling benchmarks for the exact sharded execution layer.
//!
//! The workload the ROADMAP cares about: ONE query against a large
//! dataset (n = 50k, d = 10) — the case the per-subspace and per-query
//! fan-outs cannot parallelise at all. `ShardedEngine` splits the scan
//! across data shards and merges exactly, so the single-query latency
//! should drop roughly with the shard count (the merge is k·shards
//! work, noise next to the scans).
//!
//! Two shapes per shard count:
//!
//! * `od_full_space` — a single full-space OD through the evaluator
//!   seam: the pure intra-query parallelism story. The 4-shard
//!   configuration is the headline number (target: ≥ 1.5× over the
//!   1-shard evaluator).
//! * `level5_batch` — one lattice level (all 252 five-dimensional
//!   subspaces) through `od_batch` with 4 worker threads: shows the
//!   evaluator switches to subspace-parallel fan-out for big batches
//!   and sharding does not regress the batch path.
//!
//! Results land in `bench-summary.json` (see the criterion stub) so
//! the scaling trajectory is tracked across PRs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::{Engine, KnnEngine, ShardedEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 50_000;
const D: usize = 10;
const K: usize = 10;

fn dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(42);
    let flat: Vec<f64> = (0..N * D).map(|_| rng.gen_range(0.0..100.0)).collect();
    Dataset::from_flat(flat, D).unwrap()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let ds = dataset();
    let query: Vec<f64> = ds.row(17).to_vec();
    let full = Subspace::full(D);
    let level5: Vec<Subspace> = Subspace::all_of_dim(D, 5).collect();

    let engines: Vec<(usize, ShardedEngine)> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|shards| {
            (
                shards,
                ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, shards, shards),
            )
        })
        .collect();

    // Sanity before timing: every configuration must agree bitwise.
    let reference = engines[0].1.od(&query, K, full, Some(17));
    for (shards, engine) in &engines {
        assert_eq!(
            engine.od(&query, K, full, Some(17)),
            reference,
            "shards={shards} diverged"
        );
    }

    let mut group = c.benchmark_group(format!("od_full_space_n{N}_d{D}_k{K}"));
    group.sample_size(10);
    for (shards, engine) in &engines {
        group.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| {
                let mut ev = engine.evaluator(&query, K, Some(17));
                black_box(ev.od(full))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("level5_batch_n{N}_d{D}_k{K}_threads4"));
    group.sample_size(10);
    for (shards, engine) in &engines {
        group.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| {
                let mut ev = engine.evaluator(&query, K, Some(17));
                black_box(ev.od_batch(&level5, 4))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
