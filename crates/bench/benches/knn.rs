//! Criterion micro-benchmarks for the k-NN engines (feeds E7):
//! X-tree vs linear scan across projected dimensionalities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::{KnnEngine, LinearScan, XTree, XTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(42);
    // Clustered data, the regime the X-tree is built for.
    let centers: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    let mut flat = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = &centers[i % centers.len()];
        for &mu in c {
            flat.push(mu + rng.gen_range(-2.0..2.0));
        }
    }
    Dataset::from_flat(flat, d).unwrap()
}

fn bench_knn(c: &mut Criterion) {
    let n = 8000;
    let d = 12;
    let ds = dataset(n, d);
    let xtree = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
    let linear = LinearScan::new(ds.clone(), Metric::L2);
    let query: Vec<f64> = ds.row(17).to_vec();

    let mut group = c.benchmark_group("knn_subspace");
    for sub_dim in [2usize, 6, 12] {
        let s = Subspace::from_dims(&(0..sub_dim).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::new("xtree", sub_dim), &s, |b, &s| {
            b.iter(|| black_box(xtree.knn(&query, 5, s, Some(17))));
        });
        group.bench_with_input(BenchmarkId::new("linear", sub_dim), &s, |b, &s| {
            b.iter(|| black_box(linear.knn(&query, 5, s, Some(17))));
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let ds = dataset(4000, 8);
    let mut group = c.benchmark_group("xtree_build_4k_8d");
    group.bench_function("insert", |b| {
        b.iter(|| black_box(XTree::build(ds.clone(), Metric::L2, XTreeConfig::default())));
    });
    group.bench_function("bulk_load", |b| {
        b.iter(|| {
            black_box(XTree::bulk_load(
                ds.clone(),
                Metric::L2,
                XTreeConfig::default(),
            ))
        });
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let ds = dataset(8000, 8);
    let xtree = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
    let linear = LinearScan::new(ds.clone(), Metric::L2);
    let query: Vec<f64> = ds.row(3).to_vec();
    let s = Subspace::full(8);
    let mut group = c.benchmark_group("range_query");
    group.bench_function("xtree", |b| {
        b.iter(|| black_box(xtree.range(&query, 5.0, s, Some(3))));
    });
    group.bench_function("linear", |b| {
        b.iter(|| black_box(linear.range(&query, 5.0, s, Some(3))));
    });
    group.finish();
}

criterion_group!(benches, bench_knn, bench_build, bench_range);
criterion_main!(benches);
