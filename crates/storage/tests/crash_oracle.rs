//! Kill-and-recover differential oracle plus WAL edge-case coverage.
//!
//! The tentpole contract: a process killed at an ARBITRARY WAL byte
//! offset, restarted, and re-queried must answer bit-identically to an
//! uninterrupted twin. We simulate the kill exactly — copy the store
//! directory and truncate the newest WAL at every byte offset — then
//! recover, re-apply the ops the "crash" lost (a real client would
//! resubmit unacknowledged writes), and compare queries bit for bit:
//! f64 `to_bits`, subspace sets, and `od_evals` counts.

use hos_core::{HosMiner, HosMinerConfig, ModelFile, ThresholdPolicy};
use hos_data::Dataset;
use hos_storage::store::SnapshotState;
use hos_storage::{
    miner_from_snapshot, snapshot_search_width, Op, StorageError, Store, StoreConfig,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hos-crash-oracle-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn config() -> HosMinerConfig {
    HosMinerConfig {
        k: 4,
        threshold: ThresholdPolicy::Fixed(2.5),
        sample_size: 8,
        seed: 5,
        ..HosMinerConfig::default()
    }
}

fn row(i: usize) -> Vec<f64> {
    vec![
        (i % 17) as f64 * 0.5,
        ((i * 7) % 13) as f64 * 0.25,
        ((i * 3) % 11) as f64,
    ]
}

fn apply(miner: &mut HosMiner, op: &Op) {
    match op {
        Op::Insert(r) => {
            miner.insert_point(r).unwrap();
        }
        Op::Retire(id) => {
            miner.retire_point(*id as usize).unwrap();
        }
        other => panic!("oracle only drives insert/retire, got {other:?}"),
    }
}

fn checkpoint(store: &mut Store, miner: &HosMiner) -> u64 {
    let text = ModelFile::from_miner(miner).to_text();
    store
        .snapshot(&SnapshotState {
            dataset: miner.engine().dataset(),
            model: Some(&text),
            base: 0,
            oldest: 0,
            rows_consumed: 0,
            search_width: snapshot_search_width(miner),
        })
        .unwrap();
    store.last_seq()
}

fn newest_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .collect();
    wals.sort();
    wals.pop().expect("store has a wal")
}

fn wal_header_len(bytes: &[u8]) -> usize {
    // "HOSWAL01" | u64 start_seq | u32 meta_len | meta | u32 crc
    assert_eq!(&bytes[..8], b"HOSWAL01");
    let meta_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    20 + meta_len + 4
}

/// Bit-exact comparison of everything a client can observe.
fn assert_same_answers(recovered: &HosMiner, twin: &HosMiner, cut: usize) {
    assert_eq!(
        recovered.threshold().to_bits(),
        twin.threshold().to_bits(),
        "threshold diverged at cut {cut}"
    );
    let (rd, td) = (recovered.engine().dataset(), twin.engine().dataset());
    assert_eq!(rd.len(), td.len(), "row count diverged at cut {cut}");
    assert_eq!(rd.live_len(), td.live_len(), "live count at cut {cut}");
    for (a, b) in rd.as_flat().iter().zip(td.as_flat()) {
        assert_eq!(a.to_bits(), b.to_bits(), "row bytes diverged at cut {cut}");
    }
    // Query a spread of live ids: newest, mid-window, oldest live.
    let n = td.len();
    for id in [n - 1, n - 8, n - td.live_len()] {
        let qa = recovered.query_id(id).unwrap();
        let qb = twin.query_id(id).unwrap();
        assert_eq!(qa.minimal, qb.minimal, "minimal set for id {id}, cut {cut}");
        assert_eq!(
            qa.stats.od_evals, qb.stats.od_evals,
            "od_evals for id {id}, cut {cut}"
        );
        assert_eq!(
            qa.outlying.len(),
            qb.outlying.len(),
            "outlying count for id {id}, cut {cut}"
        );
        for (sa, sb) in qa.outlying.iter().zip(&qb.outlying) {
            assert_eq!(sa.subspace, sb.subspace, "subspace for id {id}, cut {cut}");
            assert_eq!(
                sa.od.map(f64::to_bits),
                sb.od.map(f64::to_bits),
                "od bits for id {id}, cut {cut}"
            );
        }
    }
}

/// The tentpole oracle: for EVERY byte offset of the newest WAL,
/// truncating there (the torn-write model: a crash preserves an
/// arbitrary prefix), recovering, and re-applying the lost suffix
/// must reproduce the uninterrupted twin bit for bit.
#[test]
fn kill_at_every_wal_offset_recovers_bit_identical() {
    let cfg = config();
    let meta = "oracle k=4".to_string();
    let dir = temp_dir("sweep-main");
    let (mut store, rec) = Store::open(
        &dir,
        StoreConfig {
            sync_every: 8,
            meta: meta.clone(),
        },
    )
    .unwrap();
    assert!(rec.snapshot.is_none() && rec.ops.is_empty());

    // Bootstrap on 30 rows, snapshot, then a serve-style mixed write
    // stream: insert row i, retire the oldest live id (FIFO window).
    let window = 30;
    let total = 100;
    let rows: Vec<Vec<f64>> = (0..total).map(row).collect();
    let mut twin = HosMiner::fit(Dataset::from_rows(&rows[..window]).unwrap(), cfg).unwrap();
    checkpoint(&mut store, &twin);

    let mut ops: Vec<Op> = Vec::new();
    for (i, r) in rows[window..].iter().enumerate() {
        ops.push(Op::Insert(r.clone()));
        ops.push(Op::Retire(i as u64));
    }
    // Mid-sequence snapshot so the sweep exercises snapshot + WAL-tail
    // recovery, not just cold replay. Ops are applied then logged
    // (serve's discipline); only applied ops reach the WAL.
    let mid = ops.len() / 2;
    for (j, op) in ops.iter().enumerate() {
        apply(&mut twin, op);
        store.append(op).unwrap();
        if j == mid {
            checkpoint(&mut store, &twin);
        }
    }
    store.sync().unwrap();
    let last_seq = store.last_seq();
    assert_eq!(last_seq, ops.len() as u64, "one seq per logged op");
    drop(store);

    let wal_path = newest_wal(&dir);
    let full = std::fs::read(&wal_path).unwrap();
    let header_len = wal_header_len(&full);
    assert!(full.len() > header_len, "post-snapshot wal holds records");

    let crash_dir = temp_dir("sweep-crash");
    for cut in header_len..=full.len() {
        copy_dir(&dir, &crash_dir);
        let wal = crash_dir.join(wal_path.file_name().unwrap());
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        // Recovery must never fail on a torn tail — only truncate it.
        let (_store2, rec2) = Store::open(
            &crash_dir,
            StoreConfig {
                sync_every: 8,
                meta: meta.clone(),
            },
        )
        .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let snap = rec2.snapshot.as_ref().expect("snapshot survives the cut");
        let mut recovered = miner_from_snapshot(snap, &cfg).unwrap();
        // Recovered ops must be exactly a prefix of what was logged
        // after the snapshot the store chose to recover from.
        let snap_seq = snap.meta().seq as usize;
        for (k, (seq, op)) in rec2.ops.iter().enumerate() {
            assert_eq!(
                *seq as usize,
                snap_seq + k + 1,
                "contiguous seqs, cut {cut}"
            );
            assert_eq!(op, &ops[*seq as usize - 1], "op payload intact, cut {cut}");
            apply(&mut recovered, op);
        }
        // A real client re-submits writes the crash never acknowledged:
        // re-apply the lost suffix, then demand bit-identity.
        for op in &ops[rec2.last_seq() as usize..] {
            apply(&mut recovered, op);
        }
        assert_same_answers(&recovered, &twin, cut);

        // Recovery is idempotent: reopening the already-normalised dir
        // recovers the same sequence point with no torn tail left.
        if cut % 16 == 0 {
            let (_s3, rec3) = Store::open(
                &crash_dir,
                StoreConfig {
                    sync_every: 8,
                    meta: meta.clone(),
                },
            )
            .unwrap();
            assert_eq!(rec3.last_seq(), rec2.last_seq(), "idempotent at cut {cut}");
            assert!(!rec3.truncated_tail, "second open is clean at cut {cut}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// A checksum-corrupt record mid-file (valid records follow it) is a
/// typed `StorageError::Corrupt` — never a panic, and never silent
/// truncation, because the bytes after it prove the file does not end
/// there.
#[test]
fn mid_file_corruption_is_a_typed_error() {
    let dir = temp_dir("corrupt");
    let meta = "oracle k=4".to_string();
    let (mut store, _) = Store::open(
        &dir,
        StoreConfig {
            sync_every: 1,
            meta: meta.clone(),
        },
    )
    .unwrap();
    for i in 0..20 {
        store.append(&Op::Insert(row(i))).unwrap();
    }
    drop(store);

    let wal = newest_wal(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    let header_len = wal_header_len(&bytes);
    // Flip a byte inside the FIRST record's payload: its CRC fails
    // while 19 intact records follow.
    let target = header_len + 8 + 2;
    bytes[target] ^= 0xFF;
    std::fs::write(&wal, &bytes).unwrap();

    let err = Store::open(
        &dir,
        StoreConfig {
            sync_every: 1,
            meta,
        },
    )
    .err()
    .expect("corrupt mid-file record must refuse to open");
    match err {
        StorageError::Corrupt { what, offset } => {
            assert!(what.contains("checksum"), "unexpected kind: {what}");
            assert_eq!(offset, header_len as u64, "points at the bad record");
        }
        other => panic!("expected Corrupt, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash between WAL fsync and snapshot rotation: the snapshot file
/// exists, but the old WAL (whose records the snapshot already
/// covers) is still in place. Recovery must NOT replay those records
/// a second time.
#[test]
fn no_duplicate_replay_when_crash_lands_between_snapshot_and_rotation() {
    let meta = "oracle k=4".to_string();
    let sc = || StoreConfig {
        sync_every: 1,
        meta: meta.clone(),
    };
    let pre = temp_dir("dup-pre");
    let (mut store, _) = Store::open(&pre, sc()).unwrap();
    for i in 0..10 {
        store.append(&Op::Insert(row(i))).unwrap();
    }
    store.sync().unwrap();
    drop(store);

    // `crash` is the directory as it looked the instant before the
    // snapshot: wal-0 holding ops 1..=10.
    let crash = temp_dir("dup-crash");
    copy_dir(&pre, &crash);

    // Take the snapshot in `pre`, then transplant ONLY the snapshot
    // file into `crash` — exactly the torn window where the snapshot
    // hit disk but the WAL was never rotated.
    let rows: Vec<Vec<f64>> = (0..10).map(row).collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let (mut store, _) = Store::open(&pre, sc()).unwrap();
    store
        .snapshot(&SnapshotState {
            dataset: &ds,
            model: None,
            base: 0,
            oldest: 0,
            rows_consumed: 10,
            search_width: 0,
        })
        .unwrap();
    drop(store);
    let snap_file = std::fs::read_dir(&pre)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .starts_with("snap-")
        })
        .expect("snapshot written");
    std::fs::copy(&snap_file, crash.join(snap_file.file_name().unwrap())).unwrap();

    let (mut store, rec) = Store::open(&crash, sc()).unwrap();
    let snap = rec.snapshot.as_ref().expect("snapshot recovered");
    assert_eq!(snap.meta().seq, 10);
    assert!(
        rec.ops.is_empty(),
        "ops at or below the snapshot seq must not replay twice: {:?}",
        rec.ops
    );
    assert_eq!(rec.last_seq(), 10);

    // Sequence numbering resumes where the snapshot left off.
    assert_eq!(store.append(&Op::Retire(3)).unwrap(), 11);
    store.sync().unwrap();
    drop(store);
    let (_store, rec2) = Store::open(&crash, sc()).unwrap();
    assert_eq!(rec2.ops, vec![(11, Op::Retire(3))]);
    let _ = std::fs::remove_dir_all(&pre);
    let _ = std::fs::remove_dir_all(&crash);
}

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property test over random op sequences: whatever interleaving
    /// of appends, snapshots, and clean reopens happens, recovery
    /// always returns exactly the ops logged since the last snapshot,
    /// in order, with contiguous sequence numbers.
    #[test]
    fn random_op_sequences_round_trip(plan in prop::collection::vec((0u8..=9, 0u64..40), 1..40)) {
            let dir = temp_dir(&format!("prop-{}", CASE.fetch_add(1, Ordering::Relaxed)));
            let meta = "prop k=4".to_string();
            let sc = || StoreConfig { sync_every: 3, meta: meta.clone() };
            let rows: Vec<Vec<f64>> = (0..5).map(row).collect();
            let ds = Dataset::from_rows(&rows).unwrap();

            let (mut store, rec) = Store::open(&dir, sc()).unwrap();
            prop_assert!(rec.ops.is_empty() && rec.snapshot.is_none());
            // Shadow model of what recovery must return.
            let mut since_snap: Vec<(u64, Op)> = Vec::new();
            let mut snap_seq: Option<u64> = None;
            let mut next_seq = 0u64;

            for (code, x) in plan {
                match code {
                    0..=5 => {
                        next_seq += 1;
                        let op = Op::Insert(row(x as usize));
                        prop_assert_eq!(store.append(&op).unwrap(), next_seq);
                        since_snap.push((next_seq, op));
                    }
                    6 | 7 => {
                        next_seq += 1;
                        let op = Op::Retire(x);
                        prop_assert_eq!(store.append(&op).unwrap(), next_seq);
                        since_snap.push((next_seq, op));
                    }
                    8 => {
                        store.snapshot(&SnapshotState {
                            dataset: &ds,
                            model: None,
                            base: 0,
                            oldest: 0,
                            rows_consumed: next_seq,
                            search_width: 0,
                        }).unwrap();
                        snap_seq = Some(next_seq);
                        since_snap.clear();
                    }
                    _ => {
                        // Clean shutdown + reopen mid-sequence.
                        drop(store);
                        let (s, rec) = Store::open(&dir, sc()).unwrap();
                        store = s;
                        prop_assert!(!rec.truncated_tail);
                        prop_assert_eq!(rec.snapshot.as_ref().map(|s| s.meta().seq), snap_seq);
                        prop_assert_eq!(&rec.ops, &since_snap);
                    }
                }
            }
            drop(store);
            let (_s, rec) = Store::open(&dir, sc()).unwrap();
            prop_assert!(!rec.truncated_tail);
            prop_assert_eq!(rec.snapshot.as_ref().map(|s| s.meta().seq), snap_seq);
            prop_assert_eq!(&rec.ops, &since_snap);
            let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Snapshot seq and WAL start_seq march together, strictly
/// monotonically, across snapshot cycles — and superseded files are
/// pruned so the directory always holds exactly one snapshot and its
/// tail WAL.
#[test]
fn snapshot_and_wal_versions_are_monotone() {
    let dir = temp_dir("monotone");
    let meta = "oracle k=4".to_string();
    let (mut store, _) = Store::open(
        &dir,
        StoreConfig {
            sync_every: 4,
            meta,
        },
    )
    .unwrap();
    let rows: Vec<Vec<f64>> = (0..5).map(row).collect();
    let ds = Dataset::from_rows(&rows).unwrap();
    let mut prev_seq = None;
    let mut expect = 0u64;
    for round in 0..4u64 {
        for i in 0..(3 + round) {
            expect += 1;
            assert_eq!(store.append(&Op::Insert(row(i as usize))).unwrap(), expect);
        }
        store
            .snapshot(&SnapshotState {
                dataset: &ds,
                model: None,
                base: 0,
                oldest: 0,
                rows_consumed: expect,
                search_width: 0,
            })
            .unwrap();
        let snaps = hos_storage::snapshot::list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 1, "superseded snapshots pruned");
        assert_eq!(snaps[0].0, expect, "snapshot named by its seq");
        if let Some(p) = prev_seq {
            assert!(snaps[0].0 > p, "snapshot seqs strictly increase");
        }
        prev_seq = Some(snaps[0].0);
        // Exactly one WAL, rotated to start at the snapshot seq.
        let wal = newest_wal(&dir);
        assert!(wal
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains(&format!("{expect:016x}")));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
