//! Append-only write-ahead log.
//!
//! File layout:
//!
//! ```text
//! header:  "HOSWAL01" | u64 start_seq | u32 meta_len | meta | u32 crc(header)
//! record:  u32 payload_len | u32 crc(payload) | payload
//! payload: u64 seq | u8 tag | body
//! ```
//!
//! All integers are little-endian. `start_seq` is the sequence number
//! of the snapshot this log extends — the first record carries
//! `start_seq + 1` and sequence numbers increase by exactly one.
//! WAL files are created as a temp file (header + fsync) and renamed
//! into place, so a header is never torn; only record tails can be.
//!
//! Torn-tail policy (see [`read_wal`]): an append interrupted by a
//! crash leaves bytes that run off the end of the file, or a final
//! record whose checksum fails. Both are truncated silently — they are
//! the expected artifact of a kill. A checksum failure *followed by
//! further bytes* cannot be a torn append (appends only grow the file)
//! and is reported as [`StorageError::Corrupt`].

use crate::{crc32, Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"HOSWAL01";
/// Upper bound on a record payload. An insert of a `MAX_DIM`-wide row
/// is ~2 KiB; 1 MiB leaves ample slack while letting the reader reject
/// garbage length prefixes quickly.
pub const MAX_PAYLOAD: u32 = 1 << 20;

const TAG_INSERT: u8 = 1;
const TAG_RETIRE: u8 = 2;
const TAG_COMPACT: u8 = 3;
const TAG_REESTIMATE: u8 = 4;
const TAG_BOOTSTRAP: u8 = 5;

/// One logged mutation. The stream/serve writer appends an op *before*
/// applying it (log-then-apply), so replaying the ops over the last
/// snapshot reproduces the in-memory state exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A row entered the window.
    Insert(Vec<f64>),
    /// Row `id` (current engine numbering) was tombstoned.
    Retire(u64),
    /// The 3:1 tombstone valve fired: compact + refit.
    Compact,
    /// The threshold was re-resolved over the live window.
    Reestimate,
    /// The bootstrap window filled and the initial fit ran.
    Bootstrap,
}

impl Op {
    fn tag(&self) -> u8 {
        match self {
            Op::Insert(_) => TAG_INSERT,
            Op::Retire(_) => TAG_RETIRE,
            Op::Compact => TAG_COMPACT,
            Op::Reestimate => TAG_REESTIMATE,
            Op::Bootstrap => TAG_BOOTSTRAP,
        }
    }

    /// Short human name, used in recovery reports.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Insert(_) => "insert",
            Op::Retire(_) => "retire",
            Op::Compact => "compact",
            Op::Reestimate => "reestimate",
            Op::Bootstrap => "bootstrap",
        }
    }
}

/// Serialises `seq` + `op` into a record payload (no framing).
fn encode_payload(seq: u64, op: &Op) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    p.extend_from_slice(&seq.to_le_bytes());
    p.push(op.tag());
    match op {
        Op::Insert(row) => {
            p.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for v in row {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        Op::Retire(id) => p.extend_from_slice(&id.to_le_bytes()),
        Op::Compact | Op::Reestimate | Op::Bootstrap => {}
    }
    p
}

/// Parses a record payload back into `(seq, op)`. The payload already
/// passed its checksum, so a parse failure here means the writer and
/// reader disagree — reported as corruption at `offset` (the record's
/// position in the file), never a panic.
fn decode_payload(payload: &[u8], offset: u64) -> Result<(u64, Op)> {
    let corrupt = |what: &'static str| StorageError::Corrupt { what, offset };
    if payload.len() < 9 {
        return Err(corrupt("wal record payload (too short)"));
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let tag = payload[8];
    let body = &payload[9..];
    let op = match tag {
        TAG_INSERT => {
            if body.len() < 4 {
                return Err(corrupt("wal insert record (missing dim)"));
            }
            let dim = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
            let vals = &body[4..];
            if vals.len() != dim * 8 {
                return Err(corrupt("wal insert record (dim/body mismatch)"));
            }
            let row = vals
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Op::Insert(row)
        }
        TAG_RETIRE => {
            if body.len() != 8 {
                return Err(corrupt("wal retire record (bad body)"));
            }
            Op::Retire(u64::from_le_bytes(body.try_into().unwrap()))
        }
        TAG_COMPACT if body.is_empty() => Op::Compact,
        TAG_REESTIMATE if body.is_empty() => Op::Reestimate,
        TAG_BOOTSTRAP if body.is_empty() => Op::Bootstrap,
        _ => return Err(corrupt("wal record tag")),
    };
    Ok((seq, op))
}

fn encode_header(start_seq: u64, meta: &str) -> Vec<u8> {
    let mut h = Vec::with_capacity(24 + meta.len());
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&start_seq.to_le_bytes());
    h.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    h.extend_from_slice(meta.as_bytes());
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h
}

/// The canonical file name for the WAL that extends snapshot `seq`.
pub fn wal_file_name(start_seq: u64) -> String {
    format!("wal-{start_seq:016x}.log")
}

/// Parses a `wal-<seq:016x>.log` file name back to its start sequence.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Everything a successful [`read_wal`] learned about one file.
pub struct WalContents {
    /// Snapshot sequence this log extends.
    pub start_seq: u64,
    /// Store configuration string recorded at creation.
    pub meta: String,
    /// Decoded records, in file order.
    pub ops: Vec<(u64, Op)>,
    /// Byte length of the valid prefix. Shorter than the file length
    /// exactly when a torn tail was dropped.
    pub valid_len: u64,
    /// Whether a torn final record was dropped.
    pub truncated_tail: bool,
}

/// Reads and validates a WAL file, applying the torn-tail policy.
pub fn read_wal(path: &Path) -> Result<WalContents> {
    let bytes = std::fs::read(path)?;
    let bad = |msg: String| StorageError::BadHeader(format!("{}: {msg}", path.display()));
    if bytes.len() < 24 || &bytes[..8] != MAGIC {
        return Err(bad("not a hos-storage wal file".into()));
    }
    let start_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let meta_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let header_len = 20 + meta_len + 4;
    if meta_len > MAX_PAYLOAD as usize || bytes.len() < header_len {
        return Err(bad("wal header truncated".into()));
    }
    let stored_crc = u32::from_le_bytes(bytes[20 + meta_len..header_len].try_into().unwrap());
    if crc32(&bytes[..20 + meta_len]) != stored_crc {
        return Err(bad("wal header checksum mismatch".into()));
    }
    let meta = String::from_utf8(bytes[20..20 + meta_len].to_vec())
        .map_err(|_| bad("wal header meta is not utf-8".into()))?;

    let mut ops = Vec::new();
    let mut offset = header_len as u64;
    let eof = bytes.len() as u64;
    let mut truncated_tail = false;
    let mut prev_seq = start_seq;
    while offset < eof {
        // A record needs at least its 8-byte frame.
        if offset + 8 > eof {
            truncated_tail = true;
            break;
        }
        let o = offset as usize;
        let len = u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let end = offset + 8 + u64::from(len);
        if len > MAX_PAYLOAD || end > eof {
            // Appends only grow the file, so a frame that runs past EOF
            // (including a garbage length prefix from a half-written
            // frame) is a torn tail. A genuinely corrupt length prefix
            // mid-file is indistinguishable and also truncates here —
            // the checksum on every *complete* record bounds the blast
            // radius to the tail.
            truncated_tail = true;
            break;
        }
        let stored = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().unwrap());
        let payload = &bytes[o + 8..end as usize];
        if crc32(payload) != stored {
            if end == eof {
                // Final record, checksum fails: a partially flushed
                // append. Normal crash artifact — drop it.
                truncated_tail = true;
                break;
            }
            return Err(StorageError::Corrupt {
                what: "wal record checksum",
                offset,
            });
        }
        let (seq, op) = decode_payload(payload, offset)?;
        if seq != prev_seq + 1 {
            return Err(StorageError::Corrupt {
                what: "wal record sequence",
                offset,
            });
        }
        prev_seq = seq;
        ops.push((seq, op));
        offset = end;
    }
    Ok(WalContents {
        start_seq,
        meta,
        ops,
        valid_len: offset,
        truncated_tail,
    })
}

/// Appends records to one WAL file with batched fsync (group commit).
pub struct WalWriter {
    file: File,
    path: PathBuf,
    start_seq: u64,
    next_seq: u64,
    /// `fsync` after this many appends; 0 = only on explicit [`sync`].
    sync_every: usize,
    pending: usize,
}

impl WalWriter {
    /// Creates a fresh WAL extending snapshot `start_seq`. The header
    /// is written to a temp file, fsynced, then renamed into place so a
    /// crash never leaves a half-written header under the real name.
    pub fn create(dir: &Path, start_seq: u64, meta: &str, sync_every: usize) -> Result<WalWriter> {
        let path = dir.join(wal_file_name(start_seq));
        let tmp = dir.join(format!("{}.tmp", wal_file_name(start_seq)));
        let mut f = File::create(&tmp)?;
        f.write_all(&encode_header(start_seq, meta))?;
        f.sync_all()?;
        std::fs::rename(&tmp, &path)?;
        sync_dir(dir)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(WalWriter {
            file,
            path,
            start_seq,
            next_seq: start_seq + 1,
            sync_every,
            pending: 0,
        })
    }

    /// Creates a WAL at an explicit path (no rename dance) — used by
    /// rotation completion, which publishes the file itself.
    pub fn create_at(
        path: &Path,
        start_seq: u64,
        meta: &str,
        sync_every: usize,
    ) -> Result<WalWriter> {
        let mut file = File::create(path)?;
        file.write_all(&encode_header(start_seq, meta))?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            start_seq,
            next_seq: start_seq + 1,
            sync_every,
            pending: 0,
        })
    }

    /// Reopens an existing WAL for appending, first truncating any
    /// torn tail so new records start on a valid boundary. Returns the
    /// writer plus everything read from the valid prefix.
    pub fn reopen(path: &Path, sync_every: usize) -> Result<(WalWriter, WalContents)> {
        let contents = read_wal(path)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let actual = file.metadata()?.len();
        if actual > contents.valid_len {
            file.set_len(contents.valid_len)?;
            file.sync_all()?;
        }
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        let next_seq = contents.ops.last().map_or(contents.start_seq, |(s, _)| *s) + 1;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                start_seq: contents.start_seq,
                next_seq,
                sync_every,
                pending: 0,
            },
            contents,
        ))
    }

    /// Appends one op, assigning and returning its sequence number.
    /// Durability is governed by `sync_every` / [`WalWriter::sync`].
    pub fn append(&mut self, op: &Op) -> Result<u64> {
        let seq = self.next_seq;
        let payload = encode_payload(seq, op);
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.file.write_all(&rec)?;
        self.next_seq += 1;
        self.pending += 1;
        if self.sync_every > 0 && self.pending >= self.sync_every {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended record, or the snapshot
    /// seq this log extends if nothing has been appended yet.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Snapshot sequence this log extends.
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }

    /// Path of the file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Fsyncs a directory so a rename/created file inside it is durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    // Directory fsync is a unix-ism; on other platforms opening a
    // directory as a file fails, and there is no equivalent — skip.
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hos-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Insert(vec![1.0, -2.5, 3.25]),
            Op::Bootstrap,
            Op::Insert(vec![0.0, 0.5, f64::MAX]),
            Op::Retire(7),
            Op::Compact,
            Op::Reestimate,
        ]
    }

    #[test]
    fn roundtrip_all_op_kinds() {
        let dir = temp_dir("roundtrip");
        let mut w = WalWriter::create(&dir, 10, "cfg", 1).unwrap();
        let ops = sample_ops();
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(w.append(op).unwrap(), 11 + i as u64);
        }
        let c = read_wal(w.path()).unwrap();
        assert_eq!(c.start_seq, 10);
        assert_eq!(c.meta, "cfg");
        assert!(!c.truncated_tail);
        let got: Vec<&Op> = c.ops.iter().map(|(_, op)| op).collect();
        let want: Vec<&Op> = ops.iter().collect();
        assert_eq!(got, want);
        let seqs: Vec<u64> = c.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (11..=16).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_at_every_offset_truncates_never_errors() {
        let dir = temp_dir("torn");
        let mut w = WalWriter::create(&dir, 0, "m", 1).unwrap();
        for op in sample_ops() {
            w.append(&op).unwrap();
        }
        let path = w.path().to_path_buf();
        let full = std::fs::read(&path).unwrap();
        // Record-region start: magic(8)+seq(8)+len(4)+meta(1)+crc(4).
        let rec_start = 8 + 8 + 4 + 1 + 4;
        for cut in rec_start..full.len() {
            let p = dir.join("cut.log");
            std::fs::write(&p, &full[..cut]).unwrap();
            let c = read_wal(&p).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            // Valid prefix must be a prefix of the ops actually written,
            // and anything dropped is flagged as a torn tail.
            assert!(c.valid_len <= cut as u64);
            if (cut as u64) > c.valid_len {
                assert!(c.truncated_tail, "cut at {cut} dropped bytes silently");
            }
            for (i, (seq, _)) in c.ops.iter().enumerate() {
                assert_eq!(*seq, 1 + i as u64);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn midfile_corruption_is_typed_error() {
        let dir = temp_dir("corrupt");
        let mut w = WalWriter::create(&dir, 0, "m", 1).unwrap();
        for op in sample_ops() {
            w.append(&op).unwrap();
        }
        let path = w.path().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the FIRST record's payload (not the
        // last), so valid records follow the damage.
        let rec_start = 8 + 8 + 4 + 1 + 4;
        bytes[rec_start + 8 + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&path) {
            Err(StorageError::Corrupt { what, offset }) => {
                assert!(what.contains("checksum"), "got {what}");
                assert_eq!(offset, rec_start as u64);
            }
            other => panic!(
                "expected Corrupt, got {other:?}",
                other = other.map(|c| c.ops.len())
            ),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_is_typed_error() {
        let dir = temp_dir("gap");
        let mut w = WalWriter::create(&dir, 5, "m", 1).unwrap();
        w.append(&Op::Compact).unwrap();
        // Hand-craft a record with seq 99 (should be 7).
        let payload = super::encode_payload(99, &Op::Compact);
        let mut rec = Vec::new();
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        let path = w.path().to_path_buf();
        use std::io::Write as _;
        OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(&rec)
            .unwrap();
        match read_wal(&path) {
            Err(StorageError::Corrupt { what, .. }) => assert!(what.contains("sequence")),
            other => panic!("expected sequence error, got ok={:?}", other.is_ok()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends_cleanly() {
        let dir = temp_dir("reopen");
        let mut w = WalWriter::create(&dir, 0, "m", 1).unwrap();
        w.append(&Op::Insert(vec![1.0, 2.0])).unwrap();
        w.append(&Op::Retire(0)).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        // Tear the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut w2, c) = WalWriter::reopen(&path, 1).unwrap();
        assert!(c.truncated_tail);
        assert_eq!(c.ops.len(), 1);
        assert_eq!(w2.next_seq(), 2);
        // The file was physically truncated; appending resumes at seq 2.
        w2.append(&Op::Compact).unwrap();
        drop(w2);
        let c2 = read_wal(&path).unwrap();
        assert!(!c2.truncated_tail);
        assert_eq!(
            c2.ops,
            vec![(1, Op::Insert(vec![1.0, 2.0])), (2, Op::Compact)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_names_roundtrip() {
        assert_eq!(parse_wal_name(&wal_file_name(0)), Some(0));
        assert_eq!(
            parse_wal_name(&wal_file_name(0xdead_beef)),
            Some(0xdead_beef)
        );
        assert_eq!(parse_wal_name("wal-xyz.log"), None);
        assert_eq!(parse_wal_name("snap-0000000000000000.col"), None);
    }

    #[test]
    fn bad_headers_are_typed_errors() {
        let dir = temp_dir("hdr");
        let p = dir.join("wal-0000000000000000.log");
        std::fs::write(&p, b"garbage").unwrap();
        assert!(matches!(read_wal(&p), Err(StorageError::BadHeader(_))));
        // Right magic, corrupted header crc.
        let mut h = super::encode_header(0, "m");
        let n = h.len();
        h[n - 1] ^= 0xFF;
        std::fs::write(&p, &h).unwrap();
        assert!(matches!(read_wal(&p), Err(StorageError::BadHeader(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
