//! Store orchestration: one directory holding the newest snapshot and
//! the WAL that extends it.
//!
//! Lifecycle:
//!
//! 1. [`Store::open`] recovers — pick the highest-sequence snapshot,
//!    read the WAL files, and return the snapshot plus the ops with
//!    `seq > snapshot.seq` (records the snapshot already covers are
//!    skipped, which is what makes a crash *between* snapshot write
//!    and WAL rotation replay-safe instead of double-applied).
//! 2. [`Store::append`] logs ops (fsync batched per `sync_every`).
//! 3. [`Store::snapshot`] writes a new snapshot at the last appended
//!    sequence, rotates to a fresh WAL, and prunes old files.
//!
//! Crash windows and their recovery:
//!
//! * mid-append → torn tail, truncated on reopen ([`crate::wal`]);
//! * mid-snapshot-write → only a `.tmp` exists; ignored;
//! * after snapshot, before new WAL → old WAL replays, filter skips
//!   covered seqs; rotation is completed on open;
//! * after new WAL, before old files deleted → both WALs read in
//!   order; pruning finishes on open.

use crate::snapshot::{list_snapshots, write_snapshot, Snapshot, SnapshotContents};
use crate::wal::{parse_wal_name, read_wal, Op, WalWriter};
use crate::{Result, StorageError};
use std::path::{Path, PathBuf};

/// Knobs for opening a store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Fsync after this many appended records (group commit); 0 means
    /// only on explicit [`Store::sync`] / snapshot.
    pub sync_every: usize,
    /// Free-form configuration fingerprint (k, metric, engine, …).
    /// Recorded in every file; a mismatch on open is a typed error,
    /// because replaying ops under a different configuration would
    /// silently produce a different miner than the one that logged
    /// them.
    pub meta: String,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            sync_every: 64,
            meta: String::new(),
        }
    }
}

/// What [`Store::open`] recovered from disk.
pub struct Recovery {
    /// Highest-sequence snapshot, if any exists yet.
    pub snapshot: Option<Snapshot>,
    /// WAL records to replay on top of it, ascending, contiguous,
    /// all with `seq > snapshot.seq`.
    pub ops: Vec<(u64, Op)>,
    /// Whether a torn final record was truncated during recovery.
    pub truncated_tail: bool,
}

impl Recovery {
    /// Sequence number of the recovered state (snapshot + replay).
    pub fn last_seq(&self) -> u64 {
        self.ops
            .last()
            .map(|(s, _)| *s)
            .or(self.snapshot.as_ref().map(|s| s.meta().seq))
            .unwrap_or(0)
    }
}

/// The live state handed to [`Store::snapshot`] — everything the
/// snapshot records besides what the store itself tracks (seq, meta).
pub struct SnapshotState<'a> {
    pub dataset: &'a hos_data::Dataset,
    /// `ModelFile` text of the fitted model, if one exists.
    pub model: Option<&'a str>,
    pub base: u64,
    pub oldest: u64,
    pub rows_consumed: u64,
    /// Resolved engine search width (0 = not width-tunable).
    pub search_width: u64,
}

/// An open store: the active WAL writer plus directory bookkeeping.
pub struct Store {
    dir: PathBuf,
    writer: WalWriter,
    config: StoreConfig,
}

fn list_wals(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_wal_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

impl Store {
    /// Opens (creating if needed) the store at `dir` and recovers its
    /// state. See the module docs for the crash-window analysis.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(Store, Recovery)> {
        std::fs::create_dir_all(dir)?;

        // Sweep half-written temp files from crashed snapshot/rotation
        // attempts; they are never part of recovered state.
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".tmp"))
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }

        // Newest snapshot wins. It was published by rename, so if it
        // exists it is complete — a checksum failure there is real
        // corruption, not a crash artifact, and recovery stops rather
        // than silently serving older state.
        let snaps = list_snapshots(dir)?;
        let snapshot = match snaps.last() {
            Some((_, path)) => Some(Snapshot::open(path)?),
            None => None,
        };
        let snap_seq = snapshot.as_ref().map_or(0, |s| s.meta().seq);
        if let Some(s) = &snapshot {
            if s.meta().meta != config.meta {
                return Err(StorageError::MetaMismatch {
                    expected: config.meta,
                    found: s.meta().meta.clone(),
                });
            }
        }

        // Read every WAL in start-seq order; keep records newer than
        // the snapshot. Only the newest file may legitimately have a
        // torn tail (older ones stopped receiving appends at rotation).
        let wals = list_wals(dir)?;
        let mut ops: Vec<(u64, Op)> = Vec::new();
        let mut truncated_tail = false;
        for (i, (_, path)) in wals.iter().enumerate() {
            let contents = read_wal(path)?;
            if contents.meta != config.meta {
                return Err(StorageError::MetaMismatch {
                    expected: config.meta,
                    found: contents.meta,
                });
            }
            if contents.truncated_tail && i + 1 < wals.len() {
                return Err(StorageError::Corrupt {
                    what: "torn record in a rotated (non-final) wal",
                    offset: contents.valid_len,
                });
            }
            truncated_tail |= contents.truncated_tail;
            for (seq, op) in contents.ops {
                if seq > snap_seq {
                    ops.push((seq, op));
                }
            }
        }
        // Contiguity across files: replay must cover snap_seq+1..=last
        // with no gaps (a gap means a WAL file went missing).
        for (k, (seq, _)) in ops.iter().enumerate() {
            if *seq != snap_seq + 1 + k as u64 {
                return Err(StorageError::Corrupt {
                    what: "wal sequence gap across files",
                    offset: *seq,
                });
            }
        }

        let last_seq = ops.last().map_or(snap_seq, |(s, _)| *s);

        // Normalise: end with exactly one WAL named for the snapshot it
        // extends, containing exactly the replay tail. Rewriting the
        // tail (rather than appending to whichever file survived)
        // completes any interrupted rotation.
        let newest_matches = wals
            .last()
            .is_some_and(|(s, _)| *s == snap_seq && wals.len() == 1);
        let writer = if newest_matches && !truncated_tail {
            let (writer, _) = WalWriter::reopen(&wals.last().unwrap().1, config.sync_every)?;
            writer
        } else {
            // Rewrite the tail under a temp name first — the target
            // name may be one of the files being replaced — then
            // publish by rename and drop the superseded files.
            let rotate_tmp = dir.join("wal.rotate.tmp");
            let mut w = WalWriter::create_at(&rotate_tmp, snap_seq, &config.meta, 0)?;
            for (_, op) in &ops {
                w.append(op)?;
            }
            w.sync()?;
            drop(w);
            let final_path = dir.join(crate::wal::wal_file_name(snap_seq));
            std::fs::rename(&rotate_tmp, &final_path)?;
            crate::wal::sync_dir(dir)?;
            for (s, path) in &wals {
                if *s != snap_seq {
                    let _ = std::fs::remove_file(path);
                }
            }
            let (writer, _) = WalWriter::reopen(&final_path, config.sync_every)?;
            writer
        };
        debug_assert_eq!(writer.last_seq(), last_seq);

        // Prune snapshots older than the one recovered.
        for (s, path) in &snaps {
            if *s != snap_seq {
                let _ = std::fs::remove_file(path);
            }
        }

        Ok((
            Store {
                dir: dir.to_path_buf(),
                writer,
                config,
            },
            Recovery {
                snapshot,
                ops,
                truncated_tail,
            },
        ))
    }

    /// Logs one op; durability batched per `sync_every`.
    pub fn append(&mut self, op: &Op) -> Result<u64> {
        self.writer.append(op)
    }

    /// Forces all logged ops to stable storage (group-commit flush).
    pub fn sync(&mut self) -> Result<()> {
        self.writer.sync()
    }

    /// Sequence number of the last logged op.
    pub fn last_seq(&self) -> u64 {
        self.writer.last_seq()
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a snapshot of `state` at the current sequence, rotates
    /// to a fresh WAL, and prunes superseded files. On return, crash
    /// recovery needs zero replay.
    pub fn snapshot(&mut self, state: &SnapshotState<'_>) -> Result<PathBuf> {
        self.sync()?;
        let seq = self.writer.last_seq();
        let old_wal = self.writer.path().to_path_buf();
        let old_start = self.writer.start_seq();
        let path = write_snapshot(
            &self.dir,
            &SnapshotContents {
                seq,
                base: state.base,
                oldest: state.oldest,
                rows_consumed: state.rows_consumed,
                search_width: state.search_width,
                dataset: state.dataset,
                model: state.model,
                meta: &self.config.meta,
            },
        )?;
        if old_start != seq {
            // Rotate: fresh WAL named for the new snapshot, then drop
            // superseded files. Crash anywhere here is recovered by
            // the seq filter + normalisation in `open`.
            self.writer =
                WalWriter::create(&self.dir, seq, &self.config.meta, self.config.sync_every)?;
            let _ = std::fs::remove_file(&old_wal);
        }
        for (s, p) in list_snapshots(&self.dir)? {
            if s != seq {
                let _ = std::fs::remove_file(p);
            }
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::Dataset;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hos-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> StoreConfig {
        StoreConfig {
            sync_every: 1,
            meta: "k=3 metric=l2".into(),
        }
    }

    fn ds(n: usize) -> Dataset {
        Dataset::from_flat((0..n * 2).map(|i| i as f64).collect(), 2).unwrap()
    }

    #[test]
    fn fresh_store_appends_and_recovers() {
        let dir = temp_dir("fresh");
        let (mut store, rec) = Store::open(&dir, cfg()).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.ops.is_empty());
        store.append(&Op::Insert(vec![1.0, 2.0])).unwrap();
        store.append(&Op::Retire(0)).unwrap();
        store.sync().unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, cfg()).unwrap();
        assert_eq!(rec.ops.len(), 2);
        assert_eq!(rec.last_seq(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_rotates_and_skips_covered_ops() {
        let dir = temp_dir("rotate");
        let (mut store, _) = Store::open(&dir, cfg()).unwrap();
        for i in 0..5 {
            store.append(&Op::Insert(vec![i as f64, 0.0])).unwrap();
        }
        store
            .snapshot(&SnapshotState {
                dataset: &ds(5),
                model: Some("model-text"),
                base: 0,
                oldest: 0,
                rows_consumed: 5,
                search_width: 0,
            })
            .unwrap();
        store.append(&Op::Retire(0)).unwrap();
        store.sync().unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, cfg()).unwrap();
        let snap = rec.snapshot.as_ref().expect("snapshot recovered");
        assert_eq!(snap.meta().seq, 5);
        assert_eq!(snap.meta().rows_consumed, 5);
        assert_eq!(snap.meta().model.as_deref(), Some("model-text"));
        // Only the post-snapshot op replays.
        assert_eq!(rec.ops, vec![(6, Op::Retire(0))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_snapshot_and_rotation_replays_once() {
        let dir = temp_dir("dup");
        let (mut store, _) = Store::open(&dir, cfg()).unwrap();
        for i in 0..4 {
            store.append(&Op::Insert(vec![i as f64, 1.0])).unwrap();
        }
        store.sync().unwrap();
        // Simulate the crash window: snapshot written, but the WAL was
        // never rotated — the old WAL still holds seqs 1..=4.
        write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 4,
                base: 0,
                oldest: 0,
                rows_consumed: 4,
                search_width: 0,
                dataset: &ds(4),
                model: None,
                meta: &cfg().meta,
            },
        )
        .unwrap();
        drop(store);
        let (store2, rec) = Store::open(&dir, cfg()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().meta().seq, 4);
        assert!(rec.ops.is_empty(), "covered ops must not replay");
        assert_eq!(store2.last_seq(), 4);
        // Normalisation leaves exactly one WAL, named for seq 4.
        let wals = list_wals(&dir).unwrap();
        assert_eq!(wals.len(), 1);
        assert_eq!(wals[0].0, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_mismatch_is_typed_error() {
        let dir = temp_dir("meta");
        let (mut store, _) = Store::open(&dir, cfg()).unwrap();
        store.append(&Op::Compact).unwrap();
        store.sync().unwrap();
        drop(store);
        let other = StoreConfig {
            sync_every: 1,
            meta: "k=9 metric=l1".into(),
        };
        assert!(matches!(
            Store::open(&dir, other),
            Err(StorageError::MetaMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovery_then_continue() {
        let dir = temp_dir("torn");
        let (mut store, _) = Store::open(&dir, cfg()).unwrap();
        for i in 0..3 {
            store.append(&Op::Insert(vec![i as f64, 2.0])).unwrap();
        }
        store.sync().unwrap();
        let wal_path = store.writer.path().to_path_buf();
        drop(store);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut store2, rec) = Store::open(&dir, cfg()).unwrap();
        assert!(rec.truncated_tail);
        assert_eq!(rec.ops.len(), 2);
        // Appends continue from the truncated position.
        let seq = store2.append(&Op::Compact).unwrap();
        assert_eq!(seq, 3);
        drop(store2);
        let (_, rec2) = Store::open(&dir, cfg()).unwrap();
        assert_eq!(rec2.ops.len(), 3);
        assert!(!rec2.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_then_no_replay_needed() {
        let dir = temp_dir("clean");
        let (mut store, _) = Store::open(&dir, cfg()).unwrap();
        for i in 0..3 {
            store.append(&Op::Insert(vec![i as f64, 3.0])).unwrap();
        }
        store
            .snapshot(&SnapshotState {
                dataset: &ds(3),
                model: None,
                base: 0,
                oldest: 0,
                rows_consumed: 3,
                search_width: 0,
            })
            .unwrap();
        drop(store);
        let (_, rec) = Store::open(&dir, cfg()).unwrap();
        assert!(rec.ops.is_empty());
        assert_eq!(rec.last_seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
