//! Snapshot → miner reconstruction, shared by `stream --wal`,
//! `fit --snapshot` consumers and `hos-serve --data-dir`.
//!
//! The recovered miner must answer **bit-identically** to the process
//! that wrote the snapshot, which pins three choices here:
//!
//! * the model (threshold, priors) comes from the embedded
//!   [`hos_core::ModelFile`] text — never re-learned;
//! * tombstones are re-applied through the incremental engine path
//!   over an all-live build (the op shape the engines' equivalence
//!   oracle guarantees), instead of asking index builders to accept a
//!   pre-tombstoned dataset;
//! * a width-tunable engine gets the *persisted* resolved width, not a
//!   fresh calibration — calibrating on the recovered window would
//!   resolve a different `ef` than the original fit did.

use crate::snapshot::Snapshot;
use crate::{Result, StorageError};
use hos_core::{HosMiner, HosMinerConfig, LearnedModel, ModelFile, SearchStats};

/// Flattens the replay-relevant configuration into the fingerprint
/// string stored in every WAL header and snapshot. Opening a store
/// with a different fingerprint is a typed error: replaying ops under
/// changed semantics (k, metric, engine, threshold policy, …) would
/// silently produce a different miner than the one that logged them.
/// Machine knobs that never change results (`--threads`, `--shards`)
/// are deliberately absent, so a restart may re-tune them freely.
pub fn config_fingerprint(config: &HosMinerConfig, window: Option<usize>) -> String {
    let mut s = format!(
        "v1 k={} metric={} engine={} threshold={:?} samples={} smoothing={:?} seed={}",
        config.k,
        config.metric.name(),
        config.engine,
        config.threshold,
        config.sample_size,
        config.prior_smoothing,
        config.seed,
    );
    if let Some(ef) = config.ef {
        s.push_str(&format!(" ef={ef}"));
    }
    if let Some(rt) = config.recall_target {
        s.push_str(&format!(" recall-target={rt:?}"));
    }
    if let Some(w) = window {
        s.push_str(&format!(" window={w}"));
    }
    s
}

/// Rebuilds a ready-to-query miner from a snapshot: all-live engine
/// build, embedded model installed, tombstones retired incrementally,
/// persisted search width restored. `config` supplies the live
/// threshold *policy* (so later re-estimation replays identically)
/// and the machine knobs; everything learned comes from the snapshot.
pub fn miner_from_snapshot(snap: &Snapshot, config: &HosMinerConfig) -> Result<HosMiner> {
    let meta = snap.meta();
    let model_text = meta.model.as_deref().ok_or_else(|| {
        StorageError::BadHeader("snapshot carries no model; cannot rebuild a miner".into())
    })?;
    let mf = ModelFile::from_text(model_text).map_err(StorageError::Model)?;
    let ds = snap.to_dataset_all_live()?;
    let mut cfg = *config;
    // The persisted resolved width wins over both tuning flags; see
    // the module docs.
    cfg.ef = (meta.search_width > 0).then_some(meta.search_width as usize);
    cfg.recall_target = None;
    let model = LearnedModel {
        priors: mf.priors,
        samples: mf.samples,
        threshold: mf.threshold,
        total_stats: SearchStats::default(),
    };
    let mut miner = HosMiner::from_parts(ds, cfg, model).map_err(StorageError::Model)?;
    for id in snap.dead_ids() {
        miner.retire_point(id).map_err(StorageError::Model)?;
    }
    Ok(miner)
}

/// The resolved search width of a miner's engine, in snapshot
/// encoding (0 = the engine is not width-tunable).
pub fn snapshot_search_width(miner: &HosMiner) -> u64 {
    miner.engine().search_width().map_or(0, |w| w as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{write_snapshot, SnapshotContents};
    use hos_data::synth::uniform;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hos-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn recovered_miner_answers_bit_identically() {
        let dir = temp_dir("bitident");
        let mut ds = uniform(150, 4, 0.0, 1.0, 3).unwrap();
        ds.push_row(&[9.0, 0.5, 0.5, 0.5]).unwrap();
        let config = HosMinerConfig {
            k: 4,
            sample_size: 10,
            ..HosMinerConfig::default()
        };
        let mut original = HosMiner::fit(ds, config).unwrap();
        // Mutate: retire a few, insert one — the snapshot must capture
        // the tombstoned shape.
        original.retire_point(3).unwrap();
        original.retire_point(77).unwrap();
        original.insert_point(&[0.25, 0.25, 0.25, 0.25]).unwrap();
        let model_text = ModelFile::from_miner(&original).to_text();
        let path = write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 12,
                base: 0,
                oldest: 0,
                rows_consumed: 0,
                search_width: snapshot_search_width(&original),
                dataset: original.engine().dataset(),
                model: Some(&model_text),
                meta: &config_fingerprint(&config, None),
            },
        )
        .unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let recovered = miner_from_snapshot(&snap, &config).unwrap();
        assert_eq!(
            recovered.threshold().to_bits(),
            original.threshold().to_bits()
        );
        assert_eq!(recovered.live_len(), original.live_len());
        for id in [0usize, 50, 150, 151] {
            let a = original.query_id(id).unwrap();
            let b = recovered.query_id(id).unwrap();
            assert_eq!(a.minimal, b.minimal, "point {id}");
            assert_eq!(a.outlying.len(), b.outlying.len(), "point {id}");
            assert_eq!(a.stats.od_evals, b.stats.od_evals, "point {id}");
            assert_eq!(a.stats.nodes_visited, b.stats.nodes_visited, "point {id}");
        }
        // Dead ids stay dead on both sides.
        assert!(original.query_id(3).is_err());
        assert!(recovered.query_id(3).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn modelless_snapshot_is_typed_error() {
        let dir = temp_dir("nomodel");
        let ds = uniform(30, 3, 0.0, 1.0, 1).unwrap();
        let path = write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 0,
                base: 0,
                oldest: 0,
                rows_consumed: 0,
                search_width: 0,
                dataset: &ds,
                model: None,
                meta: "",
            },
        )
        .unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let config = HosMinerConfig::default();
        assert!(miner_from_snapshot(&snap, &config).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_separates_result_affecting_flags() {
        let base = HosMinerConfig::default();
        let a = config_fingerprint(&base, None);
        assert_eq!(a, config_fingerprint(&base, None));
        let mut k9 = base;
        k9.k = 9;
        assert_ne!(a, config_fingerprint(&k9, None));
        assert_ne!(a, config_fingerprint(&base, Some(500)));
        // Machine knobs do NOT change the fingerprint.
        let mut fast = base;
        fast.threads = 8;
        fast.shards = 4;
        assert_eq!(a, config_fingerprint(&fast, None));
    }
}
