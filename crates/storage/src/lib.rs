//! Durable storage tier: an append-only write-ahead log plus compacted
//! columnar snapshots (DESIGN.md §12).
//!
//! The streaming seam (PR 3) and the resident server (PR 7) keep all
//! state in RAM and lose it on restart. This crate adds the missing
//! checkpoint/replay discipline:
//!
//! * [`wal`] — length-prefixed, CRC-checksummed records for the
//!   mutation ops (`insert`/`retire`/`compact`/…), appended by the
//!   single-writer path with batched `fsync`. Reading tolerates a torn
//!   final record (a crash mid-append) by truncating it; a corrupt
//!   record **followed by valid data** is a typed
//!   [`StorageError::Corrupt`], never a panic.
//! * [`snapshot`] — periodic compacted column-major snapshots of the
//!   live dataset (the layout [`hos_data::Dataset::to_column_major`]
//!   already defines), written atomically (temp + rename) with the
//!   fitted model embedded, and read back through an mmap (unix) or a
//!   chunked-read fallback so opening a snapshot does not copy the
//!   matrix onto the heap until rows are materialised.
//! * [`store`] — the orchestration: open a directory, recover
//!   (latest valid snapshot + WAL tail replay, skipping records the
//!   snapshot already covers), append, and rotate the WAL under a new
//!   snapshot.
//!
//! The correctness contract is differential: a process killed at an
//! arbitrary WAL offset, restarted, and re-queried answers
//! bit-identically (f64 `to_bits`, ids, eval counts) to a twin that
//! never crashed — pinned by `tests/crash_oracle.rs` and the CLI-level
//! SIGKILL test.

pub mod mmap;
pub mod recover;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use recover::{config_fingerprint, miner_from_snapshot, snapshot_search_width};
pub use snapshot::{Snapshot, SnapshotMeta};
pub use store::{Recovery, Store, StoreConfig};
pub use wal::Op;

use std::fmt;

/// Errors produced by the storage tier. Corruption is always a typed
/// error — the recovery path never panics on hostile bytes.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record or snapshot failed validation at a known byte offset.
    Corrupt {
        /// Which structure failed (e.g. "wal record checksum").
        what: &'static str,
        /// Byte offset of the failure within the file.
        offset: u64,
    },
    /// A file header did not identify a structure this crate wrote.
    BadHeader(String),
    /// The store was written under a different configuration than the
    /// one now opening it (replay would silently diverge).
    MetaMismatch {
        /// Configuration the caller expects.
        expected: String,
        /// Configuration recorded in the store.
        found: String,
    },
    /// Rebuilding a dataset from recovered bytes failed validation.
    Data(hos_data::DataError),
    /// Rebuilding the miner from recovered parts failed (model parse,
    /// engine assembly, tombstone re-application).
    Model(hos_core::HosError),
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt { what, offset } => {
                write!(f, "corrupt {what} at byte {offset}")
            }
            StorageError::BadHeader(msg) => write!(f, "bad storage header: {msg}"),
            StorageError::MetaMismatch { expected, found } => write!(
                f,
                "store configuration mismatch: opened with {expected:?}, written with {found:?}"
            ),
            StorageError::Data(e) => write!(f, "recovered data invalid: {e}"),
            StorageError::Model(e) => write!(f, "recovered model invalid: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Data(e) => Some(e),
            StorageError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<hos_data::DataError> for StorageError {
    fn from(e: hos_data::DataError) -> Self {
        StorageError::Data(e)
    }
}

/// CRC-32 (IEEE 802.3), table-driven. The table is built at compile
/// time; no dependency needed for a 40-line checksum.
pub(crate) const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

pub(crate) static CRC32_TABLE: [u32; 256] = crc32_table();

/// Streaming CRC-32 state: feed chunks, then finalise. Lets the
/// snapshot writer checksum without buffering the whole file.
pub(crate) fn crc32_feed(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC32_TABLE[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

pub(crate) const CRC32_INIT: u32 = !0u32;

/// CRC-32 of a byte slice (IEEE polynomial, standard init/final xor).
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_feed(CRC32_INIT, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitivity: one flipped bit changes the checksum.
        assert_ne!(crc32(b"hello"), crc32(b"hellp"));
    }

    #[test]
    fn errors_display_and_source() {
        let cases = vec![
            StorageError::Io(std::io::Error::other("boom")),
            StorageError::Corrupt {
                what: "wal record checksum",
                offset: 42,
            },
            StorageError::BadHeader("nope".into()),
            StorageError::MetaMismatch {
                expected: "a".into(),
                found: "b".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
        use std::error::Error;
        let io: StorageError = std::io::Error::other("x").into();
        assert!(io.source().is_some());
    }
}
