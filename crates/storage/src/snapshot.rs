//! Compacted columnar snapshots.
//!
//! A snapshot is the full durable state at one WAL sequence number:
//! the dataset in the same column-major layout
//! [`hos_data::Dataset::to_column_major`] produces, the fitted model
//! (as [`hos_core::ModelFile`] text, whose `{:?}` float encoding
//! round-trips exactly), and the stream counters needed to resume
//! (`base`, `oldest`, `rows_consumed`).
//!
//! File layout (integers little-endian):
//!
//! ```text
//! "HOSSNAP1" | u32 version
//! u64 seq | u64 base | u64 oldest | u64 rows_consumed
//! u64 search_width | u64 n | u64 d
//! u32 meta_len | meta
//! u32 model_len | model          (0 = no model)
//! u32 names_blob_len | names     (0 = unnamed; names joined by '\n')
//! u8 has_dead | [(n+7)/8 bitmap]
//! zero padding to an 8-byte file offset
//! n·d f64, column-major (d blocks of n values, tombstones in place)
//! u32 crc32 of every preceding byte
//! ```
//!
//! The data section starts 8-byte aligned so an mmap of the file can
//! expose the matrix as `&[f64]` without copying (little-endian
//! targets). Snapshots are written to a temp file, fsynced, and
//! renamed into place — a crash mid-write leaves only a `.tmp` that
//! recovery ignores.

use crate::mmap::{f64_decode, f64_view, ByteSource};
use crate::wal::sync_dir;
use crate::{crc32_feed, Result, StorageError, CRC32_INIT};
use hos_data::Dataset;
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"HOSSNAP1";
const VERSION: u32 = 1;
/// Sanity cap for variable-length header fields.
const MAX_FIELD: u32 = 16 << 20;

/// The canonical file name for the snapshot at sequence `seq`.
pub fn snap_file_name(seq: u64) -> String {
    format!("snap-{seq:016x}.col")
}

/// Parses a `snap-<seq:016x>.col` file name back to its sequence.
pub fn parse_snap_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".col")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Everything a snapshot records besides the matrix itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// WAL sequence this snapshot covers (replay skips records ≤ seq).
    pub seq: u64,
    /// Stream id offset: engine id 0 is global row `base`.
    pub base: u64,
    /// Next engine id the stream's FIFO retirement will evict.
    pub oldest: u64,
    /// Input rows consumed so far — lets a restarted `stream` skip
    /// rows it already processed.
    pub rows_consumed: u64,
    /// Resolved candidate-pool width (`ef`) of a width-tunable engine
    /// at snapshot time, or 0. Recovery restores it directly instead
    /// of re-calibrating — calibration on the *recovered* dataset
    /// would pick a different width than the original run resolved at
    /// fit time, silently breaking eval-count bit-identity.
    pub search_width: u64,
    /// Physical rows (including tombstones) and dimensionality.
    pub n: usize,
    pub d: usize,
    /// Store configuration string (must match on open).
    pub meta: String,
    /// Fitted model as `ModelFile` text, if a fit has happened.
    pub model: Option<String>,
    /// Column names, if the dataset carried any.
    pub names: Option<Vec<String>>,
    /// Tombstone flags, one per physical row (empty = all live).
    pub dead: Vec<bool>,
}

/// Borrowed inputs for [`write_snapshot`].
pub struct SnapshotContents<'a> {
    pub seq: u64,
    pub base: u64,
    pub oldest: u64,
    pub rows_consumed: u64,
    pub search_width: u64,
    pub dataset: &'a Dataset,
    pub model: Option<&'a str>,
    pub meta: &'a str,
}

/// A file writer that maintains a running CRC over everything written.
struct CrcWriter<W: Write> {
    inner: W,
    crc: u32,
    written: u64,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: CRC32_INIT,
            written: 0,
        }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.inner.write_all(bytes)?;
        self.crc = crc32_feed(self.crc, bytes);
        self.written += bytes.len() as u64;
        Ok(())
    }
}

/// Writes a snapshot atomically; returns its final path.
pub fn write_snapshot(dir: &Path, c: &SnapshotContents<'_>) -> Result<PathBuf> {
    let ds = c.dataset;
    let path = dir.join(snap_file_name(c.seq));
    let tmp = dir.join(format!("{}.tmp", snap_file_name(c.seq)));
    let file = File::create(&tmp)?;
    let mut w = CrcWriter::new(BufWriter::new(file));

    w.put(MAGIC)?;
    w.put(&VERSION.to_le_bytes())?;
    for v in [
        c.seq,
        c.base,
        c.oldest,
        c.rows_consumed,
        c.search_width,
        ds.len() as u64,
        ds.dim() as u64,
    ] {
        w.put(&v.to_le_bytes())?;
    }
    let put_blob = |w: &mut CrcWriter<_>, blob: &[u8]| -> Result<()> {
        w.put(&(blob.len() as u32).to_le_bytes())?;
        w.put(blob)
    };
    put_blob(&mut w, c.meta.as_bytes())?;
    put_blob(&mut w, c.model.unwrap_or("").as_bytes())?;
    let names_blob = ds.names().map(|ns| ns.join("\n")).unwrap_or_default();
    put_blob(&mut w, names_blob.as_bytes())?;

    let n = ds.len();
    if ds.dead_count() > 0 {
        w.put(&[1u8])?;
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        for i in 0..n {
            if !ds.is_live(i) {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        w.put(&bitmap)?;
    } else {
        w.put(&[0u8])?;
    }

    // Pad so the matrix starts on an 8-byte file offset (mmap'd base
    // addresses are page-aligned, so file alignment is all that is
    // needed for the zero-copy f64 view).
    let pad = (8 - (w.written % 8) as usize) % 8;
    w.put(&[0u8; 7][..pad])?;

    // Column-major matrix. `to_column_major` allocates one n·d buffer
    // — the same footprint the engines already pay for fold kernels.
    let cols = ds.to_column_major();
    let mut buf = Vec::with_capacity(8 << 10);
    for chunk in cols.chunks(1 << 10) {
        buf.clear();
        for v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.put(&buf)?;
    }

    let crc = !w.crc;
    let mut inner = w.inner;
    inner.write_all(&crc.to_le_bytes())?;
    inner.flush()?;
    inner.get_ref().sync_all()?;
    drop(inner);
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(path)
}

/// An opened, validated snapshot. The matrix stays in the byte source
/// (mmap where possible) until materialised.
pub struct Snapshot {
    source: ByteSource,
    meta: SnapshotMeta,
    /// Byte offset of the column-major matrix within the file.
    data_offset: usize,
}

impl Snapshot {
    /// Opens and fully validates a snapshot file (header, bounds,
    /// checksum over the entire file). Validation reads every byte
    /// once, sequentially — for an mmap this is a streaming page-in,
    /// after which queries touch only the pages they need.
    pub fn open(path: &Path) -> Result<Snapshot> {
        let source = ByteSource::open(path)?;
        let bytes = source.bytes();
        let bad = |msg: &str| StorageError::BadHeader(format!("{}: {msg}", path.display()));
        if bytes.len() < 64 + 4 || &bytes[..8] != MAGIC {
            return Err(bad("not a hos-storage snapshot"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(bad(&format!("unsupported snapshot version {version}")));
        }
        // Whole-file checksum first: every later parse step can then
        // trust lengths it reads.
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crate::crc32(body) != stored {
            return Err(StorageError::Corrupt {
                what: "snapshot checksum",
                offset: bytes.len() as u64 - 4,
            });
        }

        let mut off = 12usize;
        let u64_at = |off: &mut usize| -> u64 {
            let v = u64::from_le_bytes(body[*off..*off + 8].try_into().unwrap());
            *off += 8;
            v
        };
        let seq = u64_at(&mut off);
        let base = u64_at(&mut off);
        let oldest = u64_at(&mut off);
        let rows_consumed = u64_at(&mut off);
        let search_width = u64_at(&mut off);
        let n = u64_at(&mut off) as usize;
        let d = u64_at(&mut off) as usize;

        let corrupt = |what: &'static str, offset: usize| StorageError::Corrupt {
            what,
            offset: offset as u64,
        };
        let blob_at = |off: &mut usize| -> Result<&[u8]> {
            if *off + 4 > body.len() {
                return Err(corrupt("snapshot field length", *off));
            }
            let len = u32::from_le_bytes(body[*off..*off + 4].try_into().unwrap());
            *off += 4;
            if len > MAX_FIELD || *off + len as usize > body.len() {
                return Err(corrupt("snapshot field bounds", *off));
            }
            let blob = &body[*off..*off + len as usize];
            *off += len as usize;
            Ok(blob)
        };
        let meta_s = String::from_utf8(blob_at(&mut off)?.to_vec())
            .map_err(|_| bad("snapshot meta is not utf-8"))?;
        let model_s = String::from_utf8(blob_at(&mut off)?.to_vec())
            .map_err(|_| bad("snapshot model is not utf-8"))?;
        let names_s = String::from_utf8(blob_at(&mut off)?.to_vec())
            .map_err(|_| bad("snapshot names are not utf-8"))?;

        if off >= body.len() {
            return Err(corrupt("snapshot dead-bitmap flag", off));
        }
        let has_dead = body[off];
        off += 1;
        let mut dead = Vec::new();
        if has_dead == 1 {
            let blen = n.div_ceil(8);
            if off + blen > body.len() {
                return Err(corrupt("snapshot dead bitmap", off));
            }
            let bitmap = &body[off..off + blen];
            off += blen;
            dead = (0..n)
                .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
                .collect();
        } else if has_dead != 0 {
            return Err(corrupt("snapshot dead-bitmap flag", off - 1));
        }

        off += (8 - off % 8) % 8; // alignment padding
        let data_len = n
            .checked_mul(d)
            .and_then(|nd| nd.checked_mul(8))
            .ok_or_else(|| corrupt("snapshot matrix size", off))?;
        if off + data_len != body.len() {
            return Err(corrupt("snapshot matrix bounds", off));
        }

        let names = if names_s.is_empty() {
            None
        } else {
            let ns: Vec<String> = names_s.split('\n').map(str::to_string).collect();
            if ns.len() != d {
                return Err(corrupt("snapshot names arity", 0));
            }
            Some(ns)
        };

        let meta = SnapshotMeta {
            seq,
            base,
            oldest,
            rows_consumed,
            search_width,
            n,
            d,
            meta: meta_s,
            model: if model_s.is_empty() {
                None
            } else {
                Some(model_s)
            },
            names,
            dead,
        };
        Ok(Snapshot {
            source,
            meta,
            data_offset: off,
        })
    }

    pub fn meta(&self) -> &SnapshotMeta {
        &self.meta
    }

    /// Whether the matrix bytes are served from an mmap.
    pub fn is_mapped(&self) -> bool {
        self.source.is_mapped()
    }

    fn data_bytes(&self) -> &[u8] {
        let end = self.source.bytes().len() - 4;
        &self.source.bytes()[self.data_offset..end]
    }

    /// The whole matrix as `&[f64]` without copying, when alignment
    /// and endianness allow (always on mmap'd little-endian unix).
    pub fn raw_columns(&self) -> Option<&[f64]> {
        f64_view(self.data_bytes())
    }

    /// One column (dimension `j`), zero-copy where possible.
    pub fn column(&self, j: usize) -> Cow<'_, [f64]> {
        assert!(j < self.meta.d, "column {j} out of range");
        let n = self.meta.n;
        match self.raw_columns() {
            Some(all) => Cow::Borrowed(&all[j * n..(j + 1) * n]),
            None => Cow::Owned(f64_decode(&self.data_bytes()[j * n * 8..(j + 1) * n * 8])),
        }
    }

    /// Materialises the dataset exactly as it was written: row-major
    /// transpose, names re-attached, tombstones re-applied in place —
    /// ids are positional, so recovered engine ids match the original
    /// process bit-for-bit.
    pub fn to_dataset(&self) -> Result<Dataset> {
        let mut ds = self.to_dataset_all_live()?;
        for (i, is_dead) in self.meta.dead.iter().enumerate() {
            if *is_dead {
                ds.remove_row(i)?;
            }
        }
        Ok(ds)
    }

    /// [`Snapshot::to_dataset`] without re-applying the tombstones.
    /// Recovery builds an engine over all physical rows and then
    /// retires the dead ids through the incremental path — the op
    /// shape the engines' incremental-equivalence oracle pins —
    /// rather than asking index builders to handle a pre-tombstoned
    /// dataset.
    pub fn to_dataset_all_live(&self) -> Result<Dataset> {
        let (n, d) = (self.meta.n, self.meta.d);
        let mut flat = vec![0.0f64; n * d];
        for j in 0..d {
            let col = self.column(j);
            for (i, v) in col.iter().enumerate() {
                flat[i * d + j] = *v;
            }
        }
        let mut ds = Dataset::from_flat(flat, d)?;
        if let Some(names) = &self.meta.names {
            ds = ds.with_names(names.clone())?;
        }
        Ok(ds)
    }

    /// Ids of tombstoned rows, ascending.
    pub fn dead_ids(&self) -> Vec<usize> {
        self.meta
            .dead
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.then_some(i))
            .collect()
    }
}

/// Lists `(seq, path)` of all well-named snapshots in `dir`,
/// ascending. Temp files and foreign names are ignored.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snap_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hos-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_dataset() -> Dataset {
        let rows: Vec<f64> = (0..60).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let mut ds = Dataset::from_flat(rows, 3)
            .unwrap()
            .with_names(vec!["x".into(), "y".into(), "z".into()])
            .unwrap();
        ds.remove_row(2).unwrap();
        ds.remove_row(17).unwrap();
        ds
    }

    #[test]
    fn snapshot_roundtrips_dataset_bit_for_bit() {
        let dir = temp_dir("roundtrip");
        let ds = sample_dataset();
        let path = write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 42,
                base: 7,
                oldest: 3,
                rows_consumed: 27,
                search_width: 0,
                dataset: &ds,
                model: Some("hos-miner-model v1\nfake"),
                meta: "cfg=test",
            },
        )
        .unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            snap_file_name(42)
        );
        let snap = Snapshot::open(&path).unwrap();
        let m = snap.meta();
        assert_eq!((m.seq, m.base, m.oldest, m.rows_consumed), (42, 7, 3, 27));
        assert_eq!((m.n, m.d), (20, 3));
        assert_eq!(m.meta, "cfg=test");
        assert_eq!(m.model.as_deref(), Some("hos-miner-model v1\nfake"));
        let back = snap.to_dataset().unwrap();
        assert_eq!(back, ds);
        // Bit-level check on the raw buffers, beyond PartialEq.
        let a: Vec<u64> = ds.as_flat().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = back.as_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert_eq!(back.names(), ds.names());
        assert_eq!(back.dead_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columns_match_to_column_major() {
        let dir = temp_dir("cols");
        let ds = sample_dataset();
        let path = write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 1,
                base: 0,
                oldest: 0,
                rows_consumed: 0,
                search_width: 0,
                dataset: &ds,
                model: None,
                meta: "",
            },
        )
        .unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let want = ds.to_column_major();
        let n = ds.len();
        for j in 0..ds.dim() {
            let col = snap.column(j);
            let got: Vec<u64> = col.iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u64> = want[j * n..(j + 1) * n]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, exp, "column {j}");
        }
        // On unix the source should be mapped and the matrix 8-aligned,
        // giving the zero-copy view.
        #[cfg(unix)]
        {
            assert!(snap.is_mapped());
            assert!(snap.raw_columns().is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_typed_error() {
        let dir = temp_dir("corrupt");
        let ds = sample_dataset();
        let path = write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 9,
                base: 0,
                oldest: 0,
                rows_consumed: 0,
                search_width: 0,
                dataset: &ds,
                model: None,
                meta: "m",
            },
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match Snapshot::open(&path) {
            Err(StorageError::Corrupt { what, .. }) => assert!(what.contains("checksum")),
            other => panic!("expected Corrupt, got ok={}", other.is_ok()),
        }
        // Truncated file: typed error, not a panic.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(Snapshot::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_listing_ignores_foreign_files() {
        let dir = temp_dir("list");
        let ds = sample_dataset();
        for seq in [3u64, 1, 2] {
            write_snapshot(
                &dir,
                &SnapshotContents {
                    seq,
                    base: 0,
                    oldest: 0,
                    rows_consumed: 0,
                    search_width: 0,
                    dataset: &ds,
                    model: None,
                    meta: "",
                },
            )
            .unwrap();
        }
        std::fs::write(dir.join("snap-0000000000000009.col.tmp"), b"half").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        let listed = list_snapshots(&dir).unwrap();
        let seqs: Vec<u64> = listed.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dataset_snapshot_roundtrips() {
        let dir = temp_dir("empty");
        let ds = Dataset::from_flat(Vec::new(), 0).unwrap();
        let path = write_snapshot(
            &dir,
            &SnapshotContents {
                seq: 0,
                base: 0,
                oldest: 0,
                rows_consumed: 0,
                search_width: 0,
                dataset: &ds,
                model: None,
                meta: "m",
            },
        )
        .unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.meta().n, 0);
        assert_eq!(snap.to_dataset().unwrap(), ds);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
