//! Read-only byte sources: mmap on unix, chunked heap read elsewhere.
//!
//! The container has no `libc` crate, so the two syscalls are declared
//! directly — `std` already links the platform libc on unix targets.
//! The mapping is read-only and private; unmapping happens on drop.
//! Anything that can fail (empty file, exotic filesystem, non-unix
//! target) falls back to reading the file into the heap in bounded
//! chunks, so callers never see a functional difference — only the
//! memory profile changes.

use std::fs::File;
use std::io::Read;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An owned read-only mapping of a whole file.
#[cfg(unix)]
pub struct MmapFile {
    ptr: *const u8,
    len: usize,
}

// The mapping is immutable for its whole lifetime, so shared access
// from any thread is safe.
#[cfg(unix)]
unsafe impl Send for MmapFile {}
#[cfg(unix)]
unsafe impl Sync for MmapFile {}

#[cfg(unix)]
impl MmapFile {
    /// Maps `file` read-only. Returns `None` (not an error) when the
    /// file is empty or the kernel refuses — callers fall back to a
    /// heap read.
    pub fn map(file: &File) -> Option<MmapFile> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata().ok()?.len();
        if len == 0 || len > usize::MAX as u64 {
            return None;
        }
        let len = len as usize;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        Some(MmapFile {
            ptr: ptr as *const u8,
            len,
        })
    }

    pub fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapFile {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

/// File bytes, either mapped or heap-resident.
pub enum ByteSource {
    #[cfg(unix)]
    Mapped(MmapFile),
    Heap(Vec<u8>),
}

/// Chunk size for the heap fallback read; bounds transient buffering.
const READ_CHUNK: usize = 4 << 20;

impl ByteSource {
    /// Opens `path`, preferring an mmap where available.
    pub fn open(path: &Path) -> std::io::Result<ByteSource> {
        let mut file = File::open(path)?;
        #[cfg(unix)]
        if let Some(m) = MmapFile::map(&file) {
            return Ok(ByteSource::Mapped(m));
        }
        // Chunked read: one bounded buffer at a time into a
        // pre-reserved Vec (capacity from metadata, verified by the
        // actual read).
        let hint = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
        let mut out = Vec::with_capacity(hint);
        let mut chunk = vec![0u8; READ_CHUNK.min(hint.max(4096))];
        loop {
            let n = file.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        Ok(ByteSource::Heap(out))
    }

    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            ByteSource::Mapped(m) => m.bytes(),
            ByteSource::Heap(v) => v,
        }
    }

    /// Whether this source is backed by a memory mapping (i.e. pages
    /// are faulted in on demand rather than heap-resident).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            ByteSource::Mapped(_) => true,
            ByteSource::Heap(_) => false,
        }
    }
}

/// Reinterprets `bytes` as `&[f64]` without copying, when the platform
/// allows it: little-endian layout on disk matches the in-memory
/// representation, and the slice must be 8-byte aligned (the snapshot
/// format pads its data section to guarantee this for mapped files;
/// heap buffers may land anywhere).
pub fn f64_view(bytes: &[u8]) -> Option<&[f64]> {
    if cfg!(target_endian = "big") {
        return None;
    }
    if !bytes.len().is_multiple_of(8)
        || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>())
    {
        return None;
    }
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) })
}

/// Decodes little-endian `f64`s with a copy — the portable path used
/// when [`f64_view`] declines.
pub fn f64_decode(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(tag: &str, contents: &[u8]) -> PathBuf {
        let p = std::env::temp_dir().join(format!("hos-mmap-{tag}-{}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn mapped_and_heap_sources_agree() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let p = temp_file("agree", &data);
        let src = ByteSource::open(&p).unwrap();
        assert_eq!(src.bytes(), &data[..]);
        #[cfg(unix)]
        assert!(src.is_mapped(), "expected mmap on unix");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_file_falls_back_to_heap() {
        let p = temp_file("empty", b"");
        let src = ByteSource::open(&p).unwrap();
        assert!(src.bytes().is_empty());
        assert!(!src.is_mapped());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn f64_view_matches_decode() {
        let vals = [1.0f64, -2.5, f64::MIN_POSITIVE, 1e300, 0.0];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Vec<u8> from this construction is at least 8-aligned often
        // but not guaranteed; go through an aligned buffer.
        let mut aligned = vec![0f64; vals.len()];
        let ab =
            unsafe { std::slice::from_raw_parts_mut(aligned.as_mut_ptr() as *mut u8, bytes.len()) };
        ab.copy_from_slice(&bytes);
        if let Some(view) = f64_view(ab) {
            let view_bits: Vec<u64> = view.iter().map(|v| v.to_bits()).collect();
            let dec_bits: Vec<u64> = f64_decode(ab).iter().map(|v| v.to_bits()).collect();
            assert_eq!(view_bits, dec_bits);
        }
        // Misaligned slice must decline the zero-copy view.
        let mis = &ab[1..]; // off-by-one: wrong length AND alignment
        assert!(f64_view(mis).is_none());
    }
}
