//! Real-process kill-and-recover oracle for `stream --wal`: SIGKILL
//! the binary mid-stream, restart it on the same WAL directory, and
//! demand the recovered run end in EXACTLY the state an uninterrupted
//! twin reaches — pinned by the `state digest:` line (an FNV-1a fold
//! over counters, threshold bits, and every live row's f64 bits).

use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hos-miner")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hos_cli_crash_{}_{name}", std::process::id()))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = tmp(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stream_args<'a>(csv: &'a str, wal: &'a str) -> Vec<&'a str> {
    vec![
        "stream",
        "--data",
        csv,
        "--wal",
        wal,
        "--window",
        "100",
        "--every",
        "150",
        "--k",
        "4",
        "--threshold",
        "4.0",
        "--samples",
        "10",
        "--sync-every",
        "1",
        "--seed",
        "3",
    ]
}

fn digest_of(stdout: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("state digest: "))
        .unwrap_or_else(|| panic!("no digest line in:\n{stdout}"))
        .to_string()
}

#[test]
fn sigkill_mid_stream_then_restart_matches_uninterrupted_twin() {
    // One dataset, streamed three ways.
    let csv = tmp("rows.csv");
    let csv_s = csv.to_str().unwrap().to_string();
    let gen = Command::new(bin())
        .args([
            "generate",
            "--out",
            &csv_s,
            "--n",
            "1400",
            "--d",
            "5",
            "--targets",
            "[1,2]",
            "--seed",
            "3",
        ])
        .output()
        .expect("spawn generate");
    assert!(gen.status.success(), "generate failed");

    // Uninterrupted twin.
    let twin_wal = fresh_dir("twin-wal");
    let twin = Command::new(bin())
        .args(stream_args(&csv_s, twin_wal.to_str().unwrap()))
        .output()
        .expect("spawn twin stream");
    assert!(
        twin.status.success(),
        "twin stream failed: {}",
        String::from_utf8_lossy(&twin.stderr)
    );
    let twin_out = String::from_utf8_lossy(&twin.stdout).to_string();
    let twin_digest = digest_of(&twin_out);

    // Victim: same stream, SIGKILLed right after its first mid-stream
    // snapshot (written at the first compaction) — so recovery has
    // both a snapshot and a WAL tail to work with.
    let crash_wal = fresh_dir("crash-wal");
    let crash_wal_s = crash_wal.to_str().unwrap().to_string();
    let mut child = Command::new(bin())
        .args(stream_args(&csv_s, &crash_wal_s))
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim stream");
    let stdout = child.stdout.take().unwrap();
    let mut saw_snapshot = false;
    for line in std::io::BufReader::new(stdout).lines() {
        let line = line.unwrap_or_default();
        if line.contains("(snapshot written at seq") {
            saw_snapshot = true;
            break;
        }
    }
    assert!(saw_snapshot, "victim finished before a snapshot appeared");
    child.kill().expect("SIGKILL the victim"); // SIGKILL on unix
    let status = child.wait().expect("reap victim");
    assert!(!status.success(), "victim was killed, not exited");

    // Restart on the torn directory: it must announce recovery, finish
    // the stream, and land on the twin's exact digest.
    let resumed = Command::new(bin())
        .args(stream_args(&csv_s, &crash_wal_s))
        .output()
        .expect("spawn resumed stream");
    assert!(
        resumed.status.success(),
        "resumed stream failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_out = String::from_utf8_lossy(&resumed.stdout).to_string();
    assert!(
        resumed_out.contains("recovered: snapshot seq"),
        "no recovery banner in:\n{resumed_out}"
    );
    assert_eq!(
        digest_of(&resumed_out),
        twin_digest,
        "recovered state diverged from the uninterrupted twin\n\
         --- twin ---\n{twin_out}\n--- resumed ---\n{resumed_out}"
    );

    // A third run over the finished directory resumes at end-of-input,
    // replays nothing it shouldn't, and reports the same digest.
    let idle = Command::new(bin())
        .args(stream_args(&csv_s, &crash_wal_s))
        .output()
        .expect("spawn idle re-run");
    assert!(idle.status.success());
    let idle_out = String::from_utf8_lossy(&idle.stdout).to_string();
    assert_eq!(digest_of(&idle_out), twin_digest, "idle re-run diverged");

    let _ = std::fs::remove_file(&csv);
    let _ = std::fs::remove_dir_all(&twin_wal);
    let _ = std::fs::remove_dir_all(&crash_wal);
}
