//! End-to-end tests of the compiled `hos-miner` binary: real process
//! spawns, real files, real exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hos-miner")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn hos-miner")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hos_cli_binary_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_exits_zero_and_mentions_subcommands() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "info", "query", "scan"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let out = run(&["explode"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("explode"));
}

#[test]
fn full_pipeline_via_binary() {
    let csv = tmp("pipeline.csv");
    let csv_s = csv.to_str().unwrap();
    let out = run(&[
        "generate",
        "--out",
        csv_s,
        "--n",
        "400",
        "--d",
        "6",
        "--targets",
        "[1,2]",
        "--seed",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("planted outlier: point #400 in subspace [1,2]"));

    // Query the planted outlier: must report at least one subspace and
    // print the search statistics line.
    let out = run(&[
        "query",
        "--data",
        csv_s,
        "--id",
        "400",
        "--k",
        "5",
        "--quantile",
        "0.95",
        "--samples",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("minimal outlying subspaces"),
        "unexpected query output:\n{text}"
    );
    assert!(text.contains("OD evals"));

    // A point at a cluster core: typically clean. Either outcome must
    // exit zero; the output must be one of the two known shapes.
    let out = run(&["query", "--data", csv_s, "--id", "0", "--samples", "0"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("not an outlier") || text.contains("minimal outlying subspaces"),
        "unexpected output:\n{text}"
    );

    // info renders one row per column.
    let out = run(&["info", "--data", csv_s]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("401 points, 6 dimensions"));

    // scan ranks and reports.
    let out = run(&["scan", "--data", csv_s, "--top", "2", "--samples", "3"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top 2 points by full-space OD"));
    assert!(
        text.contains("#400"),
        "planted outlier should rank top:\n{text}"
    );

    std::fs::remove_file(csv).ok();
}

#[test]
fn batch_query_reports_each_point_and_totals() {
    let csv = tmp("batch.csv");
    let csv_s = csv.to_str().unwrap();
    let out = run(&[
        "generate",
        "--out",
        csv_s,
        "--n",
        "300",
        "--d",
        "5",
        "--targets",
        "[1,2]",
        "--seed",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = run(&[
        "query",
        "--data",
        csv_s,
        "--ids",
        "300,0,1",
        "--samples",
        "3",
        "--threads",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for header in ["--- point #300 ---", "--- point #0 ---", "--- point #1 ---"] {
        assert!(text.contains(header), "missing {header}:\n{text}");
    }
    assert!(
        text.contains("batch: 3 queries"),
        "missing batch summary:\n{text}"
    );
    std::fs::remove_file(csv).ok();
}

#[test]
fn threads_flag_on_query_fit_and_bench() {
    let csv = tmp("threads.csv");
    let csv_s = csv.to_str().unwrap();
    let model = tmp("threads.model");
    let model_s = model.to_str().unwrap();
    assert!(
        run(&["generate", "--out", csv_s, "--n", "300", "--d", "5", "--seed", "7"])
            .status
            .success()
    );
    // query --threads: parallel per-level batches, identical output
    // to the serial run.
    let serial = run(&[
        "query",
        "--data",
        csv_s,
        "--id",
        "300",
        "--samples",
        "3",
        "--threads",
        "1",
    ]);
    let parallel = run(&[
        "query",
        "--data",
        csv_s,
        "--id",
        "300",
        "--samples",
        "3",
        "--threads",
        "4",
    ]);
    assert!(serial.status.success() && parallel.status.success());
    let strip_timing = |out: &std::process::Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains(" ms"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_timing(&serial),
        strip_timing(&parallel),
        "--threads changed the answer"
    );
    // fit --threads: learning fans out, model still written.
    let out = run(&[
        "fit",
        "--data",
        csv_s,
        "--save-model",
        model_s,
        "--samples",
        "5",
        "--threads",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // bench --threads.
    let out = run(&[
        "bench",
        "--data",
        csv_s,
        "--queries",
        "4",
        "--samples",
        "0",
        "--threads",
        "2",
        "--summary",
        "-",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("queries/s"));
    std::fs::remove_file(csv).ok();
    std::fs::remove_file(model).ok();
}

#[test]
fn shards_flag_on_query_fit_and_bench() {
    let csv = tmp("shards.csv");
    let csv_s = csv.to_str().unwrap();
    let model = tmp("shards.model");
    let model_s = model.to_str().unwrap();
    assert!(
        run(&["generate", "--out", csv_s, "--n", "300", "--d", "5", "--seed", "9"])
            .status
            .success()
    );
    // query --shards: intra-query parallel execution, identical
    // output to the unsharded run.
    let unsharded = run(&[
        "query",
        "--data",
        csv_s,
        "--id",
        "300",
        "--samples",
        "3",
        "--shards",
        "1",
    ]);
    let sharded = run(&[
        "query",
        "--data",
        csv_s,
        "--id",
        "300",
        "--samples",
        "3",
        "--shards",
        "4",
        "--threads",
        "2",
    ]);
    assert!(unsharded.status.success() && sharded.status.success());
    let strip_timing = |out: &std::process::Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.contains(" ms"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_timing(&unsharded),
        strip_timing(&sharded),
        "--shards changed the answer"
    );
    // fit --shards: the sharded engine backs learning too.
    let out = run(&[
        "fit",
        "--data",
        csv_s,
        "--save-model",
        model_s,
        "--samples",
        "5",
        "--shards",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // bench --shards (synthetic workload path).
    let out = run(&[
        "bench",
        "--n",
        "400",
        "--d",
        "5",
        "--queries",
        "4",
        "--samples",
        "0",
        "--shards",
        "4",
        "--summary",
        "-",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("shards=4"),
        "bench must echo its config:\n{text}"
    );
    // Invalid shard counts fail cleanly.
    let out = run(&["query", "--data", csv_s, "--id", "0", "--shards", "0"]);
    assert!(!out.status.success());
    std::fs::remove_file(csv).ok();
    std::fs::remove_file(model).ok();
}

#[test]
fn bench_summary_file_and_compare_via_binary() {
    let baseline = tmp("bin_baseline.json");
    let baseline_s = baseline.to_str().unwrap();
    let out = run(&[
        "bench",
        "--n",
        "300",
        "--d",
        "4",
        "--queries",
        "6",
        "--samples",
        "0",
        "--summary",
        baseline_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&baseline).unwrap();
    assert!(text.contains("\"queries_per_s\":"), "summary:\n{text}");
    // Self-compare: zero regressions, exit 0, the verdict table prints.
    let out = run(&[
        "bench",
        "compare",
        "--baseline",
        baseline_s,
        "--summary",
        baseline_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("0 regression(s)"), "{report}");
    // Missing baseline is a clean error.
    let out = run(&["bench", "compare", "--baseline", "/nonexistent.json"]);
    assert!(!out.status.success());
    std::fs::remove_file(baseline).ok();
}

#[test]
fn stream_consumes_stdin_and_reports_windows() {
    use std::io::Write;
    use std::process::Stdio;

    let csv = tmp("stream_stdin.csv");
    let csv_s = csv.to_str().unwrap();
    assert!(run(&[
        "generate",
        "--out",
        csv_s,
        "--n",
        "300",
        "--d",
        "4",
        "--targets",
        "[1,2]",
        "--seed",
        "21"
    ])
    .status
    .success());
    let rows = std::fs::read(&csv).unwrap();

    // Pipe the CSV through stdin: the windowed scan must report the
    // planted outlier (row 300, displaced in dims [1,2]) once it
    // enters the window, and print the final stream summary.
    let mut child = Command::new(bin())
        .args([
            "stream",
            "--window",
            "150",
            "--every",
            "160",
            "--top",
            "3",
            "--samples",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hos-miner stream");
    child.stdin.take().unwrap().write_all(&rows).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bootstrapped on first 150 rows"), "{text}");
    assert!(text.contains("-- row"), "no windowed report:\n{text}");
    assert!(
        text.contains("outlier row #300"),
        "planted outlier not reported:\n{text}"
    );
    assert!(text.contains("stream: 301 rows"), "{text}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn missing_file_reports_error() {
    let out = run(&["query", "--data", "/definitely/not/here.csv", "--id", "0"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"));
}

#[test]
fn engine_flag_accepts_all_engines() {
    let csv = tmp("engines.csv");
    let csv_s = csv.to_str().unwrap();
    assert!(
        run(&["generate", "--out", csv_s, "--n", "300", "--d", "5", "--seed", "1"])
            .status
            .success()
    );
    for engine in ["linear", "xtree", "vafile"] {
        let out = run(&[
            "query",
            "--data",
            csv_s,
            "--id",
            "300",
            "--engine",
            engine,
            "--samples",
            "0",
        ]);
        assert!(out.status.success(), "engine {engine}");
    }
    std::fs::remove_file(csv).ok();
}
