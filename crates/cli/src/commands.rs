//! CLI subcommand implementations.

use crate::args::Args;
use crate::stream::{StreamEvent, StreamState};
use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::csv::{read_csv_path, write_csv_path, CsvOptions};
use hos_data::normalize::{normalize, NormKind, Normalizer};
use hos_data::synth::planted::{generate, PlantedSpec};
use hos_data::table::{fmt_f64, Table};
use hos_data::{Dataset, Metric, Subspace};
use hos_index::Engine;

type CmdResult = Result<(), String>;

const HELP: &str = "\
hos-miner — detect the outlying subspaces of high-dimensional data
(reproduction of Zhang et al., VLDB 2004)

USAGE:
  hos-miner generate --out FILE [--n 2000] [--d 8] [--clusters 3]
                     [--targets \"[1,2];[5]\"] [--shift 12] [--seed 0]
  hos-miner info     --data FILE [--header]
  hos-miner fit      --data FILE --save-model FILE [--snapshot DIR]
                     [... tuning flags]
  hos-miner query    --data FILE (--id N | --ids N1,N2,... | --point \"x1,x2,...\")
                     [--model FILE]
                     [--k 5] [--threshold T | --quantile 0.95]
                     [--engine linear|xtree|vafile|hnsw] [--samples 20]
                     [--metric l1|l2|linf] [--normalize none|minmax|zscore]
                     [--smoothing 1.0] [--threads 1] [--shards 1]
                     [--ef N] [--recall-target 0.95]
                     [--seed 0] [--header]
  hos-miner scan     --data FILE [--top 5] [--model FILE] [... tuning flags]
  hos-miner stream   [--data FILE]  (no --data: rows from stdin)
                     [--window 500] [--every 200] [--top 3] [--reestimate]
                     [--wal DIR] [--sync-every 64] [... tuning flags]
  hos-miner bench    (--data FILE | --n 5000 --d 8) [--queries 16]
                     [--threads 1] [--shards 1] [--summary FILE]
                     [--kernel] [... tuning flags]
  hos-miner bench serve (--data FILE | --n 20000 --d 8)
                     [--clients 8] [--requests 25] [--threads CORES]
                     [--min-speedup 1.5] [--min-bin-speedup 1.3]
                     [--pipeline 4] [--summary FILE]
                     [... tuning flags]
  hos-miner probe    [--addr 127.0.0.1:7878]
  hos-miner bench compare [--baseline BENCH_BASELINE.json]
                     [--summary BENCH_SUMMARY.json]
                     [--tolerance 0.5] [--strict] [--keys a,b,...]
  hos-miner help

With --model, the threshold and learned priors come from a file written
by `fit` and the per-dataset learning phase is skipped.
With --ids, the queries are fanned out across --threads workers; the
results are identical to running each --id query on its own.
--threads sets the worker count for OD batches and multi-query fan-out;
--shards splits the dataset into that many partitions so a SINGLE query
also runs in parallel (per-shard k-NN, exact merge). Neither flag
changes any result: sharded and threaded answers are bit-identical to
the serial ones.
--engine hnsw answers k-NN through an approximate graph index whose
reported distances and ODs are still exact — only recall is
approximate. --ef sets its candidate-pool width (wider = higher
recall, slower); --recall-target T instead calibrates the width until
a sampled recall@k reaches T. Both are machine-tuning knobs (like
--threads) and are not persisted in models; exact engines ignore them.
`bench` fits a miner and times a batch of member queries end to end
(reporting queries/s) — point it at a real CSV or let it generate a
synthetic workload with --n/--d. Every run writes a machine-readable
summary (default BENCH_SUMMARY.json; --summary - disables). With
--kernel it also times the fixed deterministic kernel workloads (the
blocked all-points scan, the full-lattice prefix walker, the hnsw
query batch, and the storage tier's snapshot write + WAL replay) and
adds their millisecond keys to the summary. `bench serve` drives an
in-process hos-serve instance with concurrent clients under a 90/10
read/write mix across four arms — unbatched, batched with a fixed
window, batched with the adaptive window, and the hosbin binary
protocol with a pipelined client (--pipeline frames in flight) — and
merges serve_qps / serve_adaptive_qps / serve_bin_qps (plus their
p99_ms keys) into the summary; --min-speedup gates the
batched/unbatched ratio and --min-bin-speedup the hosbin/batched-JSON
ratio, both enforced only on multi-core machines (one core has
nothing to fan out across; hosbin still must not regress there).
`probe` opens a hosbin connection to a running hos-serve, walks
healthz / stats / a member query over framed binary and prints
`hosbin probe: ok` — a deploy smoke check for the binary protocol.
`bench compare` diffs a summary
against a committed baseline snapshot within --tolerance: a
non-blocking report unless --strict; --keys restricts the comparison
to a comma-separated key list (each then required in both files).
`stream` consumes rows one at a time (CSV file or stdin), maintains a
sliding window of the last --window rows with incremental engine
updates (no refits), and reports the window's top outlying points
every --every rows; --reestimate re-derives the OD threshold from the
live window at each report. Reported point ids are absolute row
numbers in the stream. With --wal DIR every state transition is
logged to a write-ahead log (fsynced every --sync-every ops) and
compactions write columnar snapshots; a killed run restarted on the
same DIR recovers the snapshot + WAL tail and resumes mid-stream with
a bit-identical window (`state digest:` pins it). `fit --snapshot DIR`
seeds such a directory from a one-shot fit, and `hos-serve --data-dir`
serves one durably.
Subspaces are printed 1-based, e.g. [1,3] = first and third columns.";

/// Dispatches an argv to a subcommand.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let args = Args::parse(argv)?;
    match args.positional().first().map(String::as_str) {
        Some("generate") => cmd_generate(&args),
        Some("info") => cmd_info(&args),
        Some("fit") => cmd_fit(&args),
        Some("query") => cmd_query(&args),
        Some("scan") => cmd_scan(&args),
        Some("stream") => cmd_stream(&args),
        Some("bench") => cmd_bench(&args),
        Some("probe") => cmd_probe(&args),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown subcommand {other:?}; try `hos-miner help`"
        )),
    }
}

fn load(args: &Args) -> Result<Dataset, String> {
    let path = args.require("data")?;
    let opts = CsvOptions {
        delimiter: ',',
        has_header: args.switch("header"),
    };
    read_csv_path(path, &opts).map_err(|e| format!("loading {path}: {e}"))
}

fn parse_metric(args: &Args) -> Result<Metric, String> {
    match args.get("metric").unwrap_or("l2") {
        "l1" => Ok(Metric::L1),
        "l2" => Ok(Metric::L2),
        "linf" => Ok(Metric::LInf),
        other => Err(format!("unknown metric {other:?} (expected l1|l2|linf)")),
    }
}

fn parse_normalizer(args: &Args, ds: &Dataset) -> Result<(Dataset, Option<Normalizer>), String> {
    match args.get("normalize").unwrap_or("none") {
        "none" => Ok((ds.clone(), None)),
        "minmax" => {
            let (z, n) = normalize(ds, NormKind::MinMax).map_err(|e| e.to_string())?;
            Ok((z, Some(n)))
        }
        "zscore" => {
            let (z, n) = normalize(ds, NormKind::ZScore).map_err(|e| e.to_string())?;
            Ok((z, Some(n)))
        }
        other => Err(format!("unknown normalization {other:?}")),
    }
}

/// Builds a miner either from a saved model (`--model`) or by fitting
/// with the tuning flags.
fn build_miner(args: &Args, ds: Dataset) -> Result<HosMiner, String> {
    if let Some(path) = args.get("model") {
        let model = hos_core::ModelFile::load(path).map_err(|e| e.to_string())?;
        // Parallelism is machine-specific, not part of the fitted
        // model: honour --threads and --shards here too, as the help
        // promises.
        let miner = model
            .into_miner_with(
                ds,
                args.get_or("shards", 1usize)?,
                args.get_or("threads", 1usize)?,
            )
            .map_err(|e| e.to_string())?;
        // Search width is machine tuning like --threads, so the model
        // file never carries it: honour the flags at load time too.
        if let Some(ef) = args.get_opt::<usize>("ef")? {
            if ef == 0 {
                return Err("--ef must be positive".into());
            }
            miner.engine().set_search_width(ef);
        }
        if let Some(target) = args.get_opt::<f64>("recall-target")? {
            if !(target.is_finite() && target > 0.0 && target <= 1.0) {
                return Err(format!("--recall-target {target} must be in (0, 1]"));
            }
            hos_index::calibrate_search_width(
                miner.engine(),
                miner.config().k,
                target,
                16,
                args.get_or("seed", 0u64)?.wrapping_add(2),
            );
        }
        return Ok(miner);
    }
    fit_miner(args, ds)
}

/// Assembles a [`HosMinerConfig`] from the shared tuning flags.
fn miner_config(args: &Args) -> Result<HosMinerConfig, String> {
    let k = args.get_or("k", 5usize)?;
    let threshold = match (
        args.get_opt::<f64>("threshold")?,
        args.get_opt::<f64>("quantile")?,
    ) {
        (Some(_), Some(_)) => {
            return Err("--threshold and --quantile are mutually exclusive".into())
        }
        (Some(t), None) => ThresholdPolicy::Fixed(t),
        (None, q) => ThresholdPolicy::FullSpaceQuantile {
            q: q.unwrap_or(0.95),
            sample: 200,
        },
    };
    let engine: Engine = args
        .get("engine")
        .unwrap_or("linear")
        .parse()
        .map_err(|e: String| e)?;
    Ok(HosMinerConfig {
        k,
        threshold,
        metric: parse_metric(args)?,
        engine,
        sample_size: args.get_or("samples", 20usize)?,
        prior_smoothing: args.get_or("smoothing", 1.0f64)?,
        threads: args.get_or("threads", 1usize)?,
        shards: args.get_or("shards", 1usize)?,
        ef: args.get_opt("ef")?,
        recall_target: args.get_opt("recall-target")?,
        seed: args.get_or("seed", 0u64)?,
    })
}

fn fit_miner(args: &Args, ds: Dataset) -> Result<HosMiner, String> {
    HosMiner::fit(ds, miner_config(args)?).map_err(|e| e.to_string())
}

fn cmd_generate(args: &Args) -> CmdResult {
    let out = args.require("out")?;
    let n = args.get_or("n", 2000usize)?;
    let d = args.get_or("d", 8usize)?;
    let targets: Vec<Subspace> = match args.get("targets") {
        None => vec![
            Subspace::from_dims(&[0, 1]),
            Subspace::from_dims(&[d.saturating_sub(1)]),
        ],
        Some(spec) => spec
            .split(';')
            .map(|s| s.parse::<Subspace>())
            .collect::<Result<Vec<_>, _>>()?,
    };
    let spec = PlantedSpec {
        n_background: n,
        d,
        n_clusters: args.get_or("clusters", 3usize)?,
        cluster_sigma: 1.0,
        extent: 100.0,
        targets,
        shift_sigmas: args.get_or("shift", 12.0f64)?,
        seed: args.get_or("seed", 0u64)?,
    };
    let w = generate(&spec).map_err(|e| e.to_string())?;
    write_csv_path(&w.dataset, out, ',').map_err(|e| e.to_string())?;
    println!("wrote {} points x {} dims to {out}", w.dataset.len(), d);
    for o in &w.outliers {
        println!(
            "planted outlier: point #{} in subspace {}",
            o.id, o.subspace
        );
    }
    Ok(())
}

fn cmd_fit(args: &Args) -> CmdResult {
    let out = args.require("save-model")?;
    let raw = load(args)?;
    let (ds, _) = parse_normalizer(args, &raw)?;
    let miner = fit_miner(args, ds)?;
    let model = hos_core::ModelFile::from_miner(&miner);
    model.save(out).map_err(|e| e.to_string())?;
    println!(
        "fitted: k={}, metric={}, T={}, {} learning samples; model written to {out}",
        model.k,
        model.metric.name(),
        fmt_f64(model.threshold),
        model.samples
    );
    // --snapshot DIR also checkpoints the fitted state as a columnar
    // snapshot store, the format `stream --wal` and `hos-serve
    // --data-dir` recover from.
    if let Some(dir) = args.get("snapshot") {
        let config = miner_config(args)?;
        let store_config = hos_storage::StoreConfig {
            meta: hos_storage::config_fingerprint(&config, None),
            ..Default::default()
        };
        let (mut store, _) = hos_storage::Store::open(std::path::Path::new(dir), store_config)
            .map_err(|e| format!("opening snapshot dir {dir}: {e}"))?;
        let model_text = model.to_text();
        let n = miner.engine().dataset().len() as u64;
        store
            .snapshot(&hos_storage::store::SnapshotState {
                dataset: miner.engine().dataset(),
                model: Some(&model_text),
                base: 0,
                oldest: 0,
                rows_consumed: n,
                search_width: hos_storage::snapshot_search_width(&miner),
            })
            .map_err(|e| format!("writing snapshot: {e}"))?;
        println!("snapshot written to {dir} at seq {}", store.last_seq());
    }
    println!("note: apply the same --normalize flag on query/scan as used here.");
    Ok(())
}

fn cmd_info(args: &Args) -> CmdResult {
    let ds = load(args)?;
    println!("{} points, {} dimensions", ds.len(), ds.dim());
    let mut t = Table::new(vec!["col", "name", "mean", "std", "min", "max"]);
    for c in 0..ds.dim() {
        let col = ds.column_vec(c);
        let (mean, std, lo, hi) = hos_data::stats::column_summary(&col).ok_or("empty dataset")?;
        let name = ds
            .names()
            .map(|n| n[c].clone())
            .unwrap_or_else(|| format!("x{}", c + 1));
        t.push(vec![
            (c + 1).to_string(),
            name,
            fmt_f64(mean),
            fmt_f64(std),
            fmt_f64(lo),
            fmt_f64(hi),
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn print_outcome(out: &hos_core::QueryOutcome, threshold: f64) {
    if out.minimal.is_empty() {
        println!(
            "not an outlier in any subspace (threshold T = {})",
            fmt_f64(threshold)
        );
    } else {
        println!("minimal outlying subspaces (T = {}):", fmt_f64(threshold));
        let mut t = Table::new(vec!["subspace", "dims", "OD"]);
        for s in &out.minimal {
            let od = out
                .outlying
                .iter()
                .find(|x| x.subspace == *s)
                .and_then(|x| x.od)
                .map(fmt_f64)
                .unwrap_or_else(|| ">= T".to_string());
            t.push(vec![s.to_string(), s.dim().to_string(), od]);
        }
        println!("{}", t.render());
        println!(
            "({} outlying subspaces total before refinement)",
            out.outlying.len()
        );
    }
    println!(
        "search: {} OD evals, {} pruned-in, {} pruned-out, lattice {}, {} kernel folds, {:.1} ms",
        out.stats.od_evals,
        out.stats.pruned_outlier,
        out.stats.pruned_non_outlier,
        out.stats.lattice_size,
        out.stats.nodes_visited,
        out.stats.seconds * 1e3
    );
}

fn cmd_query(args: &Args) -> CmdResult {
    // Parse and validate the batch id list BEFORE the (expensive)
    // fit: a typo in --ids must not cost a full learning phase.
    let batch_ids = match args.get("ids") {
        None => None,
        Some(spec) => {
            if args.get("id").is_some() || args.get("point").is_some() {
                return Err("--ids is mutually exclusive with --id and --point".into());
            }
            let ids: Vec<usize> = spec
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad point id {v:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if ids.is_empty() {
                return Err("--ids needs at least one point id".into());
            }
            Some(ids)
        }
    };
    let raw = load(args)?;
    // Bounds-check batch ids as soon as the dataset size is known,
    // still ahead of the expensive fit.
    if let Some(ids) = &batch_ids {
        if let Some(&bad) = ids.iter().find(|&&id| id >= raw.len()) {
            return Err(format!(
                "point id {bad} out of bounds for dataset of {} points",
                raw.len()
            ));
        }
    }
    let (ds, norm) = parse_normalizer(args, &raw)?;
    let miner = build_miner(args, ds)?;
    if let Some(ids) = batch_ids {
        return cmd_query_batch(&miner, &ids, args.switch("verbose"));
    }
    let (out, query, exclude) = match (args.get_opt::<usize>("id")?, args.get("point")) {
        (Some(_), Some(_)) => return Err("--id and --point are mutually exclusive".into()),
        (Some(id), None) => {
            let out = miner.query_id(id).map_err(|e| e.to_string())?;
            let query: Vec<f64> = miner
                .engine()
                .dataset()
                .try_row(id)
                .map_err(|e| e.to_string())?
                .to_vec();
            (out, query, Some(id))
        }
        (None, Some(spec)) => {
            let raw_point: Vec<f64> = spec
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("bad coordinate {v:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let point = match &norm {
                Some(n) => n.apply_row(&raw_point).map_err(|e| e.to_string())?,
                None => raw_point,
            };
            let out = miner.query_point(&point).map_err(|e| e.to_string())?;
            (out, point, None)
        }
        (None, None) => return Err("query needs --id or --point".into()),
    };
    print_outcome(&out, miner.threshold());
    if args.switch("verbose") {
        let ex = hos_core::explain(&miner, &query, exclude, &out).map_err(|e| e.to_string())?;
        let names = miner.engine().dataset().names().map(|n| n.to_vec());
        println!("{}", hos_core::explain::render(&ex, names.as_deref()));
    }
    Ok(())
}

/// Multi-query front-end: `query --ids 3,17,256` runs every search in
/// one batch, parallelised across the miner's configured threads.
fn cmd_query_batch(miner: &HosMiner, ids: &[usize], verbose: bool) -> CmdResult {
    let outcomes = miner.query_ids(ids).map_err(|e| e.to_string())?;
    let mut outliers = 0usize;
    for (id, out) in ids.iter().zip(&outcomes) {
        println!("--- point #{id} ---");
        print_outcome(out, miner.threshold());
        if verbose {
            let query: Vec<f64> = miner.engine().dataset().row(*id).to_vec();
            let ex = hos_core::explain(miner, &query, Some(*id), out).map_err(|e| e.to_string())?;
            let names = miner.engine().dataset().names().map(|n| n.to_vec());
            println!("{}", hos_core::explain::render(&ex, names.as_deref()));
        }
        if out.is_outlier() {
            outliers += 1;
        }
        println!();
    }
    println!(
        "batch: {} queries, {} outlying in at least one subspace, {} total OD evals",
        ids.len(),
        outliers,
        outcomes.iter().map(|o| o.stats.od_evals).sum::<u64>()
    );
    Ok(())
}

fn cmd_scan(args: &Args) -> CmdResult {
    let raw = load(args)?;
    let (ds, _) = parse_normalizer(args, &raw)?;
    let miner = build_miner(args, ds)?;
    let top = args.get_or("top", 5usize)?;
    let report = hos_core::scan_outliers(&miner, top).map_err(|e| e.to_string())?;
    println!(
        "top {top} points by full-space OD (threshold T = {}):\n",
        fmt_f64(report.threshold)
    );
    if report.hits.is_empty() {
        println!("no point reaches the threshold in any subspace.");
    }
    for hit in &report.hits {
        println!(
            "point #{}: full-space OD = {}",
            hit.id,
            fmt_f64(hit.full_od)
        );
        let minimal: Vec<String> = hit.outcome.minimal.iter().map(|s| s.to_string()).collect();
        println!(
            "  minimal outlying subspaces: {}  ({} OD evals)\n",
            minimal.join(" "),
            hit.outcome.stats.od_evals
        );
    }
    println!(
        "({} of {} points skipped without any subspace search: full-space OD < T)",
        report.skipped,
        report.skipped + report.truncated + report.hits.len()
    );
    Ok(())
}

/// Streaming front-end: consume rows one at a time, maintain a
/// sliding window of the last `--window` rows through the incremental
/// engine path (`HosMiner::insert_point` / `retire_point` — no refits
/// on the steady-state path), and report the window's top outlying
/// points every `--every` rows.
///
/// Memory is bounded: tombstones accumulate until they outnumber the
/// live window 3:1, then the window is compacted into a fresh miner
/// (the only non-incremental step, amortised over 3·W rows). Reported
/// ids are absolute row numbers in the stream, stable across
/// compactions.
fn cmd_stream(args: &Args) -> CmdResult {
    let window = args.get_or("window", 500usize)?;
    let every = args.get_or("every", 200usize)?.max(1);
    let top = args.get_or("top", 3usize)?;
    let reestimate = args.switch("reestimate");
    let config = miner_config(args)?;
    if window <= config.k + 1 {
        return Err(format!(
            "--window {window} too small: need more than k + 1 = {} rows live",
            config.k + 1
        ));
    }

    let reader: Box<dyn std::io::BufRead> = match args.get("data") {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    // Durable mode (--wal DIR): every state transition is logged to a
    // write-ahead log before it is applied, and a crashed run recovers
    // by replaying the newest snapshot plus the WAL tail through the
    // exact same `StreamState::apply`. Without --wal the state machine
    // runs with a no-op logger and behaves as before.
    let mut store: Option<hos_storage::Store> = None;
    let mut state = StreamState::new(config, window, reestimate);
    if let Some(dir) = args.get("wal") {
        let store_config = hos_storage::StoreConfig {
            sync_every: args.get_or("sync-every", 64usize)?,
            meta: hos_storage::config_fingerprint(&config, Some(window)),
        };
        let (s, recovery) = hos_storage::Store::open(std::path::Path::new(dir), store_config)
            .map_err(|e| format!("opening wal dir {dir}: {e}"))?;
        if recovery.truncated_tail {
            println!("(wal: torn final record truncated)");
        }
        let replayed = recovery.ops.len();
        let snap_seq = recovery.snapshot.as_ref().map(|sn| sn.meta().seq);
        state = StreamState::from_recovery(config, window, reestimate, &recovery)?;
        if snap_seq.is_some() || replayed > 0 {
            println!(
                "recovered: snapshot seq {}, {replayed} wal ops replayed, resuming at row {}",
                snap_seq.map_or_else(|| "none".into(), |q| q.to_string()),
                state.rows_consumed
            );
        }
        store = Some(s);
    }
    // A recovered run already consumed this many input rows; skip them.
    let resume_skip = state.rows_consumed;

    let mut seen = state.rows_consumed as usize;
    let mut scans = 0usize;
    let mut outlier_rows = 0usize;
    let mut last_report = usize::MAX;
    let mut skip_header = args.switch("header");
    let mut data_rows = 0u64;

    fn log_op(store: &mut Option<hos_storage::Store>, op: &hos_storage::Op) -> CmdResult {
        if let Some(s) = store.as_mut() {
            s.append(op).map(|_| ()).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    fn report(
        state: &mut StreamState,
        store: &mut Option<hos_storage::Store>,
        top: usize,
        seen: usize,
        scans: &mut usize,
        outlier_rows: &mut usize,
    ) -> CmdResult {
        // --reestimate mutates the threshold, so in durable mode it is
        // a logged op like any other transition.
        if state.reestimate {
            let op = hos_storage::Op::Reestimate;
            log_op(store, &op)?;
            state.apply(&op)?;
        }
        let base = state.base as usize;
        let m = state.miner.as_mut().expect("report before fit");
        let rep = hos_core::scan_outliers(m, top).map_err(|e| e.to_string())?;
        *scans += 1;
        println!(
            "-- row {seen}: window {} live, T = {}",
            m.live_len(),
            fmt_f64(rep.threshold)
        );
        if rep.hits.is_empty() {
            println!("   (no point above T in any subspace)");
        }
        for hit in &rep.hits {
            *outlier_rows += 1;
            let minimal: Vec<String> = hit.outcome.minimal.iter().map(|s| s.to_string()).collect();
            println!(
                "   outlier row #{}: full OD {}, minimal subspaces {}",
                base + hit.id,
                fmt_f64(hit.full_od),
                minimal.join(" ")
            );
        }
        Ok(())
    }

    for line in std::io::BufRead::lines(reader) {
        let line = line.map_err(|e| format!("reading stream: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if skip_header {
            skip_header = false;
            continue;
        }
        data_rows += 1;
        if data_rows <= resume_skip {
            continue;
        }
        let row: Vec<f64> = trimmed
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("row {}: bad value {v:?}", seen + 1))
            })
            .collect::<Result<Vec<_>, _>>()?;
        seen += 1;

        let events = state.consume_row(row, &mut |op| log_op(&mut store, op))?;
        for ev in events {
            match ev {
                StreamEvent::Bootstrapped { threshold } => println!(
                    "bootstrapped on first {window} rows: k={}, engine={}, T = {}",
                    config.k,
                    config.engine,
                    fmt_f64(threshold)
                ),
                StreamEvent::Compacted { tombstones } => {
                    println!(
                        "(compacted {tombstones} tombstones at row {seen}; \
                         window ids renumbered from {})",
                        state.base
                    );
                    // Compaction is the snapshot cadence: the window
                    // was just rewritten densely, so checkpoint it and
                    // rotate the WAL before the next 3·W rows accrue.
                    if let Some(s) = store.as_mut() {
                        state.snapshot_into(s)?;
                        println!("(snapshot written at seq {})", s.last_seq());
                    }
                }
            }
        }
        if state.miner.is_some() && seen >= window && (seen - window).is_multiple_of(every) {
            report(
                &mut state,
                &mut store,
                top,
                seen,
                &mut scans,
                &mut outlier_rows,
            )?;
            last_report = seen;
        }
    }

    // A short stream never reached the window size: fit on what there
    // is so the final report still happens. The fit is a logged
    // transition like any other, so a durable short stream recovers
    // identically too.
    if state.miner.is_none() {
        if state.bootstrap_len() <= config.k + 1 {
            return Err(format!(
                "stream ended after {} rows; need more than k + 1 = {} to fit",
                state.bootstrap_len(),
                config.k + 1
            ));
        }
        let op = hos_storage::Op::Bootstrap;
        log_op(&mut store, &op)?;
        state.apply(&op)?;
    }
    // Final report unless the loop just emitted one at this exact row.
    if last_report != seen {
        report(
            &mut state,
            &mut store,
            top,
            seen,
            &mut scans,
            &mut outlier_rows,
        )?;
    }
    if let Some(s) = store.as_mut() {
        state.snapshot_into(s)?;
        println!("(snapshot written at seq {})", s.last_seq());
        println!("state digest: {:016x}", state.digest());
    }
    let m = state.miner.as_ref().expect("fitted above");
    println!(
        "stream: {seen} rows, window {} live, {} inserts, {} retires, \
         {scans} scans, {outlier_rows} outlier reports, final T = {}",
        m.live_len(),
        state.inserts,
        state.retires,
        fmt_f64(m.threshold())
    );
    Ok(())
}

/// End-to-end throughput measurement: fit a miner, run a batch of
/// member queries, report wall time and queries/s. The knob the
/// scaling story cares about: the same workload re-run with
/// `--threads`/`--shards` varied shows exactly what each buys, with
/// results guaranteed identical.
///
/// Every run also writes a machine-readable summary (default
/// `BENCH_SUMMARY.json`, overridable with `--summary PATH`, disabled
/// with `--summary -`): the workload config plus fit/query timings,
/// one JSON field per line so the `bench compare` parser — and any
/// CI script — can read it without a JSON library. `bench compare`
/// diffs a summary against a committed baseline with a tolerance.
fn cmd_bench(args: &Args) -> CmdResult {
    match args.positional().get(1).map(String::as_str) {
        Some("compare") => return cmd_bench_compare(args),
        Some("serve") => return cmd_bench_serve(args),
        _ => {}
    }
    let ds = if args.get("data").is_some() {
        load(args)?
    } else {
        let n = args.get_or("n", 5000usize)?;
        let d = args.get_or("d", 8usize)?;
        let spec = PlantedSpec {
            n_background: n,
            d,
            n_clusters: 3,
            cluster_sigma: 1.0,
            extent: 100.0,
            targets: vec![
                Subspace::from_dims(&[0, 1]),
                Subspace::from_dims(&[d.saturating_sub(1)]),
            ],
            shift_sigmas: 12.0,
            seed: args.get_or("seed", 0u64)?,
        };
        generate(&spec).map_err(|e| e.to_string())?.dataset
    };
    // Same preprocessing as fit/query/scan: the timed workload must be
    // the one the user actually serves.
    let (ds, _) = parse_normalizer(args, &ds)?;
    let n_queries = args.get_or("queries", 16usize)?.max(1).min(ds.len());
    let threads = args.get_or("threads", 1usize)?;
    let shards = args.get_or("shards", 1usize)?;

    let fit_start = std::time::Instant::now();
    let miner = build_miner(args, ds)?;
    let fit_seconds = fit_start.elapsed().as_secs_f64();

    // Evenly spread member queries across the dataset, deterministic.
    let n = miner.engine().dataset().len();
    let ids: Vec<usize> = (0..n_queries).map(|i| i * n / n_queries).collect();
    let query_start = std::time::Instant::now();
    let outcomes = miner.query_ids(&ids).map_err(|e| e.to_string())?;
    let query_seconds = query_start.elapsed().as_secs_f64();

    let od_evals: u64 = outcomes.iter().map(|o| o.stats.od_evals).sum();
    let outliers = outcomes.iter().filter(|o| o.is_outlier()).count();
    println!(
        "bench: {} points x {} dims, k={}, engine={}, threads={threads}, shards={shards}",
        n,
        miner.engine().dataset().dim(),
        miner.config().k,
        miner.config().engine,
    );
    println!(
        "fit:   {:.3} s (threshold T = {})",
        fit_seconds,
        fmt_f64(miner.threshold())
    );
    let queries_per_s = ids.len() as f64 / query_seconds.max(1e-12);
    println!(
        "query: {} queries in {:.3} s  ->  {:.1} queries/s  ({} OD evals, {} outliers)",
        ids.len(),
        query_seconds,
        queries_per_s,
        od_evals,
        outliers
    );

    let mut kernel_fields = String::new();
    if args.switch("kernel") {
        for (key, val) in kernel_benchmarks() {
            // Non-`_ms` keys are counts (e.g. the crossover n), not
            // durations.
            if key.ends_with("_ms") {
                println!("kernel: {key} = {val:.3} ms");
            } else {
                println!("kernel: {key} = {val:.0}");
            }
            kernel_fields.push_str(&format!(",\n    \"{key}\": {val:.3}"));
        }
    }

    let summary_path = args.get("summary").unwrap_or("BENCH_SUMMARY.json");
    if summary_path != "-" {
        let summary = format!(
            "{{\n  \"config\": {{\n    \"n\": {},\n    \"d\": {},\n    \"k\": {},\n    \
             \"engine\": \"{}\",\n    \"metric\": \"{}\",\n    \"threads\": {},\n    \
             \"shards\": {},\n    \"queries\": {}\n  }},\n  \"results\": {{\n    \
             \"fit_seconds\": {:.6},\n    \"query_seconds\": {:.6},\n    \
             \"queries_per_s\": {:.3},\n    \"od_evals\": {},\n    \"outliers\": {}{}\n  }}\n}}\n",
            n,
            miner.engine().dataset().dim(),
            miner.config().k,
            miner.config().engine,
            miner.config().metric.name(),
            threads,
            shards,
            ids.len(),
            fit_seconds,
            query_seconds,
            queries_per_s,
            od_evals,
            outliers,
            kernel_fields
        );
        std::fs::write(summary_path, summary)
            .map_err(|e| format!("writing {summary_path}: {e}"))?;
        println!("wrote {summary_path}");
    }
    Ok(())
}

/// Deterministic data for the kernel workloads: a fixed LCG, no
/// dependence on the bench flags, so the timings are comparable across
/// runs and machines (same work, always).
fn kernel_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut state = seed;
    let flat: Vec<f64> = (0..n * d)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 10000) as f64 / 100.0
        })
        .collect();
    Dataset::from_flat(flat, d).expect("finite synthetic data")
}

/// The fixed kernel micro-workloads behind `bench --kernel`, as
/// `(summary key, best-of-iters milliseconds)`:
///
/// * `blocked_scan_ms` — the blocked all-points full-space OD kernel
///   (quantized admission path) on n=2002, d=8, k=5, L2;
/// * `full_lattice_d{10,12}_ms` — the prefix-stack walker evaluating
///   all `2^d - 1` subspace ODs of one query (k=10);
/// * `hnsw_knn_ms` — 32 full-space hnsw k-NN queries (default `ef`)
///   at the largest sweep size (n=8000, d=8, k=5, L2), graph build
///   excluded;
/// * `hnsw_crossover_n` — the smallest sweep n where that hnsw query
///   batch beats the exact linear scan on the same batch (the
///   approximate-first break-even point; `16000` = beyond the sweep);
/// * `snapshot_ms` / `wal_replay_ms` — the storage tier: writing a
///   columnar snapshot of a 4000x8 dataset (encode + fsync + WAL
///   rotation), and recovering a 2000-op WAL tail via `Store::open`.
///
/// Best-of rather than mean: the workloads are deterministic, so the
/// minimum is the cleanest estimate of the kernel's cost.
fn kernel_benchmarks() -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    {
        let ds = kernel_dataset(2002, 8, 0x243F6A8885A308D3);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = std::time::Instant::now();
            let scan = hos_index::all_points_full_od(&ds, Metric::L2, 5).expect("enough points");
            let ms = t.elapsed().as_secs_f64() * 1000.0;
            assert!(!scan.is_empty());
            best = best.min(ms);
        }
        out.push(("blocked_scan_ms", best));
    }
    for (key, d) in [
        ("full_lattice_d10_ms", 10usize),
        ("full_lattice_d12_ms", 12),
    ] {
        let ds = kernel_dataset(2000, d, 0x9E3779B97F4A7C15);
        let query: Vec<f64> = ds.row(17).to_vec();
        let ctx = hos_index::QueryContext::build(&ds, Metric::L2, &query);
        let mut ordered: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        ordered.sort_by(|a, b| a.walk_cmp(*b));
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = std::time::Instant::now();
            let mut w = ctx.walker();
            let mut sink = 0.0;
            for &s in &ordered {
                w.seek(s);
                sink += w.od(10, Some(17));
            }
            let ms = t.elapsed().as_secs_f64() * 1000.0;
            assert!(sink.is_finite());
            best = best.min(ms);
        }
        out.push((key, best));
    }
    {
        // Approximate-vs-exact crossover sweep: same query batch
        // through HnswEngine (graph candidates + exact re-rank) and
        // LinearScan, per dataset size. Build time is excluded — the
        // key measures steady-state query cost, which is what the
        // crossover argument is about.
        let (d, k, queries) = (8usize, 5usize, 32usize);
        let sizes = [1000usize, 2000, 4000, 8000];
        let mut crossover = (2 * sizes[sizes.len() - 1]) as f64;
        let mut hnsw_ms = 0.0;
        for &n in &sizes {
            let ds = kernel_dataset(n, d, 0xB529_7A4D_4496_CF3D);
            let qids: Vec<usize> = (0..queries).map(|i| i * n / queries).collect();
            let hnsw = hos_index::HnswEngine::build(ds.clone(), Metric::L2, Default::default());
            let linear = hos_index::LinearScan::new(ds.clone(), Metric::L2);
            let s = ds.full_space();
            let time_batch = |engine: &dyn hos_index::KnnEngine| {
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let t = std::time::Instant::now();
                    let mut sink = 0usize;
                    for &qid in &qids {
                        sink += engine.knn(ds.row(qid), k, s, Some(qid)).len();
                    }
                    let ms = t.elapsed().as_secs_f64() * 1000.0;
                    assert_eq!(sink, queries * k);
                    best = best.min(ms);
                }
                best
            };
            let approx = time_batch(&hnsw);
            let exact = time_batch(&linear);
            if approx < exact && crossover > n as f64 {
                crossover = n as f64;
            }
            hnsw_ms = approx;
        }
        out.push(("hnsw_knn_ms", hnsw_ms));
        out.push(("hnsw_crossover_n", crossover));
    }
    {
        // Storage-tier kernels: columnar snapshot encode + fsync of a
        // 4000x8 dataset, and `Store::open` recovery of a 2000-op WAL
        // tail over that snapshot (read, checksum, decode). Both are
        // wall-clock including fsync, so they carry more machine noise
        // than the pure CPU kernels above — they ride in the summary
        // as optional, non-gating keys.
        use hos_storage::store::SnapshotState;
        let dir = std::env::temp_dir().join(format!("hos-bench-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = kernel_dataset(4000, 8, 0x1357_9BDF_2468_ACE0);
        let sc = || hos_storage::StoreConfig {
            sync_every: 64,
            meta: "bench kernel".into(),
        };
        let (mut store, _) = hos_storage::Store::open(&dir, sc()).expect("bench store dir");
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = std::time::Instant::now();
            store
                .snapshot(&SnapshotState {
                    dataset: &ds,
                    model: None,
                    base: 0,
                    oldest: 0,
                    rows_consumed: ds.len() as u64,
                    search_width: 0,
                })
                .expect("bench snapshot");
            best = best.min(t.elapsed().as_secs_f64() * 1000.0);
        }
        out.push(("snapshot_ms", best));
        for i in 0..2000u64 {
            let op = if i % 2 == 0 {
                hos_storage::Op::Insert(ds.row(i as usize % ds.len()).to_vec())
            } else {
                hos_storage::Op::Retire(i / 2)
            };
            store.append(&op).expect("bench append");
        }
        store.sync().expect("bench sync");
        drop(store);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = std::time::Instant::now();
            let (s, rec) = hos_storage::Store::open(&dir, sc()).expect("bench reopen");
            let ms = t.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(rec.ops.len(), 2000, "bench wal tail intact");
            drop(s);
            best = best.min(ms);
        }
        out.push(("wal_replay_ms", best));
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

/// `bench serve`: sustained-load benchmark of the resident query
/// server under a 90/10 read/write mix, across four arms that all
/// answer bit-identically (pinned by the serve concurrency and
/// protocol oracles) so each comparison isolates one mechanism:
///
/// * unbatched (`batch_max 1`) vs **fixed-window batched** — what
///   cross-request batching buys (`serve_qps`, meaning unchanged
///   from earlier baselines);
/// * fixed vs **adaptive window** — what the arrival/cost model buys
///   in tail latency (`serve_adaptive_*`);
/// * batched JSON vs **hosbin** with a pipelined binary client —
///   what the length-prefixed protocol and `--pipeline` in-flight
///   frames buy (`serve_bin_*`).
///
/// The speedup gates (`--min-speedup`, `--min-bin-speedup`) are
/// enforced only when the machine has more than one core: batching
/// converts concurrent requests into one parallel fan-out, and
/// pipelining needs idle workers to overlap with, so on a single
/// core both gates relax to a no-regression floor.
fn cmd_bench_serve(args: &Args) -> CmdResult {
    let ds = if args.get("data").is_some() {
        load(args)?
    } else {
        // Default to a workload where one query costs real work (a
        // full 20k x 8 OD scan minimum): dynamic batching buys
        // throughput by fanning execution out across cores, so the
        // benchmark must not be dominated by per-request socket
        // overhead the way a toy dataset would be.
        let n = args.get_or("n", 20_000usize)?;
        let d = args.get_or("d", 8usize)?;
        let spec = PlantedSpec {
            n_background: n,
            d,
            n_clusters: 3,
            cluster_sigma: 1.0,
            extent: 100.0,
            targets: vec![Subspace::from_dims(&[0, 1])],
            shift_sigmas: 12.0,
            seed: args.get_or("seed", 0u64)?,
        };
        generate(&spec).map_err(|e| e.to_string())?.dataset
    };
    let (ds, _) = parse_normalizer(args, &ds)?;
    let clients = args.get_or("clients", 8usize)?.max(1);
    let per_client = args.get_or("requests", 25usize)?.max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Batching wins by turning a window of concurrent requests into
    // one parallel fan-out — give the miner the machine's cores
    // unless --threads says otherwise.
    let threads = args.get_or("threads", cores)?;

    let fit_start = std::time::Instant::now();
    let mut miner = build_miner(args, ds)?;
    miner.set_threads(threads);
    let fit_seconds = fit_start.elapsed().as_secs_f64();
    let n = miner.engine().dataset().len();
    let dim = miner.engine().dataset().dim();
    println!(
        "bench serve: {n} points x {dim} dims, k={}, engine={}, threads={threads}, \
         {clients} clients x {per_client} requests, 90/10 read/write",
        miner.config().k,
        miner.config().engine,
    );

    /// One sustained run against a fresh in-process server; returns
    /// `(qps, p99_ms)`.
    fn drive(
        miner: hos_core::HosMiner,
        batch_max: usize,
        adaptive: bool,
        clients: usize,
        per_client: usize,
        n: usize,
        dim: usize,
    ) -> Result<(f64, f64), String> {
        let config = hos_serve::ServeConfig {
            workers: clients.min(16),
            batch_window: std::time::Duration::from_millis(2),
            batch_max,
            adaptive_window: adaptive,
            ..hos_serve::ServeConfig::default()
        };
        let server = hos_serve::Server::start(miner, &config).map_err(|e| e.to_string())?;
        let addr = server.addr();
        let start = std::time::Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(per_client);
                        let mut inserted: Vec<usize> = Vec::new();
                        for i in 0..per_client {
                            // 90/10 read/write; writes alternate
                            // insert / retire-own-insert so the live
                            // set stays near its starting size.
                            let (path, body) = if i % 10 == 9 {
                                match inserted.pop() {
                                    Some(id) => ("/retire", format!("{{\"id\":{id}}}")),
                                    None => {
                                        let v = ((c * 131 + i * 17) % 100) as f64;
                                        let row: Vec<String> =
                                            (0..dim).map(|j| format!("{}", v + j as f64)).collect();
                                        ("/insert", format!("{{\"row\":[{}]}}", row.join(",")))
                                    }
                                }
                            } else {
                                ("/query", format!("{{\"id\":{}}}", (c * 97 + i * 13) % n))
                            };
                            let t = std::time::Instant::now();
                            let (status, resp) =
                                tinyhttp::client_request(addr, "POST", path, body.as_bytes())
                                    .expect("server reachable");
                            lat.push(t.elapsed().as_secs_f64() * 1000.0);
                            assert!(
                                status == 200,
                                "unexpected status {status} on {path}: {}",
                                String::from_utf8_lossy(&resp)
                            );
                            if path == "/insert" {
                                let text = String::from_utf8_lossy(&resp);
                                if let Some(id) = summary_number(&text, "id") {
                                    inserted.push(id as usize);
                                }
                            }
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = start.elapsed().as_secs_f64();
        server.initiate_shutdown();
        let report = server.join();
        let total = latencies.len();
        assert_eq!(report.http_requests as usize, total);
        let mut sorted = latencies;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let p99 = sorted[((total as f64 * 0.99).ceil() as usize).clamp(1, total) - 1];
        Ok((total as f64 / elapsed.max(1e-12), p99))
    }

    /// One sustained hosbin run: same workload mix, but framed binary
    /// over one persistent connection per client with up to `pipeline`
    /// requests in flight (replies come back in order, so latency is
    /// measured send-to-matching-reply).
    fn drive_bin(
        miner: hos_core::HosMiner,
        clients: usize,
        per_client: usize,
        n: usize,
        dim: usize,
        pipeline: usize,
    ) -> Result<(f64, f64), String> {
        use hos_serve::codec;
        use std::collections::VecDeque;
        type InFlight = VecDeque<(bool, std::time::Instant)>;

        fn recv_one(
            cli: &mut tinyhttp::bin::BinClient,
            inflight: &mut InFlight,
            lat: &mut Vec<f64>,
            inserted: &mut Vec<usize>,
        ) {
            let (was_insert, sent) = inflight.pop_front().expect("reply for a sent frame");
            let (op, resp) = cli.recv().expect("server reachable");
            lat.push(sent.elapsed().as_secs_f64() * 1000.0);
            let (status, json) = codec::bin_reply_to_json(op, resp).expect("decodable reply");
            assert!(status == 200, "unexpected status {status}: {json:?}");
            if was_insert {
                if let Some(id) = json.get("id").and_then(hos_serve::Json::as_usize) {
                    inserted.push(id);
                }
            }
        }

        let config = hos_serve::ServeConfig {
            workers: clients.min(16),
            batch_window: std::time::Duration::from_millis(2),
            batch_max: 64,
            ..hos_serve::ServeConfig::default()
        };
        let server = hos_serve::Server::start(miner, &config).map_err(|e| e.to_string())?;
        let addr = server.addr();
        let start = std::time::Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut cli =
                            tinyhttp::bin::BinClient::connect(addr).expect("server reachable");
                        let mut lat = Vec::with_capacity(per_client);
                        let mut inserted: Vec<usize> = Vec::new();
                        let mut body = Vec::new();
                        let mut inflight: InFlight = VecDeque::with_capacity(pipeline);
                        for i in 0..per_client {
                            // Same 90/10 read/write mix as the HTTP arms.
                            let (req, is_insert) = if i % 10 == 9 {
                                match inserted.pop() {
                                    Some(id) => (hos_serve::ApiRequest::Retire(id), false),
                                    None => {
                                        let v = ((c * 131 + i * 17) % 100) as f64;
                                        let row: Vec<f64> =
                                            (0..dim).map(|j| v + j as f64).collect();
                                        (hos_serve::ApiRequest::Insert(row), true)
                                    }
                                }
                            } else {
                                let id = (c * 97 + i * 13) % n;
                                (
                                    hos_serve::ApiRequest::Query(vec![
                                        hos_core::QuerySpec::Member(id),
                                    ]),
                                    false,
                                )
                            };
                            let op = codec::encode_bin_request(&req, &mut body);
                            inflight.push_back((is_insert, std::time::Instant::now()));
                            cli.send(op, &body).expect("server reachable");
                            while inflight.len() >= pipeline {
                                recv_one(&mut cli, &mut inflight, &mut lat, &mut inserted);
                            }
                        }
                        while !inflight.is_empty() {
                            recv_one(&mut cli, &mut inflight, &mut lat, &mut inserted);
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let elapsed = start.elapsed().as_secs_f64();
        server.initiate_shutdown();
        let report = server.join();
        let total = latencies.len();
        assert_eq!(report.bin_requests as usize, total);
        let mut sorted = latencies;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let p99 = sorted[((total as f64 * 0.99).ceil() as usize).clamp(1, total) - 1];
        Ok((total as f64 / elapsed.max(1e-12), p99))
    }

    // The server consumes its miner; fit identical twins for the
    // other arms (fitting is deterministic, so the workloads match).
    let fit_twin = || -> Result<hos_core::HosMiner, String> {
        let mut m = build_miner(args, miner.engine().dataset().clone())?;
        m.set_threads(threads);
        Ok(m)
    };
    let twin_unbatched = fit_twin()?;
    let twin_fixed = fit_twin()?;
    let twin_bin = fit_twin()?;
    let pipeline = args.get_or("pipeline", 4usize)?.max(1);
    let (unbatched_qps, unbatched_p99) =
        drive(twin_unbatched, 1, false, clients, per_client, n, dim)?;
    let (serve_qps, serve_p99) = drive(twin_fixed, 64, false, clients, per_client, n, dim)?;
    let (adaptive_qps, adaptive_p99) = drive(miner, 64, true, clients, per_client, n, dim)?;
    let (bin_qps, bin_p99) = drive_bin(twin_bin, clients, per_client, n, dim, pipeline)?;
    let speedup = serve_qps / unbatched_qps.max(1e-12);
    let bin_speedup = bin_qps / serve_qps.max(1e-12);
    println!("serve unbatched: {unbatched_qps:.1} req/s, p99 {unbatched_p99:.2} ms  (batch_max 1)");
    println!(
        "serve batched:   {serve_qps:.1} req/s, p99 {serve_p99:.2} ms  (batch_max 64, fixed window)"
    );
    println!(
        "serve adaptive:  {adaptive_qps:.1} req/s, p99 {adaptive_p99:.2} ms  \
         (batch_max 64, adaptive window)"
    );
    println!(
        "serve hosbin:    {bin_qps:.1} req/s, p99 {bin_p99:.2} ms  \
         (binary protocol, pipeline {pipeline})"
    );
    println!("serve speedup:   {speedup:.2}x batched over unbatched");
    println!("serve bin speedup: {bin_speedup:.2}x hosbin over batched JSON");
    if let Some(min) = args.get_opt::<f64>("min-speedup")? {
        if cores > 1 && speedup < min {
            return Err(format!(
                "batched serve throughput only {speedup:.2}x unbatched (gate: {min}x)"
            ));
        }
        if cores <= 1 {
            // One core cannot fan a batch out, so the speedup gate
            // does not apply — but batching must never COST
            // throughput either. The batcher closes its window as
            // soon as the admission queue drains, so batched ≥ 0.95x
            // unbatched holds even here; gate that floor.
            if speedup < 0.95 {
                return Err(format!(
                    "batched serve throughput {speedup:.2}x unbatched on one core \
                     (floor: 0.95x — the batch window must close when the queue drains)"
                ));
            }
            println!(
                "note: single core — the {min}x speedup gate becomes a 0.95x \
                 no-regression floor (batching needs cores to fan out across)"
            );
        }
    }
    if let Some(min) = args.get_opt::<f64>("min-bin-speedup")? {
        if cores > 1 && bin_speedup < min {
            return Err(format!(
                "hosbin throughput only {bin_speedup:.2}x batched JSON (gate: {min}x)"
            ));
        }
        if cores <= 1 {
            // Pipelining needs idle workers to overlap with, so the
            // multiplier gate relaxes — but hosbin strictly removes
            // per-request work (no JSON parse/format, no HTTP heads),
            // so it must never be slower than the JSON path.
            if bin_speedup < 0.95 {
                return Err(format!(
                    "hosbin throughput {bin_speedup:.2}x batched JSON on one core \
                     (floor: 0.95x — the binary path must not cost throughput)"
                ));
            }
            println!(
                "note: single core — the {min}x hosbin gate becomes a 0.95x \
                 no-regression floor (pipelining needs idle workers to overlap)"
            );
        }
    }

    // Merge the serve keys into the bench summary so `bench compare`
    // sees one file; standalone summaries (no prior `bench` run) still
    // carry enough structure for the optional-key path.
    let summary_path = args.get("summary").unwrap_or("BENCH_SUMMARY.json");
    if summary_path != "-" {
        let serve_fields = format!(
            "\"serve_qps\": {serve_qps:.3},\n    \"serve_p99_ms\": {serve_p99:.3},\n    \
             \"serve_unbatched_qps\": {unbatched_qps:.3},\n    \"serve_speedup\": {speedup:.3},\n    \
             \"serve_adaptive_qps\": {adaptive_qps:.3},\n    \
             \"serve_adaptive_p99_ms\": {adaptive_p99:.3},\n    \
             \"serve_bin_qps\": {bin_qps:.3},\n    \"serve_bin_p99_ms\": {bin_p99:.3},\n    \
             \"serve_bin_speedup\": {bin_speedup:.3}"
        );
        let merged = match std::fs::read_to_string(summary_path) {
            Ok(text) if text.contains("\n  }\n}") && !text.contains("\"serve_qps\"") => {
                text.replacen("\n  }\n}", &format!(",\n    {serve_fields}\n  }}\n}}"), 1)
            }
            _ => format!(
                "{{\n  \"config\": {{\n    \"n\": {n},\n    \"d\": {dim},\n    \
                 \"serve_clients\": {clients}\n  }},\n  \"results\": {{\n    \
                 \"fit_seconds\": {fit_seconds:.6},\n    {serve_fields}\n  }}\n}}\n"
            ),
        };
        std::fs::write(summary_path, merged).map_err(|e| format!("writing {summary_path}: {e}"))?;
        println!("wrote {summary_path}");
    }
    Ok(())
}

/// `probe`: open a hosbin connection to a running `hos-serve` and
/// walk the read-only endpoints over framed binary — healthz, stats,
/// and (when the store is non-empty) one member query. Every reply
/// must decode; any error frame or framing fault is a hard failure.
/// Prints `hosbin probe: ok` on success, the deploy smoke contract.
fn cmd_probe(args: &Args) -> CmdResult {
    use hos_serve::codec;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("--addr: bad address {addr:?}"))?;
    let mut cli =
        tinyhttp::bin::BinClient::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let mut body = Vec::new();
    let mut walk = |req: &hos_serve::ApiRequest| -> Result<hos_serve::Json, String> {
        let op = codec::encode_bin_request(req, &mut body);
        let (rop, resp) = cli.call(op, &body).map_err(|e| format!("{addr}: {e}"))?;
        let (status, json) =
            codec::bin_reply_to_json(rop, &resp).map_err(|e| format!("{addr}: bad reply: {e}"))?;
        if status != 200 {
            return Err(format!("{addr}: status {status}: {json:?}"));
        }
        Ok(json)
    };
    walk(&hos_serve::ApiRequest::Healthz)?;
    let stats = walk(&hos_serve::ApiRequest::Stats)?;
    let live = stats
        .get("live")
        .and_then(hos_serve::Json::as_usize)
        .ok_or_else(|| format!("{addr}: stats reply lacks live"))?;
    let version = stats
        .get("version")
        .and_then(hos_serve::Json::as_usize)
        .ok_or_else(|| format!("{addr}: stats reply lacks version"))?;
    let mut queried = 0usize;
    if live > 0 {
        let reply = walk(&hos_serve::ApiRequest::Query(vec![
            hos_core::QuerySpec::Member(0),
        ]))?;
        queried = reply
            .get("results")
            .and_then(|r| r.as_array().map(<[hos_serve::Json]>::len))
            .ok_or_else(|| format!("{addr}: query reply lacks results"))?;
    }
    println!("hosbin probe: ok (live={live} version={version} queried={queried})");
    Ok(())
}

/// One numeric field out of a bench summary: scans for `"key":` and
/// parses the number that follows. Line-oriented and dependency-free,
/// matching the exact shape `cmd_bench` writes.
fn summary_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

/// One string field out of a bench summary.
fn summary_string(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = text.find(&needle)? + needle.len();
    text[start..].split('"').next().map(str::to_string)
}

/// `bench compare`: diffs the current `BENCH_SUMMARY.json` against a
/// committed `BENCH_BASELINE.json` within `--tolerance` (a relative
/// fraction, default 0.5 — generous because the baseline was captured
/// on one particular machine). Reports per-metric ratios; exits
/// successfully even on regressions — this is a *report*, wired into
/// CI as a non-blocking step — unless `--strict` is passed.
fn cmd_bench_compare(args: &Args) -> CmdResult {
    let baseline_path = args.get("baseline").unwrap_or("BENCH_BASELINE.json");
    let summary_path = args.get("summary").unwrap_or("BENCH_SUMMARY.json");
    let tolerance = args.get_or("tolerance", 0.5f64)?;
    if !(0.0..10.0).contains(&tolerance) {
        return Err(format!("--tolerance {tolerance} out of range [0, 10)"));
    }
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
    let current = std::fs::read_to_string(summary_path)
        .map_err(|e| format!("reading summary {summary_path}: {e}"))?;

    // Config drift makes the numbers incomparable; flag it loudly but
    // still print the report (CI may intentionally scale the workload).
    let mut config_drift = false;
    for key in ["n", "d", "k", "threads", "shards", "queries"] {
        let (b, c) = (
            summary_number(&baseline, key),
            summary_number(&current, key),
        );
        if b != c {
            println!(
                "note: config {key} differs (baseline {b:?}, current {c:?}) — ratios are indicative only"
            );
            config_drift = true;
        }
    }
    if summary_string(&baseline, "engine") != summary_string(&current, "engine") {
        println!("note: engines differ — ratios are indicative only");
        config_drift = true;
    }

    // (key, higher_is_better, required): the kernel keys only exist in
    // summaries written with `bench --kernel`, so by default a side
    // lacking one is a note, not an error. Naming a key in --keys
    // makes it required — a strict CI compare must never silently
    // compare nothing.
    let registry: [(&str, bool, bool); 15] = [
        ("queries_per_s", true, true),
        ("fit_seconds", false, true),
        ("blocked_scan_ms", false, false),
        ("full_lattice_d10_ms", false, false),
        ("full_lattice_d12_ms", false, false),
        // hnsw keys are optional for the same reason the kernel keys
        // are: baselines recorded before the hnsw tier (or without
        // --kernel) simply lack them, and that must read as a
        // skip-with-note, not a REGRESSION.
        ("hnsw_knn_ms", false, false),
        ("hnsw_crossover_n", false, false),
        // serve keys exist only in summaries touched by `bench
        // serve`; older baselines skip-with-note.
        ("serve_qps", true, false),
        ("serve_p99_ms", false, false),
        // adaptive-window and hosbin arms (bench serve since the
        // binary protocol); older baselines skip-with-note.
        ("serve_adaptive_qps", true, false),
        ("serve_adaptive_p99_ms", false, false),
        ("serve_bin_qps", true, false),
        ("serve_bin_p99_ms", false, false),
        // storage kernels (bench --kernel since the durable tier):
        // wall-clock including fsync, so optional and non-gating.
        ("snapshot_ms", false, false),
        ("wal_replay_ms", false, false),
    ];
    let requested: Option<Vec<&str>> = args.get("keys").map(|s| s.split(',').collect());
    if let Some(keys) = &requested {
        for key in keys {
            if !registry.iter().any(|(k, _, _)| k == key) {
                return Err(format!(
                    "--keys: unknown metric {key:?}; known: {}",
                    registry.map(|(k, _, _)| k).join(", ")
                ));
            }
        }
    }

    // Additive epsilon floor on both sides of the ratio: the metrics
    // are seconds/milliseconds-scale, so anything this small is timer
    // noise. Without the floor a zero-valued baseline entry (a fast
    // machine flooring a tiny fit to 0.000000) turns the ratio into
    // `inf` and every such compare into a fake REGRESSION.
    const ABS_EPS: f64 = 1e-3;
    let mut regressions = 0usize;
    let mut t = Table::new(vec!["metric", "baseline", "current", "ratio", "verdict"]);
    for (key, higher_is_better, required) in registry {
        let explicit = requested.as_ref().is_some_and(|keys| keys.contains(&key));
        if requested.is_some() && !explicit {
            continue;
        }
        let required = required || explicit;
        let (b, c) = (
            summary_number(&baseline, key),
            summary_number(&current, key),
        );
        let (b, c) = match (b, c) {
            (Some(b), Some(c)) => (b, c),
            (b, _) if required => {
                let (path, side) = if b.is_none() {
                    (baseline_path, "baseline")
                } else {
                    (summary_path, "summary")
                };
                return Err(format!("{side} {path} lacks {key}"));
            }
            _ => {
                let how = if key.starts_with("serve_") {
                    "bench serve"
                } else {
                    "bench --kernel"
                };
                println!("note: {key} missing on one side — skipped (run `{how}` to record it)");
                continue;
            }
        };
        let ratio = (c.abs() + ABS_EPS) / (b.abs() + ABS_EPS);
        let regressed = if higher_is_better {
            ratio < 1.0 - tolerance
        } else {
            ratio > 1.0 + tolerance
        };
        let improved = if higher_is_better {
            ratio > 1.0 + tolerance
        } else {
            ratio < 1.0 - tolerance
        };
        let verdict = if regressed {
            regressions += 1;
            "REGRESSION"
        } else if improved {
            "improved"
        } else {
            "ok"
        };
        t.push(vec![
            key.to_string(),
            fmt_f64(b),
            fmt_f64(c),
            format!("{ratio:.2}x"),
            verdict.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "bench compare: {} regression(s) beyond ±{:.0}% vs {baseline_path}{}",
        regressions,
        tolerance * 100.0,
        if config_drift { " (config drift!)" } else { "" }
    );
    if regressions > 0 && args.switch("strict") {
        return Err(format!(
            "{regressions} bench metric(s) regressed beyond tolerance {tolerance}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> CmdResult {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("hos_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&["help"]).is_ok());
        assert!(run(&[]).is_ok());
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn generate_info_query_scan_pipeline() {
        let path = tmp("pipeline.csv");
        run(&[
            "generate",
            "--out",
            &path,
            "--n",
            "300",
            "--d",
            "5",
            "--targets",
            "[1,2];[4]",
            "--seed",
            "3",
        ])
        .unwrap();
        run(&["info", "--data", &path]).unwrap();
        // Planted outliers are the last two rows: ids 300 and 301.
        run(&["query", "--data", &path, "--id", "300", "--samples", "5"]).unwrap();
        run(&[
            "query",
            "--data",
            &path,
            "--id",
            "300",
            "--samples",
            "5",
            "--verbose",
        ])
        .unwrap();
        run(&[
            "query",
            "--data",
            &path,
            "--point",
            "0,0,0,0,0",
            "--quantile",
            "0.9",
            "--samples",
            "0",
        ])
        .unwrap();
        run(&["scan", "--data", &path, "--top", "3", "--samples", "5"]).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_query_via_ids() {
        let path = tmp("batch.csv");
        run(&[
            "generate",
            "--out",
            &path,
            "--n",
            "250",
            "--d",
            "5",
            "--targets",
            "[1,2];[4]",
            "--seed",
            "6",
        ])
        .unwrap();
        // Planted outliers are rows 250 and 251; mix in inliers and
        // fan out across threads.
        run(&[
            "query",
            "--data",
            &path,
            "--ids",
            "250,251,0,1,2",
            "--samples",
            "5",
            "--threads",
            "4",
        ])
        .unwrap();
        // --verbose renders per-point explanations in batch mode too.
        run(&[
            "query",
            "--data",
            &path,
            "--ids",
            "250,0",
            "--samples",
            "5",
            "--verbose",
        ])
        .unwrap();
        // Validation: bad ids, empty list, flag exclusivity.
        assert!(run(&["query", "--data", &path, "--ids", "0,99999"]).is_err());
        assert!(run(&["query", "--data", &path, "--ids", "0,oops"]).is_err());
        assert!(run(&["query", "--data", &path, "--ids", "0", "--id", "1"]).is_err());
        assert!(run(&[
            "query",
            "--data",
            &path,
            "--ids",
            "0",
            "--point",
            "1,2,3,4,5"
        ])
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_flag_validation() {
        let path = tmp("valid.csv");
        run(&["generate", "--out", &path, "--n", "100", "--d", "4"]).unwrap();
        assert!(run(&["query", "--data", &path]).is_err());
        assert!(run(&["query", "--data", &path, "--id", "0", "--point", "1,2,3,4"]).is_err());
        assert!(run(&[
            "query",
            "--data",
            &path,
            "--id",
            "0",
            "--threshold",
            "5",
            "--quantile",
            "0.9"
        ])
        .is_err());
        assert!(run(&["query", "--data", &path, "--id", "0", "--metric", "cosine"]).is_err());
        assert!(run(&["query", "--data", &path, "--point", "1,2,oops,4"]).is_err());
        assert!(run(&["query", "--data", "/nonexistent.csv", "--id", "0"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalization_options() {
        let path = tmp("norm.csv");
        run(&[
            "generate", "--out", &path, "--n", "200", "--d", "4", "--seed", "9",
        ])
        .unwrap();
        for mode in ["none", "minmax", "zscore"] {
            run(&[
                "query",
                "--data",
                &path,
                "--id",
                "0",
                "--normalize",
                mode,
                "--samples",
                "0",
            ])
            .unwrap();
        }
        assert!(run(&["query", "--data", &path, "--id", "0", "--normalize", "log"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fit_then_query_with_saved_model() {
        let data = tmp("model_data.csv");
        let model = tmp("fitted.model");
        run(&[
            "generate", "--out", &data, "--n", "300", "--d", "5", "--seed", "8",
        ])
        .unwrap();
        run(&[
            "fit",
            "--data",
            &data,
            "--save-model",
            &model,
            "--k",
            "4",
            "--quantile",
            "0.9",
            "--samples",
            "8",
        ])
        .unwrap();
        run(&["query", "--data", &data, "--id", "300", "--model", &model]).unwrap();
        run(&["scan", "--data", &data, "--top", "2", "--model", &model]).unwrap();
        // A corrupt model file is an error, not a panic.
        std::fs::write(&model, "garbage").unwrap();
        assert!(run(&["query", "--data", &data, "--id", "0", "--model", &model]).is_err());
        assert!(run(&["fit", "--data", &data]).is_err()); // missing --save-model
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn shards_flag_accepted_and_validated() {
        let path = tmp("shards.csv");
        run(&[
            "generate", "--out", &path, "--n", "250", "--d", "5", "--seed", "7",
        ])
        .unwrap();
        run(&[
            "query",
            "--data",
            &path,
            "--id",
            "250",
            "--samples",
            "0",
            "--shards",
            "4",
            "--threads",
            "2",
        ])
        .unwrap();
        run(&[
            "scan",
            "--data",
            &path,
            "--top",
            "2",
            "--samples",
            "0",
            "--shards",
            "3",
        ])
        .unwrap();
        // shards = 0 is a config error, not a panic.
        assert!(run(&["query", "--data", &path, "--id", "0", "--shards", "0"]).is_err());
        assert!(run(&["query", "--data", &path, "--id", "0", "--shards", "oops"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_subcommand_windows_and_reports() {
        let path = tmp("stream.csv");
        run(&[
            "generate",
            "--out",
            &path,
            "--n",
            "400",
            "--d",
            "4",
            "--targets",
            "[1,2]",
            "--seed",
            "11",
        ])
        .unwrap();
        // Window smaller than the stream: bootstraps, slides, reports.
        run(&[
            "stream",
            "--data",
            &path,
            "--window",
            "150",
            "--every",
            "100",
            "--top",
            "2",
            "--samples",
            "0",
            "--quantile",
            "0.95",
        ])
        .unwrap();
        // Reestimation, sharded engine, alternative index.
        run(&[
            "stream",
            "--data",
            &path,
            "--window",
            "120",
            "--every",
            "150",
            "--samples",
            "0",
            "--reestimate",
            "--shards",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        run(&[
            "stream",
            "--data",
            &path,
            "--window",
            "100",
            "--every",
            "200",
            "--samples",
            "0",
            "--engine",
            "xtree",
        ])
        .unwrap();
        // Stream shorter than the window: fits on what arrived.
        run(&[
            "stream",
            "--data",
            &path,
            "--window",
            "5000",
            "--samples",
            "0",
        ])
        .unwrap();
        // Validation: window must exceed k + 1; bad file is an error.
        assert!(run(&["stream", "--data", &path, "--window", "5", "--k", "5"]).is_err());
        assert!(run(&["stream", "--data", "/nonexistent.csv"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_compacts_long_runs_with_small_windows() {
        // 400 rows over a 30-row window: > 3x tombstone ratio is hit
        // repeatedly, so the compaction path (id renumbering, base
        // offset, refit with pinned threshold) is exercised.
        let path = tmp("stream_compact.csv");
        run(&[
            "generate", "--out", &path, "--n", "400", "--d", "3", "--seed", "13",
        ])
        .unwrap();
        run(&[
            "stream",
            "--data",
            &path,
            "--window",
            "30",
            "--every",
            "120",
            "--samples",
            "0",
            "--k",
            "3",
        ])
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_subcommand_synthetic_and_file() {
        run(&[
            "bench",
            "--n",
            "300",
            "--d",
            "4",
            "--queries",
            "4",
            "--samples",
            "0",
            "--shards",
            "2",
            "--threads",
            "2",
            "--summary",
            "-",
        ])
        .unwrap();
        let path = tmp("bench.csv");
        run(&[
            "generate", "--out", &path, "--n", "200", "--d", "4", "--seed", "3",
        ])
        .unwrap();
        run(&[
            "bench",
            "--data",
            &path,
            "--queries",
            "3",
            "--samples",
            "0",
            "--summary",
            "-",
        ])
        .unwrap();
        // --normalize is honoured (and validated) like fit/query/scan.
        run(&[
            "bench",
            "--data",
            &path,
            "--queries",
            "3",
            "--samples",
            "0",
            "--normalize",
            "zscore",
            "--summary",
            "-",
        ])
        .unwrap();
        assert!(run(&["bench", "--data", &path, "--normalize", "log"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_summary_and_compare_roundtrip() {
        let baseline = tmp("bench_baseline.json");
        let summary = tmp("bench_summary.json");
        run(&[
            "bench",
            "--n",
            "250",
            "--d",
            "4",
            "--queries",
            "8",
            "--samples",
            "0",
            "--summary",
            &baseline,
        ])
        .unwrap();
        // The summary is machine-readable: config and results fields
        // present with parseable numbers.
        let text = std::fs::read_to_string(&baseline).unwrap();
        for key in [
            "\"n\":",
            "\"queries\":",
            "\"fit_seconds\":",
            "\"queries_per_s\":",
            "\"od_evals\":",
        ] {
            assert!(text.contains(key), "summary lacks {key}: {text}");
        }
        assert!(summary_number(&text, "queries_per_s").unwrap() > 0.0);
        assert_eq!(summary_string(&text, "engine").as_deref(), Some("linear"));

        // Same workload again: compare passes within any tolerance.
        run(&[
            "bench",
            "--n",
            "250",
            "--d",
            "4",
            "--queries",
            "8",
            "--samples",
            "0",
            "--summary",
            &summary,
        ])
        .unwrap();
        run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--tolerance",
            "5.0",
        ])
        .unwrap();

        // A fabricated 100x regression: still Ok as a report, an
        // error under --strict.
        let slow = text.replace(
            &format!(
                "\"queries_per_s\": {:.3}",
                summary_number(&text, "queries_per_s").unwrap()
            ),
            "\"queries_per_s\": 0.001",
        );
        assert!(slow.contains("0.001"), "fabrication failed: {slow}");
        std::fs::write(&summary, slow).unwrap();
        run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
        ])
        .unwrap();
        assert!(run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--strict",
        ])
        .is_err());

        // Validation: missing files and bad tolerances are errors.
        assert!(run(&["bench", "compare", "--baseline", "/nonexistent.json"]).is_err());
        assert!(run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--tolerance",
            "-1",
        ])
        .is_err());
        std::fs::remove_file(&baseline).ok();
        std::fs::remove_file(&summary).ok();
    }

    /// Regression for the compare divide-by-zero family: a baseline
    /// whose `fit_seconds` floored to 0.000000 (tiny dataset, coarse
    /// timer) used to make `ratio = c / b.max(1e-12)` explode to ~1e9x
    /// and fail every --strict compare. The additive epsilon floor
    /// keeps the ratio finite and ~1 when both sides are timer noise.
    #[test]
    fn bench_compare_zero_baseline_and_kernel_keys() {
        let write = |path: &str, fit: &str, kernel: &str| {
            std::fs::write(
                path,
                format!(
                    "{{\n  \"results\": {{\n    \"fit_seconds\": {fit},\n    \
                     \"queries_per_s\": 5000.000{kernel}\n  }}\n}}\n"
                ),
            )
            .unwrap();
        };
        let baseline = tmp("cmp_zero_baseline.json");
        let summary = tmp("cmp_zero_summary.json");

        // Zero-valued baseline entry, non-zero (but still noise-scale)
        // current: no inf/NaN ratio, no false regression even strict.
        write(&baseline, "0.000000", "");
        write(&summary, "0.000100", "");
        run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--strict",
        ])
        .unwrap();

        // Kernel keys absent from both sides: skipped with a note by
        // default, an error once --keys names them.
        run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--keys",
            "queries_per_s",
            "--strict",
        ])
        .unwrap();
        assert!(run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--keys",
            "blocked_scan_ms",
        ])
        .is_err());
        assert!(run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--keys",
            "no_such_metric",
        ])
        .is_err());

        // Kernel keys present on both sides: compared, and a genuine
        // kernel regression trips --strict while the matched core
        // keys alone would pass.
        write(&baseline, "0.010000", ",\n    \"blocked_scan_ms\": 12.000");
        write(&summary, "0.010000", ",\n    \"blocked_scan_ms\": 40.000");
        run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
        ])
        .unwrap();
        assert!(run(&[
            "bench",
            "compare",
            "--baseline",
            &baseline,
            "--summary",
            &summary,
            "--keys",
            "blocked_scan_ms",
            "--strict",
        ])
        .is_err());
        std::fs::remove_file(&baseline).ok();
        std::fs::remove_file(&summary).ok();
    }

    #[test]
    fn model_load_honours_shards_and_threads() {
        let data = tmp("sharded_model.csv");
        let model = tmp("sharded.model");
        run(&[
            "generate", "--out", &data, "--n", "250", "--d", "4", "--seed", "5",
        ])
        .unwrap();
        run(&[
            "fit",
            "--data",
            &data,
            "--save-model",
            &model,
            "--quantile",
            "0.9",
            "--samples",
            "5",
        ])
        .unwrap();
        run(&[
            "query",
            "--data",
            &data,
            "--id",
            "250",
            "--model",
            &model,
            "--shards",
            "4",
            "--threads",
            "2",
        ])
        .unwrap();
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn xtree_engine_via_cli() {
        let path = tmp("xtree.csv");
        run(&[
            "generate", "--out", &path, "--n", "400", "--d", "5", "--seed", "2",
        ])
        .unwrap();
        run(&[
            "query",
            "--data",
            &path,
            "--id",
            "400",
            "--engine",
            "xtree",
            "--samples",
            "3",
        ])
        .unwrap();
        std::fs::remove_file(&path).ok();
    }
}
