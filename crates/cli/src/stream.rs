//! The streaming state machine shared by the live path and recovery.
//!
//! `stream` used to interleave its window logic with I/O inside one
//! loop; durability needs the state transitions separated out, because
//! crash recovery replays the *same* transitions from the WAL. The
//! contract is log-then-apply: the driver appends an [`Op`] to the WAL
//! (when one is configured) and then feeds it to
//! [`StreamState::apply`]; recovery feeds the recorded ops to the same
//! `apply`. One code path for both directions is what makes the
//! recovered process bit-identical to an uninterrupted twin — there is
//! no second implementation to drift.

use hos_core::{HosMiner, HosMinerConfig, ThresholdPolicy};
use hos_data::Dataset;
use hos_storage::store::SnapshotState;
use hos_storage::{miner_from_snapshot, snapshot_search_width, Op, Recovery, Store};

/// A state transition worth reporting to the console.
#[derive(Debug, PartialEq)]
pub enum StreamEvent {
    /// The bootstrap window filled and the initial fit ran.
    Bootstrapped { threshold: f64 },
    /// The tombstone valve fired: ids renumbered, window refitted.
    Compacted { tombstones: u64 },
}

/// The full mutable state of a `stream` run. All transitions go
/// through [`StreamState::apply`].
pub struct StreamState {
    pub config: HosMinerConfig,
    pub window: usize,
    pub reestimate: bool,
    pub miner: Option<HosMiner>,
    /// Rows buffered before the first fit.
    bootstrap: Vec<Vec<f64>>,
    /// Stream row number of engine id 0 (compaction shifts it).
    pub base: u64,
    /// Next engine id FIFO retirement will evict.
    pub oldest: u64,
    /// Input rows consumed (= `Insert` ops applied) since stream
    /// start. A restart skips this many input rows.
    pub rows_consumed: u64,
    pub inserts: u64,
    pub retires: u64,
    pub compactions: u64,
}

impl StreamState {
    pub fn new(config: HosMinerConfig, window: usize, reestimate: bool) -> Self {
        StreamState {
            config,
            window,
            reestimate,
            miner: None,
            bootstrap: Vec::new(),
            base: 0,
            oldest: 0,
            rows_consumed: 0,
            inserts: 0,
            retires: 0,
            compactions: 0,
        }
    }

    /// Reconstructs the state a crashed (or cleanly stopped) run had:
    /// snapshot → miner, then WAL tail → `apply`, op by op.
    pub fn from_recovery(
        config: HosMinerConfig,
        window: usize,
        reestimate: bool,
        recovery: &Recovery,
    ) -> Result<Self, String> {
        let mut state = StreamState::new(config, window, reestimate);
        if let Some(snap) = &recovery.snapshot {
            let m = snap.meta();
            state.miner = Some(
                miner_from_snapshot(snap, &config).map_err(|e| format!("recovering miner: {e}"))?,
            );
            state.base = m.base;
            state.oldest = m.oldest;
            state.rows_consumed = m.rows_consumed;
        }
        for (_, op) in &recovery.ops {
            state.apply(op)?;
        }
        Ok(state)
    }

    /// Applies one logged transition. Used identically by the live
    /// path (after logging) and by recovery replay.
    pub fn apply(&mut self, op: &Op) -> Result<Option<StreamEvent>, String> {
        match op {
            Op::Insert(row) => {
                self.rows_consumed += 1;
                match &mut self.miner {
                    None => self.bootstrap.push(row.clone()),
                    Some(m) => {
                        m.insert_point(row).map_err(|e| e.to_string())?;
                        self.inserts += 1;
                    }
                }
                Ok(None)
            }
            Op::Bootstrap => {
                if self.miner.is_some() {
                    return Err("bootstrap op after the miner was already fitted".into());
                }
                let ds = Dataset::from_rows(&self.bootstrap).map_err(|e| e.to_string())?;
                self.bootstrap.clear();
                let m = HosMiner::fit(ds, self.config).map_err(|e| e.to_string())?;
                let threshold = m.threshold();
                self.miner = Some(m);
                Ok(Some(StreamEvent::Bootstrapped { threshold }))
            }
            Op::Retire(id) => {
                let m = self.miner.as_mut().ok_or("retire op before bootstrap")?;
                m.retire_point(*id as usize).map_err(|e| e.to_string())?;
                self.oldest = id + 1;
                self.retires += 1;
                Ok(None)
            }
            Op::Compact => {
                // Move the dataset out of the retiring miner and
                // compact it in place: `Dataset::compact` is a pure
                // order-preserving renumbering (copy_within +
                // truncate), so peak memory stays at ONE copy of the
                // window — the old clone-then-compact doubled it at
                // exactly the moment the valve fired.
                let m = self.miner.take().ok_or("compact op before bootstrap")?;
                let threshold = m.threshold();
                let mut ds = m.into_dataset();
                ds.compact();
                let tombstones = self.oldest;
                self.base += self.oldest;
                // Keep the current threshold unless --reestimate
                // re-derives it at each report anyway.
                let refit_config = if self.reestimate {
                    self.config
                } else {
                    HosMinerConfig {
                        threshold: ThresholdPolicy::Fixed(threshold),
                        ..self.config
                    }
                };
                self.miner = Some(HosMiner::fit(ds, refit_config).map_err(|e| e.to_string())?);
                self.oldest = 0;
                self.compactions += 1;
                Ok(Some(StreamEvent::Compacted { tombstones }))
            }
            Op::Reestimate => {
                let m = self
                    .miner
                    .as_mut()
                    .ok_or("reestimate op before bootstrap")?;
                m.reestimate_threshold().map_err(|e| e.to_string())?;
                Ok(None)
            }
        }
    }

    /// Drives one input row through the decision logic, logging every
    /// resulting op through `log` *before* applying it. Returns the
    /// events worth printing.
    pub fn consume_row(
        &mut self,
        row: Vec<f64>,
        log: &mut dyn FnMut(&Op) -> Result<(), String>,
    ) -> Result<Vec<StreamEvent>, String> {
        let mut events = Vec::new();
        let mut step = |state: &mut Self, op: Op| -> Result<Option<StreamEvent>, String> {
            log(&op)?;
            state.apply(&op)
        };
        events.extend(step(self, Op::Insert(row))?);
        if self.miner.is_none() && self.bootstrap.len() == self.window {
            events.extend(step(self, Op::Bootstrap)?);
        }
        if self.miner.is_some() {
            while self.live_len() > self.window {
                events.extend(step(self, Op::Retire(self.oldest))?);
            }
            // Bounded memory: compact once tombstones outnumber the
            // live window 3:1. Retirement is strictly FIFO, so the
            // tombstones are exactly the id prefix [0, oldest).
            let ds = self.miner.as_ref().expect("fitted").engine().dataset();
            if ds.dead_count() > 3 * ds.live_len() {
                events.extend(step(self, Op::Compact)?);
            }
        }
        Ok(events)
    }

    pub fn live_len(&self) -> usize {
        self.miner.as_ref().map_or(0, |m| m.live_len())
    }

    /// Rows buffered while waiting for the window to fill.
    pub fn bootstrap_len(&self) -> usize {
        self.bootstrap.len()
    }

    /// Writes a snapshot of the current state into `store` and rotates
    /// the WAL. Only meaningful post-fit (the pre-fit state is fully
    /// reconstructible from the WAL alone).
    pub fn snapshot_into(&self, store: &mut Store) -> Result<(), String> {
        let Some(m) = &self.miner else {
            return Ok(());
        };
        let model_text = hos_core::ModelFile::from_miner(m).to_text();
        store
            .snapshot(&SnapshotState {
                dataset: m.engine().dataset(),
                model: Some(&model_text),
                base: self.base,
                oldest: self.oldest,
                rows_consumed: self.rows_consumed,
                search_width: snapshot_search_width(m),
            })
            .map_err(|e| format!("writing snapshot: {e}"))?;
        Ok(())
    }

    /// A deterministic digest of the replay-relevant state: threshold
    /// bits, live rows (bit-exact, in id order), id counters. Two
    /// processes holding the same logical state print the same digest
    /// — the grep-pinnable comparator the kill-and-recover CI job
    /// diffs against an uninterrupted twin.
    pub fn digest(&self) -> u64 {
        // FNV-1a, 64-bit.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut feed = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        feed(self.base);
        feed(self.oldest);
        feed(self.rows_consumed);
        feed(self.window as u64);
        for row in &self.bootstrap {
            for v in row {
                feed(v.to_bits());
            }
        }
        if let Some(m) = &self.miner {
            feed(m.threshold().to_bits());
            let ds = m.engine().dataset();
            let flat = ds.as_flat();
            let d = ds.dim();
            feed(ds.live_len() as u64);
            for i in 0..ds.len() {
                if ds.is_live(i) {
                    feed(i as u64);
                    for v in &flat[i * d..(i + 1) * d] {
                        feed(v.to_bits());
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_core::ThresholdPolicy;

    fn config() -> HosMinerConfig {
        HosMinerConfig {
            k: 3,
            threshold: ThresholdPolicy::Fixed(5.0),
            sample_size: 0,
            ..HosMinerConfig::default()
        }
    }

    fn row(i: usize) -> Vec<f64> {
        vec![(i % 7) as f64, (i % 5) as f64 * 0.5, (i % 11) as f64 * 0.25]
    }

    /// Regression for the stream compaction bug: the valve used to
    /// `clone()` the whole dataset before compacting, doubling peak
    /// memory at exactly the moment memory pressure fired it. In-place
    /// compaction keeps the SAME heap allocation: `Dataset::compact`
    /// is copy_within + truncate, and `into_dataset` moves (never
    /// copies) the buffer through the engine teardown and refit.
    #[test]
    fn compaction_reuses_the_window_allocation() {
        let mut state = StreamState::new(config(), 20, false);
        let mut sink = |_: &Op| Ok(());
        // Fill the window and retire enough rows to arm the 3:1 valve.
        let mut i = 0;
        while state.miner.as_ref().is_none_or(|m| {
            let ds = m.engine().dataset();
            ds.dead_count() < 3 * ds.live_len()
        }) {
            state.consume_row(row(i), &mut sink).unwrap();
            i += 1;
            assert!(i < 10_000, "valve never armed");
        }
        let before = state
            .miner
            .as_ref()
            .unwrap()
            .engine()
            .dataset()
            .as_flat()
            .as_ptr();
        let event = state.apply(&Op::Compact).unwrap();
        assert!(matches!(event, Some(StreamEvent::Compacted { .. })));
        let after = state
            .miner
            .as_ref()
            .unwrap()
            .engine()
            .dataset()
            .as_flat()
            .as_ptr();
        assert_eq!(
            before, after,
            "compaction allocated a second copy of the window"
        );
        assert_eq!(state.oldest, 0);
        assert!(
            state
                .miner
                .as_ref()
                .unwrap()
                .engine()
                .dataset()
                .dead_count()
                == 0
        );
    }

    /// Log-then-apply completeness: replaying exactly the ops the live
    /// path logged must land in a bit-identical state (the WAL replay
    /// contract, minus the files).
    #[test]
    fn replaying_logged_ops_reproduces_the_state() {
        let mut live = StreamState::new(config(), 20, false);
        let mut logged: Vec<Op> = Vec::new();
        for i in 0..500 {
            live.consume_row(row(i), &mut |op| {
                logged.push(op.clone());
                Ok(())
            })
            .unwrap();
        }
        assert!(live.compactions > 0, "workload must exercise compaction");
        let mut replayed = StreamState::new(config(), 20, false);
        for op in &logged {
            replayed.apply(op).unwrap();
        }
        assert_eq!(live.digest(), replayed.digest());
        assert_eq!(live.base, replayed.base);
        assert_eq!(live.rows_consumed, replayed.rows_consumed);
        let (a, b) = (live.miner.unwrap(), replayed.miner.unwrap());
        assert_eq!(a.threshold().to_bits(), b.threshold().to_bits());
        assert_eq!(a.live_len(), b.live_len());
    }

    /// Ops out of order are typed errors, not panics — a corrupt or
    /// hand-edited WAL cannot crash recovery.
    #[test]
    fn out_of_order_ops_are_errors() {
        let mut state = StreamState::new(config(), 20, false);
        assert!(state.apply(&Op::Retire(0)).is_err());
        assert!(state.apply(&Op::Compact).is_err());
        assert!(state.apply(&Op::Reestimate).is_err());
        let mut fitted = StreamState::new(config(), 5, false);
        for i in 0..6 {
            fitted.consume_row(row(i), &mut |_| Ok(())).unwrap();
        }
        assert!(fitted.miner.is_some());
        assert!(fitted.apply(&Op::Bootstrap).is_err());
    }
}
