//! `hos-miner` — the demo system CLI (paper Figure 2, demo part 4).
//!
//! Subcommands:
//!
//! * `generate` — write a synthetic CSV workload with planted outliers;
//! * `info`     — dataset summary statistics;
//! * `query`    — find the outlying subspaces of a point (by id or
//!   coordinates): index → threshold → learn → dynamic search → filter;
//! * `scan`     — rank dataset points by full-space OD and report the
//!   minimal outlying subspaces of the top ones.
//!
//! Run `hos-miner help` for usage.

mod args;
mod commands;
mod stream;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
