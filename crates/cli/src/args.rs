//! Tiny dependency-free flag parser: `--name value` pairs plus
//! positional arguments, with typed accessors.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["header", "verbose", "reestimate", "strict", "kernel"];

impl Args {
    /// Parses `--name value` pairs, bare `--switch` flags and
    /// positionals from an argv slice.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    out.switches.push(name.to_string());
                    i += 1;
                } else {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| format!("flag --{name} requires a value"))?;
                    if out.flags.insert(name.to_string(), value.clone()).is_some() {
                        return Err(format!("flag --{name} given twice"));
                    }
                    i += 2;
                }
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A bare switch like `--header`.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }

    /// An optional typed flag.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv(&["query", "--k", "5", "--data", "x.csv", "--header"])).unwrap();
        assert_eq!(a.positional(), &["query".to_string()]);
        assert_eq!(a.get("k"), Some("5"));
        assert_eq!(a.require("data").unwrap(), "x.csv");
        assert!(a.switch("header"));
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn typed_accessors() {
        let a = Args::parse(&argv(&["--k", "7", "--q", "0.9"])).unwrap();
        assert_eq!(a.get_or("k", 5usize).unwrap(), 7);
        assert_eq!(a.get_or("missing", 5usize).unwrap(), 5);
        assert_eq!(a.get_opt::<f64>("q").unwrap(), Some(0.9));
        assert_eq!(a.get_opt::<f64>("nope").unwrap(), None);
        assert!(a.get_or("q", 1usize).is_err());
    }

    #[test]
    fn error_cases() {
        assert!(Args::parse(&argv(&["--k"])).is_err());
        assert!(Args::parse(&argv(&["--k", "1", "--k", "2"])).is_err());
        let a = Args::parse(&argv(&[])).unwrap();
        assert!(a.require("data").is_err());
    }
}
