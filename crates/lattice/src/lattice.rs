//! Materialised subspace-lattice state for the dynamic search.
//!
//! For `d` dimensions there are `2^d - 1` non-empty subspaces; the
//! search must know, for each, whether it is still to be examined,
//! already evaluated, pruned as a guaranteed non-outlier (downward
//! closure of Property 1) or pruned as a guaranteed outlier (upward
//! closure of Property 2). A flat `Vec<u8>` indexed by bitmask keeps
//! every transition O(1) and the closures pure bit-enumeration.
//!
//! Memory is `2^d` bytes, practical to `d ≈ 26`; beyond that the
//! dynamic search itself would be hopeless anyway (the paper's
//! experiments live well below this).

use crate::combinatorics;
use hos_data::Subspace;

/// Maximum dimensionality for a materialised lattice (`2^d` bytes).
pub const MAX_LATTICE_DIM: usize = 26;

/// Lifecycle state of one subspace during the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SubspaceState {
    /// Not yet looked at.
    Unevaluated = 0,
    /// OD was computed directly.
    Evaluated = 1,
    /// Pruned by Property 1: a superset scored below `T`, so this
    /// subspace cannot be outlying.
    PrunedNonOutlier = 2,
    /// Pruned by Property 2: a subset scored at least `T`, so this
    /// subspace is certainly outlying (goes straight to the answer
    /// set without an OD evaluation).
    PrunedOutlier = 3,
}

impl SubspaceState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => SubspaceState::Unevaluated,
            1 => SubspaceState::Evaluated,
            2 => SubspaceState::PrunedNonOutlier,
            3 => SubspaceState::PrunedOutlier,
            _ => unreachable!("invalid state byte {v}"),
        }
    }
}

/// Counters of how the search disposed of subspaces, per level and
/// overall — the raw material of the efficiency experiments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatticeCounters {
    /// OD evaluations actually performed.
    pub evaluated: u64,
    /// Subspaces ruled out by downward pruning.
    pub pruned_non_outlier: u64,
    /// Subspaces ruled *in* by upward pruning.
    pub pruned_outlier: u64,
}

/// The lattice state table.
#[derive(Clone, Debug)]
pub struct Lattice {
    d: usize,
    states: Vec<u8>,
    /// Unevaluated count per level (index = dimensionality, 0..=d).
    remaining: Vec<u64>,
    counters: LatticeCounters,
}

impl Lattice {
    /// Creates a fresh lattice over `d` dimensions with every
    /// non-empty subspace unevaluated.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > MAX_LATTICE_DIM`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 1, "lattice needs at least one dimension");
        assert!(
            d <= MAX_LATTICE_DIM,
            "d = {d} exceeds materialised-lattice limit {MAX_LATTICE_DIM}"
        );
        let mut remaining = vec![0u64; d + 1];
        for (m, slot) in remaining.iter_mut().enumerate().skip(1) {
            *slot = combinatorics::binomial(d, m) as u64;
        }
        Lattice {
            d,
            states: vec![0u8; 1usize << d],
            remaining,
            counters: LatticeCounters::default(),
        }
    }

    /// Dimensionality of the underlying space.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Current state of a subspace.
    pub fn state(&self, s: Subspace) -> SubspaceState {
        debug_assert!(!s.is_empty() && (s.mask() as usize) < self.states.len());
        SubspaceState::from_u8(self.states[s.mask() as usize])
    }

    /// Disposal counters so far.
    pub fn counters(&self) -> &LatticeCounters {
        &self.counters
    }

    /// Unevaluated subspaces remaining at level `m`.
    pub fn remaining_at(&self, m: usize) -> u64 {
        self.remaining.get(m).copied().unwrap_or(0)
    }

    /// Total unevaluated subspaces remaining.
    pub fn total_remaining(&self) -> u64 {
        self.remaining.iter().sum()
    }

    /// Whether every subspace has been evaluated or pruned.
    pub fn is_complete(&self) -> bool {
        self.total_remaining() == 0
    }

    /// The paper's `C_down_left(m)`: summed dimensionality of
    /// unpruned/unevaluated subspaces strictly below level `m`.
    pub fn c_down_left(&self, m: usize) -> f64 {
        (1..m.min(self.d + 1))
            .map(|i| self.remaining[i] as f64 * i as f64)
            .sum()
    }

    /// The paper's `C_up_left(m)`: summed dimensionality of
    /// unpruned/unevaluated subspaces strictly above level `m`.
    pub fn c_up_left(&self, m: usize) -> f64 {
        (m + 1..=self.d)
            .map(|i| self.remaining[i] as f64 * i as f64)
            .sum()
    }

    fn set_state(&mut self, mask: u64, state: SubspaceState) {
        let idx = mask as usize;
        debug_assert_eq!(self.states[idx], 0, "state transition from non-unevaluated");
        self.states[idx] = state as u8;
        let level = mask.count_ones() as usize;
        self.remaining[level] -= 1;
        match state {
            SubspaceState::Evaluated => self.counters.evaluated += 1,
            SubspaceState::PrunedNonOutlier => self.counters.pruned_non_outlier += 1,
            SubspaceState::PrunedOutlier => self.counters.pruned_outlier += 1,
            SubspaceState::Unevaluated => unreachable!(),
        }
    }

    /// Records a direct OD evaluation of `s`.
    ///
    /// # Panics
    /// Panics (debug) if `s` was already disposed of — the search must
    /// never evaluate a subspace twice.
    pub fn mark_evaluated(&mut self, s: Subspace) {
        self.set_state(s.mask(), SubspaceState::Evaluated);
    }

    /// Downward-pruning closure (Property 1): marks every still-open
    /// **strict subset** of `s` as a certain non-outlier. Returns how
    /// many subspaces were newly pruned.
    pub fn prune_down(&mut self, s: Subspace) -> u64 {
        let mut pruned = 0;
        for sub in s.strict_subsets() {
            if self.states[sub.mask() as usize] == 0 {
                self.set_state(sub.mask(), SubspaceState::PrunedNonOutlier);
                pruned += 1;
            }
        }
        pruned
    }

    /// Upward-pruning closure (Property 2): marks every still-open
    /// **strict superset** of `s` as a certain outlier. Returns how
    /// many subspaces were newly pruned.
    pub fn prune_up(&mut self, s: Subspace) -> u64 {
        let mut pruned = 0;
        let comp = s.complement(self.d);
        for extra in comp.subsets() {
            let sup = s.union(extra);
            if self.states[sup.mask() as usize] == 0 {
                self.set_state(sup.mask(), SubspaceState::PrunedOutlier);
                pruned += 1;
            }
        }
        pruned
    }

    /// All still-unevaluated subspaces at level `m`, in mask order.
    pub fn open_at_level(&self, m: usize) -> Vec<Subspace> {
        if self.remaining_at(m) == 0 {
            return Vec::new();
        }
        Subspace::all_of_dim(self.d, m)
            .filter(|s| self.states[s.mask() as usize] == 0)
            .collect()
    }

    /// All still-unevaluated subspaces at level `m` in **walker
    /// order** ([`Subspace::walk_cmp`]: depth-first preorder of the
    /// ascending-dimension prefix trie). This is the enumeration the
    /// prefix-stack kernel wants: consecutive subspaces share the
    /// longest possible prefix, so a level batch costs one `O(n)`
    /// column fold per distinct trie prefix instead of `O(n · m)` per
    /// subspace. Same subspaces as [`Lattice::open_at_level`], and —
    /// because every subspace's OD is order-independent — the same
    /// search results; only the evaluation cost changes.
    pub fn open_at_level_walk(&self, m: usize) -> Vec<Subspace> {
        let mut open = self.open_at_level(m);
        open.sort_unstable_by(|a, b| a.walk_cmp(*b));
        open
    }

    /// Iterates every subspace currently in a given state (used by the
    /// result assembly to collect `PrunedOutlier` members).
    pub fn in_state(&self, state: SubspaceState) -> Vec<Subspace> {
        (1..self.states.len())
            .filter(|&i| self.states[i] == state as u8)
            .map(|i| Subspace::from_mask(i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lattice_counts() {
        let l = Lattice::new(4);
        assert_eq!(l.dim(), 4);
        assert_eq!(l.total_remaining(), 15);
        assert_eq!(l.remaining_at(1), 4);
        assert_eq!(l.remaining_at(2), 6);
        assert_eq!(l.remaining_at(3), 4);
        assert_eq!(l.remaining_at(4), 1);
        assert!(!l.is_complete());
        assert_eq!(
            l.state(Subspace::from_dims(&[0, 1])),
            SubspaceState::Unevaluated
        );
    }

    #[test]
    fn mark_evaluated_updates_counters() {
        let mut l = Lattice::new(3);
        l.mark_evaluated(Subspace::from_dims(&[0]));
        assert_eq!(l.state(Subspace::from_dims(&[0])), SubspaceState::Evaluated);
        assert_eq!(l.remaining_at(1), 2);
        assert_eq!(l.counters().evaluated, 1);
    }

    #[test]
    fn prune_down_closes_strict_subsets() {
        let mut l = Lattice::new(4);
        let s = Subspace::from_dims(&[0, 1, 2]);
        let pruned = l.prune_down(s);
        assert_eq!(pruned, 6); // 2^3 - 2 strict non-empty subsets
        assert_eq!(
            l.state(Subspace::from_dims(&[0])),
            SubspaceState::PrunedNonOutlier
        );
        assert_eq!(
            l.state(Subspace::from_dims(&[0, 2])),
            SubspaceState::PrunedNonOutlier
        );
        // s itself untouched, unrelated subspaces untouched.
        assert_eq!(l.state(s), SubspaceState::Unevaluated);
        assert_eq!(
            l.state(Subspace::from_dims(&[3])),
            SubspaceState::Unevaluated
        );
    }

    #[test]
    fn prune_up_closes_strict_supersets() {
        let mut l = Lattice::new(4);
        let s = Subspace::from_dims(&[1]);
        let pruned = l.prune_up(s);
        assert_eq!(pruned, 7); // supersets of {1} in 4 dims, minus s itself
        assert_eq!(
            l.state(Subspace::from_dims(&[1, 3])),
            SubspaceState::PrunedOutlier
        );
        assert_eq!(l.state(Subspace::full(4)), SubspaceState::PrunedOutlier);
        assert_eq!(l.state(s), SubspaceState::Unevaluated);
        assert_eq!(
            l.state(Subspace::from_dims(&[0])),
            SubspaceState::Unevaluated
        );
    }

    #[test]
    fn pruning_is_idempotent_on_closed_subspaces() {
        let mut l = Lattice::new(4);
        l.prune_up(Subspace::from_dims(&[0]));
        let first = l.counters().pruned_outlier;
        let again = l.prune_up(Subspace::from_dims(&[0]));
        assert_eq!(again, 0);
        assert_eq!(l.counters().pruned_outlier, first);
    }

    #[test]
    fn overlapping_prunes_account_each_subspace_once() {
        let mut l = Lattice::new(3);
        let a = l.prune_up(Subspace::from_dims(&[0])); // {01},{02},{012} → 3
        let b = l.prune_up(Subspace::from_dims(&[1])); // {01} and {012} taken → only {12}
        assert_eq!(a, 3);
        assert_eq!(b, 1);
        let c = l.counters();
        assert_eq!(c.pruned_outlier, 4);
        assert_eq!(l.total_remaining(), 7 - 4);
    }

    #[test]
    fn completion() {
        let mut l = Lattice::new(2);
        l.mark_evaluated(Subspace::from_dims(&[0]));
        l.mark_evaluated(Subspace::from_dims(&[1]));
        l.mark_evaluated(Subspace::from_dims(&[0, 1]));
        assert!(l.is_complete());
        assert_eq!(l.counters().evaluated, 3);
    }

    #[test]
    fn c_left_tracks_remaining_workload() {
        let mut l = Lattice::new(4);
        // Fresh: C_down_left(3) = 4·1 + 6·2 = 16, C_up_left(3) = 1·4.
        assert_eq!(l.c_down_left(3), 16.0);
        assert_eq!(l.c_up_left(3), 4.0);
        // Evaluate one level-1 subspace: C_down_left(3) drops by 1.
        l.mark_evaluated(Subspace::from_dims(&[0]));
        assert_eq!(l.c_down_left(3), 15.0);
        // Boundaries.
        assert_eq!(l.c_down_left(1), 0.0);
        assert_eq!(l.c_up_left(4), 0.0);
    }

    #[test]
    fn open_at_level_lists_survivors() {
        let mut l = Lattice::new(3);
        l.prune_up(Subspace::from_dims(&[0]));
        let open2 = l.open_at_level(2);
        assert_eq!(open2, vec![Subspace::from_dims(&[1, 2])]);
        let open1 = l.open_at_level(1);
        assert_eq!(open1.len(), 3); // level 1 untouched by strict-superset pruning
        assert!(l.open_at_level(3).is_empty());
    }

    #[test]
    fn open_at_level_walk_same_set_walker_order() {
        let mut l = Lattice::new(4);
        l.prune_up(Subspace::from_dims(&[0]));
        let mask_order = l.open_at_level(2);
        let walk = l.open_at_level_walk(2);
        // Same subspaces…
        let mut a: Vec<u64> = mask_order.iter().map(|s| s.mask()).collect();
        let mut b: Vec<u64> = walk.iter().map(|s| s.mask()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // …in trie-DFS order: every adjacent pair ascends under
        // walk_cmp.
        for w in walk.windows(2) {
            assert_eq!(w[0].walk_cmp(w[1]), std::cmp::Ordering::Less);
        }
        // Supersets of {0} are pruned: the open level-2 set is
        // {1,2},{1,3},{2,3}, whose walk order equals mask order here.
        assert_eq!(
            walk,
            vec![
                Subspace::from_dims(&[1, 2]),
                Subspace::from_dims(&[1, 3]),
                Subspace::from_dims(&[2, 3]),
            ]
        );
    }

    #[test]
    fn in_state_collects() {
        let mut l = Lattice::new(3);
        l.prune_up(Subspace::from_dims(&[2]));
        let outliers = l.in_state(SubspaceState::PrunedOutlier);
        assert_eq!(outliers.len(), 3);
        for s in outliers {
            assert!(s.is_superset_of(Subspace::from_dims(&[2])));
        }
        assert!(l.in_state(SubspaceState::Evaluated).is_empty());
    }

    #[test]
    #[should_panic]
    fn oversized_dim_rejected() {
        let _ = Lattice::new(MAX_LATTICE_DIM + 1);
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        let _ = Lattice::new(0);
    }
}
