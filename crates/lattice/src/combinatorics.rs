//! Binomial coefficients and the paper's saving factors.
//!
//! Saving-factor magnitudes grow like `m · 2^m`, so everything is
//! computed in `f64`: relative comparisons (all TSF is used for) stay
//! exact far beyond `d = 63`, and there is no overflow cliff.

/// Binomial coefficient `C(n, k)` as `f64` (0 when `k > n`).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc.round()
}

/// Downward Saving Factor of an `m`-dimensional subspace
/// (Definition 1): the work saved by pruning every proper subset,
/// where evaluating an `i`-dimensional subspace costs `i`.
///
/// `DSF(m) = Σ_{i=1}^{m-1} C(m, i) · i`, with the closed form
/// `m · 2^(m-1) - m`.
///
/// ```
/// // The paper's §3.1 worked example in a 4-d space:
/// assert_eq!(hos_lattice::dsf(3), 9.0);     // DSF([1,2,3])
/// assert_eq!(hos_lattice::usf(2, 4), 10.0); // USF([1,4])
/// ```
pub fn dsf(m: usize) -> f64 {
    if m <= 1 {
        return 0.0;
    }
    let mf = m as f64;
    mf * 2f64.powi(m as i32 - 1) - mf
}

/// Upward Saving Factor of an `m`-dimensional subspace in a
/// `d`-dimensional space (Definition 2): the work saved by pruning
/// every proper superset.
///
/// `USF(m, d) = Σ_{i=1}^{d-m} C(d-m, i) · (m + i)`.
pub fn usf(m: usize, d: usize) -> f64 {
    if m >= d {
        return 0.0;
    }
    let r = d - m; // number of addable dimensions
                   // Σ C(r,i)(m+i) = m(2^r - 1) + r·2^(r-1)
    let rf = r as f64;
    let mf = m as f64;
    mf * (2f64.powi(r as i32) - 1.0) + rf * 2f64.powi(r as i32 - 1)
}

/// Total OD-evaluation workload of all subspaces at levels `< m`:
/// `C_down(m) = Σ_{i=1}^{m-1} C(d, i) · i` (the paper's denominator
/// for `f_down`).
pub fn c_down_total(m: usize, d: usize) -> f64 {
    (1..m).map(|i| binomial(d, i) * i as f64).sum()
}

/// Total OD-evaluation workload of all subspaces at levels `> m`:
/// `C_up(m) = Σ_{i=m+1}^{d} C(d, i) · i`.
pub fn c_up_total(m: usize, d: usize) -> f64 {
    (m + 1..=d).map(|i| binomial(d, i) * i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials() {
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn dsf_matches_paper_example() {
        // Paper §3.1: in a 4-d space, DSF([1,2,3]) = C(3,1)·1 + C(3,2)·2 = 9.
        assert_eq!(dsf(3), 9.0);
    }

    #[test]
    fn usf_matches_paper_example() {
        // Paper §3.1: USF([1,4]) in d=4: C(2,1)·(2+1) + C(2,2)·(2+2) = 10.
        assert_eq!(usf(2, 4), 10.0);
    }

    #[test]
    fn dsf_closed_form_equals_sum() {
        for m in 0..=20 {
            let direct: f64 = (1..m).map(|i| binomial(m, i) * i as f64).sum();
            assert_eq!(dsf(m), direct, "m={m}");
        }
    }

    #[test]
    fn usf_closed_form_equals_sum() {
        for d in 1..=16 {
            for m in 0..=d {
                let direct: f64 = (1..=d - m)
                    .map(|i| binomial(d - m, i) * (m + i) as f64)
                    .sum();
                assert_eq!(usf(m, d), direct, "m={m} d={d}");
            }
        }
    }

    #[test]
    fn boundary_values() {
        assert_eq!(dsf(0), 0.0);
        assert_eq!(dsf(1), 0.0); // 1-d subspaces have no non-empty subsets
        assert_eq!(usf(4, 4), 0.0); // the full space has no supersets
        assert_eq!(usf(5, 4), 0.0);
    }

    #[test]
    fn totals_partition_the_lattice_workload() {
        // C_down(m) + m·C(d,m) + C_up(m) = total workload Σ C(d,i)·i.
        let d = 9;
        let total: f64 = (1..=d).map(|i| binomial(d, i) * i as f64).sum();
        for m in 1..=d {
            let got = c_down_total(m, d) + binomial(d, m) * m as f64 + c_up_total(m, d);
            assert!((got - total).abs() < 1e-6, "m={m}");
        }
    }

    #[test]
    fn totals_boundaries() {
        assert_eq!(c_down_total(1, 8), 0.0);
        assert_eq!(c_up_total(8, 8), 0.0);
        assert!(c_down_total(8, 8) > 0.0);
    }
}
