//! The Total Saving Factor (paper Definition 3).
//!
//! `TSF(m, p)` estimates, for each lattice level `m`, how much future
//! work evaluating that level is expected to save through the two
//! pruning closures. The dynamic search always evaluates the level
//! with the largest TSF next.
//!
//! ```text
//! TSF(m,p) = p_up(m,p)·f_up(m)·USF(m)                      m = 1
//!          = p_down(m,p)·f_down(m)·DSF(m)
//!            + p_up(m,p)·f_up(m)·USF(m)                    1 < m < d
//!          = p_down(m,p)·f_down(m)·DSF(m)                  m = d
//! ```
//!
//! where `f_down(m) = C_down_left(m) / C_down(m)` (and mirrored for
//! `f_up`) are the live fractions of below/above-level workload still
//! open, and `p_up`/`p_down` come from the sampling-based learning
//! process (or the fixed priors during learning itself).

use crate::combinatorics::{c_down_total, c_up_total, dsf, usf};
use crate::lattice::Lattice;

/// Precomputed static factors for one dimensionality `d`.
#[derive(Clone, Debug)]
pub struct TsfComputer {
    d: usize,
    dsf: Vec<f64>,
    usf: Vec<f64>,
    c_down: Vec<f64>,
    c_up: Vec<f64>,
}

impl TsfComputer {
    /// Precomputes DSF/USF and total-workload denominators for every
    /// level of a `d`-dimensional lattice.
    pub fn new(d: usize) -> Self {
        assert!(d >= 1);
        let mut dsf_v = vec![0.0; d + 1];
        let mut usf_v = vec![0.0; d + 1];
        let mut c_down = vec![0.0; d + 1];
        let mut c_up = vec![0.0; d + 1];
        for m in 1..=d {
            dsf_v[m] = dsf(m);
            usf_v[m] = usf(m, d);
            c_down[m] = c_down_total(m, d);
            c_up[m] = c_up_total(m, d);
        }
        TsfComputer {
            d,
            dsf: dsf_v,
            usf: usf_v,
            c_down,
            c_up,
        }
    }

    /// Dimensionality this computer was built for.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Static DSF for level `m`.
    pub fn dsf_at(&self, m: usize) -> f64 {
        self.dsf[m]
    }

    /// Static USF for level `m`.
    pub fn usf_at(&self, m: usize) -> f64 {
        self.usf[m]
    }

    /// Live `f_down(m)`: fraction of the below-`m` workload still open.
    pub fn f_down(&self, m: usize, lattice: &Lattice) -> f64 {
        let denom = self.c_down[m];
        if denom <= 0.0 {
            0.0
        } else {
            lattice.c_down_left(m) / denom
        }
    }

    /// Live `f_up(m)`: fraction of the above-`m` workload still open.
    pub fn f_up(&self, m: usize, lattice: &Lattice) -> f64 {
        let denom = self.c_up[m];
        if denom <= 0.0 {
            0.0
        } else {
            lattice.c_up_left(m) / denom
        }
    }

    /// TSF of level `m` per Definition 3.
    ///
    /// `p_up` and `p_down` are the pruning probabilities for this
    /// level (learned or prior). The boundary cases drop the term
    /// that cannot apply (`m = 1` has no subsets worth pruning,
    /// `m = d` no supersets).
    pub fn tsf(&self, m: usize, p_up: f64, p_down: f64, lattice: &Lattice) -> f64 {
        debug_assert!((1..=self.d).contains(&m));
        debug_assert!((0.0..=1.0).contains(&p_up) && (0.0..=1.0).contains(&p_down));
        let up_term = p_up * self.f_up(m, lattice) * self.usf[m];
        let down_term = p_down * self.f_down(m, lattice) * self.dsf[m];
        if self.d == 1 {
            // Degenerate 1-dimensional space: single subspace, no savings.
            0.0
        } else if m == 1 {
            up_term
        } else if m == self.d {
            down_term
        } else {
            down_term + up_term
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::Subspace;

    #[test]
    fn fresh_lattice_fractions_are_one() {
        let d = 6;
        let t = TsfComputer::new(d);
        let l = Lattice::new(d);
        for m in 2..=d {
            assert!((t.f_down(m, &l) - 1.0).abs() < 1e-12, "m={m}");
        }
        for m in 1..d {
            assert!((t.f_up(m, &l) - 1.0).abs() < 1e-12, "m={m}");
        }
        // Undefined denominators are clamped to zero.
        assert_eq!(t.f_down(1, &l), 0.0);
        assert_eq!(t.f_up(d, &l), 0.0);
    }

    #[test]
    fn fractions_shrink_as_lattice_closes() {
        let d = 5;
        let t = TsfComputer::new(d);
        let mut l = Lattice::new(d);
        let before = t.f_up(1, &l);
        l.prune_up(Subspace::from_dims(&[0]));
        let after = t.f_up(1, &l);
        assert!(after < before);
        assert!(after >= 0.0);
    }

    #[test]
    fn tsf_boundary_levels_use_single_terms() {
        let d = 5;
        let t = TsfComputer::new(d);
        let l = Lattice::new(d);
        // m = 1 ignores p_down entirely.
        let a = t.tsf(1, 0.5, 0.0, &l);
        let b = t.tsf(1, 0.5, 1.0, &l);
        assert_eq!(a, b);
        assert!(a > 0.0);
        // m = d ignores p_up entirely.
        let c = t.tsf(d, 0.0, 0.5, &l);
        let e = t.tsf(d, 1.0, 0.5, &l);
        assert_eq!(c, e);
        assert!(c > 0.0);
    }

    #[test]
    fn tsf_zero_probabilities_zero_saving() {
        let d = 4;
        let t = TsfComputer::new(d);
        let l = Lattice::new(d);
        for m in 1..=d {
            assert_eq!(t.tsf(m, 0.0, 0.0, &l), 0.0);
        }
    }

    #[test]
    fn middle_levels_combine_both_terms() {
        let d = 6;
        let t = TsfComputer::new(d);
        let l = Lattice::new(d);
        let m = 3;
        let both = t.tsf(m, 0.5, 0.5, &l);
        let up_only = t.tsf(m, 0.5, 0.0, &l);
        let down_only = t.tsf(m, 0.0, 0.5, &l);
        assert!((both - (up_only + down_only)).abs() < 1e-9);
        assert!(up_only > 0.0 && down_only > 0.0);
    }

    #[test]
    fn one_dimensional_space_has_no_savings() {
        let t = TsfComputer::new(1);
        let l = Lattice::new(1);
        assert_eq!(t.tsf(1, 1.0, 1.0, &l), 0.0);
    }

    #[test]
    fn static_factor_accessors() {
        let t = TsfComputer::new(4);
        assert_eq!(t.dim(), 4);
        assert_eq!(t.dsf_at(3), 9.0);
        assert_eq!(t.usf_at(2), 10.0);
    }
}
