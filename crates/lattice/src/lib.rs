//! # hos-lattice
//!
//! Subspace-lattice machinery for HOS-Miner's dynamic search:
//!
//! * [`combinatorics`] — binomial coefficients and the closed-form
//!   Downward/Upward Saving Factors of the paper's Definitions 1–2.
//! * [`lattice`] — a materialised state table over all `2^d - 1`
//!   non-empty subspaces with per-level remaining-work counters and
//!   the two pruning closures (Property 1 and 2 of OD).
//! * [`savings`] — the Total Saving Factor (Definition 3), combining
//!   the static DSF/USF with the live `f_down`/`f_up` fractions and
//!   the learned pruning probabilities.

pub mod combinatorics;
pub mod lattice;
pub mod savings;

pub use combinatorics::{binomial, dsf, usf};
pub use lattice::{Lattice, SubspaceState};
pub use savings::TsfComputer;
