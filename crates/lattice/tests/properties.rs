//! Property tests for the lattice state machine: the pruning closures
//! must agree with brute-force set enumeration, and the bookkeeping
//! counters must stay consistent under arbitrary operation sequences.

use hos_data::Subspace;
use hos_lattice::{binomial, Lattice, SubspaceState, TsfComputer};
use proptest::prelude::*;

const D: usize = 7;

#[derive(Clone, Debug)]
enum Op {
    Evaluate(u64),
    PruneUp(u64),
    PruneDown(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (1u64..(1 << D), 0u8..3).prop_map(|(mask, kind)| match kind {
        0 => Op::Evaluate(mask),
        1 => Op::PruneUp(mask),
        _ => Op::PruneDown(mask),
    })
}

/// Reference model: plain per-subspace state vector updated by brute
/// force enumeration of all 2^D masks.
#[derive(Clone)]
struct Model {
    states: Vec<SubspaceState>,
}

impl Model {
    fn new() -> Self {
        Model {
            states: vec![SubspaceState::Unevaluated; 1 << D],
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Evaluate(m) => {
                if self.states[m as usize] == SubspaceState::Unevaluated {
                    self.states[m as usize] = SubspaceState::Evaluated;
                }
            }
            Op::PruneUp(m) => {
                for x in 1..(1u64 << D) {
                    if x != m
                        && (x & m) == m
                        && self.states[x as usize] == SubspaceState::Unevaluated
                    {
                        self.states[x as usize] = SubspaceState::PrunedOutlier;
                    }
                }
            }
            Op::PruneDown(m) => {
                for x in 1..(1u64 << D) {
                    if x != m
                        && (x | m) == m
                        && self.states[x as usize] == SubspaceState::Unevaluated
                    {
                        self.states[x as usize] = SubspaceState::PrunedNonOutlier;
                    }
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn lattice_matches_brute_force_model(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut lattice = Lattice::new(D);
        let mut model = Model::new();
        for op in &ops {
            match *op {
                Op::Evaluate(m) => {
                    let s = Subspace::from_mask(m);
                    if lattice.state(s) == SubspaceState::Unevaluated {
                        lattice.mark_evaluated(s);
                    }
                }
                Op::PruneUp(m) => {
                    lattice.prune_up(Subspace::from_mask(m));
                }
                Op::PruneDown(m) => {
                    lattice.prune_down(Subspace::from_mask(m));
                }
            }
            model.apply(op);
        }
        // Every subspace's state agrees with the model.
        let mut remaining_per_level = [0u64; D + 1];
        for mask in 1u64..(1 << D) {
            let s = Subspace::from_mask(mask);
            prop_assert_eq!(lattice.state(s), model.states[mask as usize], "mask {}", mask);
            if model.states[mask as usize] == SubspaceState::Unevaluated {
                remaining_per_level[s.dim()] += 1;
            }
        }
        // Per-level counters agree with recounting.
        for (m, &expected) in remaining_per_level.iter().enumerate().skip(1) {
            prop_assert_eq!(lattice.remaining_at(m), expected);
        }
        // Counter totals partition the lattice.
        let c = lattice.counters();
        prop_assert_eq!(
            c.evaluated + c.pruned_outlier + c.pruned_non_outlier + lattice.total_remaining(),
            (1u64 << D) - 1
        );
    }

    #[test]
    fn c_left_matches_definition(ops in prop::collection::vec(arb_op(), 1..25),
                                 level in 1usize..=D) {
        let mut lattice = Lattice::new(D);
        for op in &ops {
            match *op {
                Op::Evaluate(m) => {
                    let s = Subspace::from_mask(m);
                    if lattice.state(s) == SubspaceState::Unevaluated {
                        lattice.mark_evaluated(s);
                    }
                }
                Op::PruneUp(m) => { lattice.prune_up(Subspace::from_mask(m)); }
                Op::PruneDown(m) => { lattice.prune_down(Subspace::from_mask(m)); }
            }
        }
        // C_down_left(m) = Σ dim(s) over open subspaces below level m
        // (paper §3.1), recomputed by brute force.
        let mut down = 0.0;
        let mut up = 0.0;
        for mask in 1u64..(1 << D) {
            let s = Subspace::from_mask(mask);
            if lattice.state(s) == SubspaceState::Unevaluated {
                if s.dim() < level {
                    down += s.dim() as f64;
                }
                if s.dim() > level {
                    up += s.dim() as f64;
                }
            }
        }
        prop_assert_eq!(lattice.c_down_left(level), down);
        prop_assert_eq!(lattice.c_up_left(level), up);
    }

    #[test]
    fn tsf_bounded_by_static_factors(ops in prop::collection::vec(arb_op(), 0..20),
                                     p_up in 0.0f64..1.0, p_down in 0.0f64..1.0) {
        let mut lattice = Lattice::new(D);
        for op in &ops {
            match *op {
                Op::Evaluate(m) => {
                    let s = Subspace::from_mask(m);
                    if lattice.state(s) == SubspaceState::Unevaluated {
                        lattice.mark_evaluated(s);
                    }
                }
                Op::PruneUp(m) => { lattice.prune_up(Subspace::from_mask(m)); }
                Op::PruneDown(m) => { lattice.prune_down(Subspace::from_mask(m)); }
            }
        }
        let tsf = TsfComputer::new(D);
        for m in 1..=D {
            let v = tsf.tsf(m, p_up, p_down, &lattice);
            // f_down, f_up ∈ [0,1] and probabilities ∈ [0,1], so TSF is
            // bounded by DSF(m) + USF(m).
            prop_assert!(v >= 0.0);
            prop_assert!(v <= tsf.dsf_at(m) + tsf.usf_at(m) + 1e-9,
                "TSF({m}) = {v} exceeds static bound");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&tsf.f_down(m, &lattice)));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&tsf.f_up(m, &lattice)));
        }
    }

    #[test]
    fn open_at_level_consistent(masks in prop::collection::vec(1u64..(1 << D), 0..10),
                                level in 1usize..=D) {
        let mut lattice = Lattice::new(D);
        for &m in &masks {
            lattice.prune_up(Subspace::from_mask(m));
        }
        let open = lattice.open_at_level(level);
        prop_assert_eq!(open.len() as u64, lattice.remaining_at(level));
        for s in &open {
            prop_assert_eq!(s.dim(), level);
            prop_assert_eq!(lattice.state(*s), SubspaceState::Unevaluated);
        }
        // Total binomial sanity.
        prop_assert!(open.len() as f64 <= binomial(D, level));
    }
}
