//! Local Outlier Factor (Breunig, Kriegel, Ng, Sander — SIGMOD 2000),
//! the paper's reference \[3\].
//!
//! LOF is a *full-space* (or fixed-subspace) density-based detector:
//! it scores each point by how much sparser its neighbourhood is than
//! its neighbours' neighbourhoods. Included as context baseline for
//! experiment E10 — it answers "which points are outliers", not "in
//! which subspaces", which is exactly the contrast the HOS-Miner paper
//! draws.

use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;

/// LOF scores for every dataset point in a given subspace.
///
/// `min_pts` is the classic `MinPts` parameter (neighbourhood size).
/// Scores near 1 mean inlier; substantially above 1 mean outlier.
///
/// # Panics
/// Panics if `min_pts == 0` or the dataset has fewer than
/// `min_pts + 1` points.
pub fn lof_scores(engine: &dyn KnnEngine, min_pts: usize, s: Subspace) -> Vec<f64> {
    assert!(min_pts > 0, "min_pts must be positive");
    let ds = engine.dataset();
    let n = ds.len();
    assert!(n > min_pts, "need more than min_pts points");

    // k-distance and neighbourhood of every point.
    let mut kdist = Vec::with_capacity(n);
    let mut neighbors: Vec<Vec<(PointId, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let nn = engine.knn(ds.row(i), min_pts, s, Some(i));
        kdist.push(nn.last().map(|x| x.dist).unwrap_or(0.0));
        neighbors.push(nn.into_iter().map(|x| (x.id, x.dist)).collect());
    }

    // Local reachability density.
    let mut lrd = vec![0.0f64; n];
    for i in 0..n {
        let sum: f64 = neighbors[i]
            .iter()
            .map(|&(j, dist)| dist.max(kdist[j])) // reach-dist_k(i, j)
            .sum();
        let avg = sum / neighbors[i].len() as f64;
        // Duplicate-heavy data can give zero reachability; treat the
        // density as infinite and let the ratio below handle it.
        lrd[i] = if avg > 0.0 { 1.0 / avg } else { f64::INFINITY };
    }

    // LOF = average ratio of neighbour densities to own density.
    (0..n)
        .map(|i| {
            if lrd[i].is_infinite() {
                // A point in a perfect duplicate cluster: by
                // convention LOF = 1 (pure inlier).
                return 1.0;
            }
            let sum: f64 = neighbors[i]
                .iter()
                .map(|&(j, _)| {
                    if lrd[j].is_infinite() {
                        f64::INFINITY
                    } else {
                        lrd[j] / lrd[i]
                    }
                })
                .sum();
            if sum.is_infinite() {
                f64::INFINITY
            } else {
                sum / neighbors[i].len() as f64
            }
        })
        .collect()
}

/// Ids of the `top_n` highest-LOF points, descending by score.
pub fn top_lof(
    engine: &dyn KnnEngine,
    min_pts: usize,
    s: Subspace,
    top_n: usize,
) -> Vec<(PointId, f64)> {
    let scores = lof_scores(engine, min_pts, s);
    let mut ranked: Vec<(PointId, f64)> = scores.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite or inf")
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(top_n);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine_with_outlier() -> LinearScan {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        rows.push(vec![8.0, 8.0]); // clear outlier, id 100
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn outlier_scores_highest() {
        let e = engine_with_outlier();
        let top = top_lof(&e, 10, Subspace::full(2), 1);
        assert_eq!(top[0].0, 100);
        assert!(top[0].1 > 2.0, "outlier LOF {}", top[0].1);
    }

    #[test]
    fn inliers_score_near_one() {
        let e = engine_with_outlier();
        let scores = lof_scores(&e, 10, Subspace::full(2));
        let inlier_avg: f64 = scores[..100].iter().sum::<f64>() / 100.0;
        assert!(
            (inlier_avg - 1.0).abs() < 0.25,
            "avg inlier LOF {inlier_avg}"
        );
    }

    #[test]
    fn subspace_restriction_changes_scores() {
        // Outlying only along dim 0: restricting to dim 1 hides it.
        // Dim-1 values use exactly representable steps (0.125) so the
        // query coincides with duplicates instead of landing 1 ulp off.
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64 * 0.01, (i % 6) as f64 * 0.125])
            .collect();
        rows.push(vec![5.0, 0.375]);
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let with = lof_scores(&e, 8, Subspace::from_dims(&[0]));
        let without = lof_scores(&e, 8, Subspace::from_dims(&[1]));
        assert!(with[60] > 3.0, "dim-0 LOF {}", with[60]);
        assert!(without[60] < 2.0, "dim-1 LOF {}", without[60]);
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0, 1.0]).collect();
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let scores = lof_scores(&e, 3, Subspace::full(2));
        assert!(
            scores.iter().all(|&v| v == 1.0),
            "duplicate cluster LOF {scores:?}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_min_pts_rejected() {
        let e = engine_with_outlier();
        let _ = lof_scores(&e, 0, Subspace::full(2));
    }
}
