//! LOCI — Local Correlation Integral (Papadimitriou, Kitagawa,
//! Gibbons, Faloutsos — ICDE 2003), the HOS-Miner paper's
//! reference \[7\].
//!
//! LOCI flags a point whose *multi-granularity deviation factor*
//! (MDEF) is anomalously large at some radius `r`:
//!
//! ```text
//! MDEF(p, r, α)   = 1 - n(p, α·r) / n̂(p, r, α)
//! σ_MDEF(p, r, α) = σ_n̂(p, r, α) / n̂(p, r, α)
//! ```
//!
//! where `n(p, αr)` counts the `αr`-neighbourhood of `p`, and
//! `n̂`/`σ_n̂` are the mean/deviation of that count over all points in
//! the `r`-neighbourhood of `p`. A point is an outlier when
//! `MDEF > k_σ · σ_MDEF` (the paper fixes `k_σ = 3`).
//!
//! This is the exact (non-approximate) LOCI; radii are swept over a
//! set of data-driven scales rather than every pairwise distance,
//! which preserves the detector's behaviour at workload sizes used
//! here while keeping the cost near `O(n² · |radii|)`.

use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;

/// LOCI parameters.
#[derive(Clone, Copy, Debug)]
pub struct LociConfig {
    /// Sampling-to-counting radius ratio (paper: 0.5).
    pub alpha: f64,
    /// Deviation multiplier for flagging (paper: 3.0).
    pub k_sigma: f64,
    /// Number of radius scales to sweep.
    pub n_radii: usize,
}

impl Default for LociConfig {
    fn default() -> Self {
        LociConfig {
            alpha: 0.5,
            k_sigma: 3.0,
            n_radii: 8,
        }
    }
}

/// Per-point LOCI verdict: the worst (largest) MDEF excess observed
/// over the radius sweep.
#[derive(Clone, Copy, Debug)]
pub struct LociScore {
    /// `max_r (MDEF - k_sigma * sigma_MDEF)`; positive = outlier.
    pub excess: f64,
    /// The radius at which the worst excess occurred.
    pub radius: f64,
}

/// Runs exact LOCI over every dataset point in subspace `s`.
///
/// Radii are geometric steps between the 5th and 95th percentile of a
/// sample of pairwise distances in `s`.
///
/// # Panics
/// Panics on invalid config or an empty dataset.
pub fn loci_scores(engine: &dyn KnnEngine, s: Subspace, cfg: LociConfig) -> Vec<LociScore> {
    assert!(cfg.alpha > 0.0 && cfg.alpha < 1.0, "alpha must be in (0,1)");
    assert!(cfg.k_sigma > 0.0, "k_sigma must be positive");
    assert!(cfg.n_radii >= 1, "need at least one radius");
    let ds = engine.dataset();
    let n = ds.len();
    assert!(n >= 2, "LOCI needs at least two points");
    let metric = engine.metric();

    // Radius scale from sampled pairwise distances.
    let mut sample_d: Vec<f64> = Vec::new();
    let step = (n / 64).max(1);
    for i in (0..n).step_by(step) {
        for j in (i + 1..n).step_by(step * 3 + 1) {
            sample_d.push(metric.dist_sub(ds.row(i), ds.row(j), s));
        }
    }
    sample_d.retain(|d| *d > 0.0);
    if sample_d.is_empty() {
        // All points coincide in this subspace: nothing is an outlier.
        return vec![
            LociScore {
                excess: f64::NEG_INFINITY,
                radius: 0.0
            };
            n
        ];
    }
    sample_d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lo = hos_data::stats::quantile_sorted(&sample_d, 0.05).expect("non-empty");
    // Sweep all the way to the largest observed distance: an isolated
    // point only acquires a usable sampling neighbourhood (and thus an
    // MDEF) once the radius reaches its nearest cluster.
    let hi = *sample_d.last().expect("non-empty");
    let lo = lo.max(hi * 1e-3);
    let radii: Vec<f64> = (0..cfg.n_radii)
        .map(|i| lo * (hi / lo).powf(i as f64 / (cfg.n_radii - 1).max(1) as f64))
        .collect();

    let mut best = vec![
        LociScore {
            excess: f64::NEG_INFINITY,
            radius: 0.0
        };
        n
    ];
    // Pre-compute counting-neighbourhood sizes n(p, αr) per radius.
    for &r in &radii {
        let alpha_r = cfg.alpha * r;
        let counts: Vec<f64> = (0..n)
            .map(|i| engine.range(ds.row(i), alpha_r, s, None).len() as f64)
            .collect();
        for i in 0..n {
            let sampling: Vec<PointId> = engine
                .range(ds.row(i), r, s, None)
                .iter()
                .map(|nb| nb.id)
                .collect();
            if sampling.len() < 2 {
                continue;
            }
            let vals: Vec<f64> = sampling.iter().map(|&j| counts[j]).collect();
            let mean = hos_data::stats::mean(&vals);
            if mean <= 0.0 {
                continue;
            }
            let sd = hos_data::stats::std_dev(&vals);
            let mdef = 1.0 - counts[i] / mean;
            let sigma_mdef = sd / mean;
            let excess = mdef - cfg.k_sigma * sigma_mdef;
            if excess > best[i].excess {
                best[i] = LociScore { excess, radius: r };
            }
        }
    }
    best
}

/// Ids whose LOCI excess is positive (flagged outliers), ascending.
pub fn loci_outliers(engine: &dyn KnnEngine, s: Subspace, cfg: LociConfig) -> Vec<PointId> {
    loci_scores(engine, s, cfg)
        .iter()
        .enumerate()
        .filter(|(_, sc)| sc.excess > 0.0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine_with_outlier() -> LinearScan {
        let mut rng = StdRng::seed_from_u64(10);
        let mut rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        rows.push(vec![6.0, 6.0]); // id 200
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn flags_planted_outlier() {
        let e = engine_with_outlier();
        let out = loci_outliers(&e, Subspace::full(2), LociConfig::default());
        assert!(
            out.contains(&200),
            "LOCI missed the planted outlier: {out:?}"
        );
        // Flagging should be selective: well under 10% of points.
        assert!(out.len() < 21, "LOCI flagged {} of 201 points", out.len());
    }

    #[test]
    fn uniform_data_mostly_clean() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let out = loci_outliers(&e, Subspace::full(2), LociConfig::default());
        assert!(out.len() <= 8, "too many false positives: {out:?}");
    }

    #[test]
    fn coincident_points_yield_no_outliers() {
        let rows: Vec<Vec<f64>> = (0..20).map(|_| vec![3.0, 3.0]).collect();
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let out = loci_outliers(&e, Subspace::full(2), LociConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn subspace_restriction() {
        // Outlying only along dim 0.
        let mut rng = StdRng::seed_from_u64(9);
        let mut rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        rows.push(vec![8.0, 0.5]);
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        let with = loci_outliers(&e, Subspace::from_dims(&[0]), LociConfig::default());
        let without = loci_outliers(&e, Subspace::from_dims(&[1]), LociConfig::default());
        assert!(with.contains(&200));
        assert!(!without.contains(&200));
    }

    #[test]
    fn score_metadata() {
        let e = engine_with_outlier();
        let scores = loci_scores(&e, Subspace::full(2), LociConfig::default());
        assert_eq!(scores.len(), 201);
        let sc = scores[200];
        assert!(sc.excess > 0.0);
        assert!(sc.radius > 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_rejected() {
        let e = engine_with_outlier();
        let _ = loci_scores(
            &e,
            Subspace::full(2),
            LociConfig {
                alpha: 1.5,
                ..LociConfig::default()
            },
        );
    }
}
