//! Distance-based DB(pct, dmin) outliers (Knorr & Ng — VLDB 1998),
//! the paper's reference \[5\].
//!
//! A point `O` is a DB(pct, dmin)-outlier if at least `pct` of the
//! other points lie farther than `dmin` from it — equivalently, fewer
//! than `(1 - pct) · (N - 1)` points lie within `dmin`. The earliest
//! formal distance-based outlier definition; a context baseline for
//! experiment E10.

use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;

/// Whether one point is a DB(pct, dmin)-outlier in subspace `s`.
pub fn is_db_outlier(
    engine: &dyn KnnEngine,
    id: PointId,
    pct: f64,
    dmin: f64,
    s: Subspace,
) -> bool {
    assert!((0.0..=1.0).contains(&pct), "pct must be in [0,1]");
    assert!(dmin >= 0.0, "dmin must be non-negative");
    let ds = engine.dataset();
    let others = (ds.len() - 1) as f64;
    if others <= 0.0 {
        return false;
    }
    let within = engine.range(ds.row(id), dmin, s, Some(id)).len() as f64;
    // "at least pct of objects lie farther than dmin"
    (others - within) / others >= pct
}

/// All DB(pct, dmin)-outliers of the dataset in subspace `s`.
pub fn db_outliers(engine: &dyn KnnEngine, pct: f64, dmin: f64, s: Subspace) -> Vec<PointId> {
    (0..engine.dataset().len())
        .filter(|&id| is_db_outlier(engine, id, pct, dmin, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> LinearScan {
        let mut rng = StdRng::seed_from_u64(14);
        let mut rows: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        rows.push(vec![50.0, 50.0]); // id 120
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn planted_point_is_the_only_outlier() {
        let e = engine();
        let out = db_outliers(&e, 0.99, 2.0, Subspace::full(2));
        assert_eq!(out, vec![120]);
    }

    #[test]
    fn dmin_widening_removes_outliers() {
        let e = engine();
        assert!(is_db_outlier(&e, 120, 0.99, 2.0, Subspace::full(2)));
        assert!(!is_db_outlier(&e, 120, 0.99, 1000.0, Subspace::full(2)));
    }

    #[test]
    fn pct_zero_marks_everything() {
        let e = engine();
        let out = db_outliers(&e, 0.0, 0.5, Subspace::full(2));
        assert_eq!(out.len(), e.dataset().len());
    }

    #[test]
    fn subspace_restriction() {
        // Outlying along dim 0 only.
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64 * 0.02, (i % 7) as f64 * 0.1])
            .collect();
        rows.push(vec![30.0, 0.3]);
        let e = LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2);
        assert!(is_db_outlier(&e, 50, 0.95, 1.0, Subspace::from_dims(&[0])));
        assert!(!is_db_outlier(&e, 50, 0.95, 1.0, Subspace::from_dims(&[1])));
    }

    #[test]
    fn single_point_dataset() {
        let e = LinearScan::new(Dataset::from_rows(&[vec![1.0]]).unwrap(), Metric::L2);
        assert!(!is_db_outlier(&e, 0, 0.9, 1.0, Subspace::full(1)));
    }

    #[test]
    #[should_panic]
    fn invalid_pct_rejected() {
        let e = engine();
        let _ = is_db_outlier(&e, 0, 1.5, 1.0, Subspace::full(2));
    }
}
