//! Top-n kth-NN-distance outliers (Ramaswamy, Rastogi, Shim — SIGMOD
//! 2000), the paper's reference \[8\].
//!
//! Score of a point = distance to its kth nearest neighbour; the n
//! highest-scoring points are declared outliers. Like LOF this is a
//! fixed-space detector, used as context in experiment E10. Its score
//! is also the closest classical relative of HOS-Miner's OD (which
//! sums the first k distances instead of taking the kth).

use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;

/// kth-NN distance of every dataset point in subspace `s`.
pub fn knn_scores(engine: &dyn KnnEngine, k: usize, s: Subspace) -> Vec<f64> {
    assert!(k > 0, "k must be positive");
    let ds = engine.dataset();
    (0..ds.len())
        .map(|i| {
            engine
                .knn(ds.row(i), k, s, Some(i))
                .last()
                .map(|n| n.dist)
                .unwrap_or(0.0)
        })
        .collect()
}

/// The `n` points with the largest kth-NN distance, descending.
pub fn top_knn_outliers(
    engine: &dyn KnnEngine,
    k: usize,
    s: Subspace,
    n: usize,
) -> Vec<(PointId, f64)> {
    let scores = knn_scores(engine, k, s);
    let mut ranked: Vec<(PointId, f64)> = scores.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    ranked.truncate(n);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> LinearScan {
        let mut rng = StdRng::seed_from_u64(6);
        let mut rows: Vec<Vec<f64>> = (0..80)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        rows.push(vec![9.0, 9.0]); // id 80
        rows.push(vec![-7.0, 4.0]); // id 81
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn planted_outliers_rank_top_two() {
        let e = engine();
        let top = top_knn_outliers(&e, 5, Subspace::full(2), 2);
        let ids: Vec<PointId> = top.iter().map(|t| t.0).collect();
        assert!(ids.contains(&80) && ids.contains(&81), "got {ids:?}");
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn scores_relate_to_od() {
        // OD sums the first k distances, so OD >= kth-NN distance and
        // OD <= k * kth-NN distance.
        let e = engine();
        let s = Subspace::full(2);
        let k = 5;
        let scores = knn_scores(&e, k, s);
        for (i, &kth) in scores.iter().enumerate().take(10) {
            let od = e.od(e.dataset().row(i), k, s, Some(i));
            assert!(od >= kth - 1e-12);
            assert!(od <= k as f64 * kth + 1e-12);
        }
    }

    #[test]
    fn truncation_and_ordering() {
        let e = engine();
        let top = top_knn_outliers(&e, 3, Subspace::full(2), 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let all = top_knn_outliers(&e, 3, Subspace::full(2), 10_000);
        assert_eq!(all.len(), e.dataset().len());
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let e = engine();
        let _ = knn_scores(&e, 0, Subspace::full(2));
    }
}
