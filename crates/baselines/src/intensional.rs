//! Intensional knowledge of distance-based outliers (Knorr & Ng —
//! VLDB 1999), the HOS-Miner paper's reference \[6\] and its named
//! example of a "space → outliers" technique: "\[6\] discovers the
//! so-called Strongest/Weak Outliers by first finding the Strongest
//! Outlying Spaces".
//!
//! Given the DB(pct, dmin) outlier predicate, the method explains
//! *where* outliers exist by structuring the subspace lattice:
//!
//! * a subspace is an **outlying space** if it contains at least one
//!   DB-outlier;
//! * the **strongest outlying spaces** are the minimal outlying spaces
//!   (no proper sub-subspace contains any outlier);
//! * a **strongest outlier** is a point that is an outlier in some
//!   strongest outlying space;
//! * a **weak outlier** is an outlier that only appears in
//!   non-minimal outlying spaces.
//!
//! The contrast with HOS-Miner: this inventory is computed for the
//! *space* lattice as a whole ("which spaces contain outliers, and
//! which points are they"), whereas HOS-Miner answers a per-*point*
//! question ("in which subspaces is this specific point outlying").
//! Both are exposed so the comparison is concrete.

use crate::db_outlier;
use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;
use std::collections::BTreeMap;

/// The computed intensional-knowledge inventory.
#[derive(Clone, Debug)]
pub struct IntensionalKnowledge {
    /// Every subspace that contains at least one outlier, with its
    /// outliers (keyed by mask for determinism).
    pub outlying_spaces: BTreeMap<u64, Vec<PointId>>,
    /// The minimal outlying spaces.
    pub strongest_spaces: Vec<Subspace>,
    /// Outliers of at least one strongest space, ascending.
    pub strongest_outliers: Vec<PointId>,
    /// Outliers appearing only in non-minimal spaces, ascending.
    pub weak_outliers: Vec<PointId>,
}

impl IntensionalKnowledge {
    /// The outliers recorded for one subspace, if it is outlying.
    pub fn outliers_in(&self, s: Subspace) -> Option<&[PointId]> {
        self.outlying_spaces.get(&s.mask()).map(Vec::as_slice)
    }
}

/// Computes the full inventory over every non-empty subspace of the
/// engine's dataset, using the DB(pct, dmin) predicate.
///
/// Exhaustive over `2^d - 1` subspaces — intended for the moderate
/// dimensionalities the original paper targeted (its evaluation used
/// d <= 5). HOS-Miner's pruning does not apply here because the
/// DB predicate is not monotone under subspace inclusion in general
/// (dmin is fixed while distances shrink with projection).
///
/// # Panics
/// Panics if `pct` is outside `[0,1]`, `dmin < 0`, or `d > 20`
/// (lattice-size guard).
pub fn intensional_knowledge(engine: &dyn KnnEngine, pct: f64, dmin: f64) -> IntensionalKnowledge {
    assert!((0.0..=1.0).contains(&pct), "pct must be in [0,1]");
    assert!(dmin >= 0.0, "dmin must be non-negative");
    let d = engine.dataset().dim();
    assert!(
        d <= 20,
        "exhaustive lattice sweep limited to d <= 20 (got {d})"
    );

    let mut outlying_spaces: BTreeMap<u64, Vec<PointId>> = BTreeMap::new();
    for s in Subspace::all_nonempty(d) {
        let outs = db_outlier::db_outliers(engine, pct, dmin, s);
        if !outs.is_empty() {
            outlying_spaces.insert(s.mask(), outs);
        }
    }

    // Minimal outlying spaces: no proper subset is outlying.
    let mut strongest_spaces: Vec<Subspace> = Vec::new();
    'outer: for &mask in outlying_spaces.keys() {
        let s = Subspace::from_mask(mask);
        for sub in s.strict_subsets() {
            if outlying_spaces.contains_key(&sub.mask()) {
                continue 'outer;
            }
        }
        strongest_spaces.push(s);
    }
    strongest_spaces.sort_by_key(|s| (s.dim(), s.mask()));

    let mut strongest: Vec<PointId> = strongest_spaces
        .iter()
        .flat_map(|s| outlying_spaces[&s.mask()].iter().copied())
        .collect();
    strongest.sort_unstable();
    strongest.dedup();

    let mut all: Vec<PointId> = outlying_spaces
        .values()
        .flat_map(|v| v.iter().copied())
        .collect();
    all.sort_unstable();
    all.dedup();
    let weak: Vec<PointId> = all
        .into_iter()
        .filter(|p| strongest.binary_search(p).is_err())
        .collect();

    IntensionalKnowledge {
        outlying_spaces,
        strongest_spaces,
        strongest_outliers: strongest,
        weak_outliers: weak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A cluster plus one point far away along dim 0 only and one far
    /// away along both dims 1 and 2 jointly.
    fn engine() -> LinearScan {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows: Vec<Vec<f64>> = (0..150)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        rows.push(vec![30.0, 0.5, 0.5]); // id 150: outlier in {0}
        rows.push(vec![0.5, 4.0, 4.0]); // id 151: outlier in {1,2}, marginally mild
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn inventory_identifies_strongest_spaces() {
        let e = engine();
        let ik = intensional_knowledge(&e, 0.97, 2.5);
        // Dim {0} must be a strongest space (point 150 is an outlier
        // there and no smaller space exists).
        let s0 = Subspace::from_dims(&[0]);
        assert!(
            ik.strongest_spaces.contains(&s0),
            "{:?}",
            ik.strongest_spaces
        );
        assert!(ik.outliers_in(s0).unwrap().contains(&150));
        // Strongest spaces are an antichain.
        for a in &ik.strongest_spaces {
            for b in &ik.strongest_spaces {
                if a != b {
                    assert!(!a.is_strict_subset_of(*b));
                }
            }
        }
        assert!(ik.strongest_outliers.contains(&150));
    }

    #[test]
    fn weak_outliers_disjoint_from_strongest() {
        let e = engine();
        let ik = intensional_knowledge(&e, 0.97, 2.5);
        for w in &ik.weak_outliers {
            assert!(!ik.strongest_outliers.contains(w));
        }
    }

    #[test]
    fn strongest_spaces_have_no_outlying_subsets() {
        let e = engine();
        let ik = intensional_knowledge(&e, 0.97, 2.5);
        for s in &ik.strongest_spaces {
            for sub in s.strict_subsets() {
                assert!(
                    ik.outliers_in(sub).is_none(),
                    "strongest space {s} has outlying subset {sub}"
                );
            }
        }
    }

    #[test]
    fn tight_dmin_marks_nothing() {
        let e = engine();
        let ik = intensional_knowledge(&e, 1.0, 1e6);
        assert!(ik.outlying_spaces.is_empty());
        assert!(ik.strongest_spaces.is_empty());
        assert!(ik.strongest_outliers.is_empty());
        assert!(ik.weak_outliers.is_empty());
    }

    #[test]
    #[should_panic]
    fn dimension_guard() {
        let ds = Dataset::from_flat(vec![0.0; 42], 21).unwrap();
        let e = LinearScan::new(ds, Metric::L2);
        let _ = intensional_knowledge(&e, 0.9, 1.0);
    }
}
