//! Aggarwal & Yu's evolutionary sparse-subspace outlier search
//! (SIGMOD 2000) — the comparison target named by the HOS-Miner demo.
//!
//! The method discretises every attribute into `phi` equi-depth
//! ranges. A candidate solution is a *cube*: `cube_dim` attributes
//! each pinned to one range (the remaining attributes are "don't
//! care", written `*`). The quality of a cube `C` with `n(C)` points
//! is its **sparsity coefficient**
//!
//! ```text
//! S(C) = (n(C) - N·f^k) / sqrt(N·f^k·(1 - f^k)),   f = 1/phi
//! ```
//!
//! — the number of standard deviations by which the cube's occupancy
//! falls below the expectation under attribute independence. Strongly
//! negative sparsity marks a subspace region whose few inhabitants
//! are outliers. A genetic algorithm (selection / crossover /
//! mutation over the cube strings) searches for the most negative
//! cubes, since exhaustive enumeration is infeasible.
//!
//! This is a faithful re-implementation from the published
//! description; the original code is not available. It is a
//! "space → outliers" method: it finds sparse regions first and calls
//! their occupants outliers — exactly the contrast HOS-Miner's
//! "outlier → spaces" formulation draws.

use hos_data::{stats, Dataset, Subspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Don't-care marker in a solution string.
const STAR: u8 = 0;

/// Genetic-search parameters.
#[derive(Clone, Debug)]
pub struct EvoConfig {
    /// Equi-depth ranges per attribute (`phi`).
    pub phi: usize,
    /// Cube dimensionality (`k` in the sparsity coefficient).
    pub cube_dim: usize,
    /// Population size.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Per-position mutation probability.
    pub mutation_p: f64,
    /// Crossover probability.
    pub crossover_p: f64,
    /// How many best cubes to report.
    pub best_m: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvoConfig {
    fn default() -> Self {
        EvoConfig {
            phi: 10,
            cube_dim: 3,
            population: 100,
            generations: 60,
            mutation_p: 0.15,
            crossover_p: 0.9,
            best_m: 10,
            seed: 0,
        }
    }
}

/// One discovered sparse cube.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseCube {
    /// Pinned attributes: `(dimension, range index)`.
    pub dims: Vec<(usize, usize)>,
    /// Sparsity coefficient (more negative = sparser).
    pub sparsity: f64,
    /// Number of points inside the cube.
    pub count: usize,
}

impl SparseCube {
    /// The subspace this cube pins.
    pub fn subspace(&self) -> Subspace {
        Subspace::from_dims(&self.dims.iter().map(|&(d, _)| d).collect::<Vec<_>>())
    }
}

/// The fitted discretisation plus GA state.
pub struct EvolutionarySearch {
    /// Equi-depth boundaries per dimension.
    boundaries: Vec<Vec<f64>>,
    /// Pre-computed bucket index of every value, row-major.
    buckets: Vec<u8>,
    n: usize,
    d: usize,
    cfg: EvoConfig,
}

impl EvolutionarySearch {
    /// Discretises the dataset (the φ-grid) and prepares the GA.
    ///
    /// # Panics
    /// Panics on empty data, `phi < 2`, `phi > 250`, or
    /// `cube_dim > d`.
    pub fn fit(ds: &Dataset, cfg: EvoConfig) -> Self {
        assert!(!ds.is_empty(), "dataset must be non-empty");
        assert!((2..=250).contains(&cfg.phi), "phi must be in 2..=250");
        assert!(
            cfg.cube_dim >= 1 && cfg.cube_dim <= ds.dim(),
            "cube_dim out of range"
        );
        assert!(cfg.population >= 4, "population too small");
        let d = ds.dim();
        let n = ds.len();
        let mut boundaries = Vec::with_capacity(d);
        for c in 0..d {
            let col = ds.column_vec(c);
            boundaries.push(stats::equi_depth_boundaries(&col, cfg.phi).expect("non-empty"));
        }
        let mut buckets = vec![0u8; n * d];
        for (i, row) in ds.iter() {
            for (c, &v) in row.iter().enumerate() {
                let b = stats::bucket_of(v, &boundaries[c]).min(cfg.phi - 1);
                buckets[i * d + c] = b as u8;
            }
        }
        EvolutionarySearch {
            boundaries,
            buckets,
            n,
            d,
            cfg,
        }
    }

    /// Bucket index of an arbitrary value in a dimension.
    pub fn bucket_of(&self, dim: usize, value: f64) -> usize {
        stats::bucket_of(value, &self.boundaries[dim]).min(self.cfg.phi - 1)
    }

    fn count_cube(&self, sol: &[u8]) -> usize {
        let pinned: Vec<(usize, u8)> = sol
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != STAR)
            .map(|(c, &v)| (c, v - 1))
            .collect();
        let mut count = 0;
        'outer: for i in 0..self.n {
            for &(c, b) in &pinned {
                if self.buckets[i * self.d + c] != b {
                    continue 'outer;
                }
            }
            count += 1;
        }
        count
    }

    /// Sparsity coefficient of a cube occupancy count.
    pub fn sparsity(&self, count: usize) -> f64 {
        let f = 1.0 / self.cfg.phi as f64;
        let fk = f.powi(self.cfg.cube_dim as i32);
        let n = self.n as f64;
        let expected = n * fk;
        let denom = (n * fk * (1.0 - fk)).sqrt();
        if denom <= 0.0 {
            0.0
        } else {
            (count as f64 - expected) / denom
        }
    }

    fn random_solution(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut sol = vec![STAR; self.d];
        let mut dims: Vec<usize> = (0..self.d).collect();
        for i in 0..self.cfg.cube_dim {
            let j = rng.gen_range(i..dims.len());
            dims.swap(i, j);
            sol[dims[i]] = rng.gen_range(1..=self.cfg.phi) as u8;
        }
        sol
    }

    /// Repairs a solution to have exactly `cube_dim` pinned positions.
    fn repair(&self, sol: &mut [u8], rng: &mut StdRng) {
        let mut pinned: Vec<usize> = (0..self.d).filter(|&c| sol[c] != STAR).collect();
        while pinned.len() > self.cfg.cube_dim {
            let i = rng.gen_range(0..pinned.len());
            sol[pinned.swap_remove(i)] = STAR;
        }
        while pinned.len() < self.cfg.cube_dim {
            let c = rng.gen_range(0..self.d);
            if sol[c] == STAR {
                sol[c] = rng.gen_range(1..=self.cfg.phi) as u8;
                pinned.push(c);
            }
        }
    }

    fn crossover(&self, a: &[u8], b: &[u8], rng: &mut StdRng) -> Vec<u8> {
        // Uniform crossover followed by cardinality repair — the
        // original's two-stage recombination has the same effect:
        // offspring inherit pinned positions from both parents.
        let mut child: Vec<u8> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect();
        self.repair(&mut child, rng);
        child
    }

    fn mutate(&self, sol: &mut [u8], rng: &mut StdRng) {
        for c in 0..self.d {
            if sol[c] != STAR && rng.gen_bool(self.cfg.mutation_p) {
                if rng.gen_bool(0.5) {
                    // Re-pin to a different range.
                    sol[c] = rng.gen_range(1..=self.cfg.phi) as u8;
                } else {
                    // Move the pin to another attribute.
                    let mut free: Vec<usize> = (0..self.d).filter(|&x| sol[x] == STAR).collect();
                    if !free.is_empty() {
                        let t = free.swap_remove(rng.gen_range(0..free.len()));
                        sol[t] = sol[c];
                        sol[c] = STAR;
                    }
                }
            }
        }
        self.repair(sol, rng);
    }

    /// Runs the genetic search and returns the `best_m` sparsest
    /// distinct **inhabited** cubes (most negative sparsity first).
    ///
    /// Empty cubes are sparser still, but the method's output is
    /// *outlier points* — the occupants of sparse cells — so a cube
    /// with no occupants carries no detection information and is
    /// dropped from the report (it still participates in the GA's
    /// evolution as a stepping stone).
    pub fn run(&self) -> Vec<SparseCube> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut cache: HashMap<Vec<u8>, usize> = HashMap::new();
        let fitness = |sol: &[u8], this: &Self, cache: &mut HashMap<Vec<u8>, usize>| -> f64 {
            let count = *cache
                .entry(sol.to_vec())
                .or_insert_with(|| this.count_cube(sol));
            this.sparsity(count)
        };

        let mut pop: Vec<Vec<u8>> = (0..self.cfg.population)
            .map(|_| self.random_solution(&mut rng))
            .collect();
        let mut best: Vec<(Vec<u8>, f64)> = Vec::new();

        for _gen in 0..self.cfg.generations {
            let scores: Vec<f64> = pop.iter().map(|s| fitness(s, self, &mut cache)).collect();
            // Track the global best set (inhabited cubes only — see
            // the method docs).
            for (sol, &sc) in pop.iter().zip(&scores) {
                let count = *cache.get(sol).expect("scored");
                if count > 0 && !best.iter().any(|(b, _)| b == sol) {
                    best.push((sol.clone(), sc));
                }
            }
            best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            best.truncate(self.cfg.best_m * 4);

            // Tournament selection (lower sparsity wins) + variation.
            let mut next = Vec::with_capacity(pop.len());
            // Elitism: carry the best individual forward unchanged.
            if let Some((elite, _)) = best.first() {
                next.push(elite.clone());
            }
            while next.len() < pop.len() {
                let pick = |rng: &mut StdRng| {
                    let i = rng.gen_range(0..pop.len());
                    let j = rng.gen_range(0..pop.len());
                    if scores[i] <= scores[j] {
                        i
                    } else {
                        j
                    }
                };
                let pa = pick(&mut rng);
                let pb = pick(&mut rng);
                let mut child = if rng.gen_bool(self.cfg.crossover_p) {
                    self.crossover(&pop[pa], &pop[pb], &mut rng)
                } else {
                    pop[pa].clone()
                };
                self.mutate(&mut child, &mut rng);
                next.push(child);
            }
            pop = next;
        }

        // Final resolve of the best list.
        best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        best.truncate(self.cfg.best_m);
        best.into_iter()
            .map(|(sol, sparsity)| {
                let count = *cache.get(&sol).expect("scored");
                let dims: Vec<(usize, usize)> = sol
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != STAR)
                    .map(|(c, &v)| (c, (v - 1) as usize))
                    .collect();
                SparseCube {
                    dims,
                    sparsity,
                    count,
                }
            })
            .collect()
    }

    /// Whether a point (by coordinates) lies inside a cube.
    pub fn cube_contains(&self, cube: &SparseCube, row: &[f64]) -> bool {
        cube.dims
            .iter()
            .all(|&(dim, bucket)| self.bucket_of(dim, row[dim]) == bucket)
    }

    /// The "outlier → spaces" adapter used for the comparison: the
    /// subspaces of the discovered sparse cubes that contain the given
    /// point. This is how the evolutionary method's output answers
    /// the outlying-subspace question HOS-Miner poses.
    pub fn outlying_subspaces_of(&self, cubes: &[SparseCube], row: &[f64]) -> Vec<Subspace> {
        let mut out: Vec<Subspace> = cubes
            .iter()
            .filter(|c| self.cube_contains(c, row))
            .map(|c| c.subspace())
            .collect();
        out.sort_by_key(|s| s.mask());
        out.dedup();
        out
    }
}

/// Convenience one-shot: fit + run.
pub fn evolutionary_search(ds: &Dataset, cfg: EvoConfig) -> Vec<SparseCube> {
    EvolutionarySearch::fit(ds, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Uniform background with one planted empty region: dims (0,1)
    /// correlated so that the anti-diagonal corner cell is empty
    /// except for a single planted outlier.
    fn workload() -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(8);
        let mut rows = Vec::new();
        for _ in 0..600 {
            let x: f64 = rng.gen_range(0.0..1.0);
            // y tracks x: the (high x, low y) corner stays empty.
            let y = (x + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0);
            let z: f64 = rng.gen_range(0.0..1.0);
            let w: f64 = rng.gen_range(0.0..1.0);
            rows.push(vec![x, y, z, w]);
        }
        let outlier = vec![0.97, 0.03, 0.5, 0.5];
        rows.push(outlier.clone());
        (Dataset::from_rows(&rows).unwrap(), outlier)
    }

    fn small_cfg() -> EvoConfig {
        EvoConfig {
            phi: 4,
            cube_dim: 2,
            population: 60,
            generations: 40,
            best_m: 8,
            seed: 3,
            ..EvoConfig::default()
        }
    }

    #[test]
    fn sparsity_coefficient_matches_formula() {
        let (ds, _) = workload();
        let es = EvolutionarySearch::fit(&ds, small_cfg());
        let n = ds.len() as f64;
        let fk = 0.25f64.powi(2);
        let expected = (10.0 - n * fk) / (n * fk * (1.0 - fk)).sqrt();
        assert!((es.sparsity(10) - expected).abs() < 1e-12);
        // Empty cube is the sparsest possible.
        assert!(es.sparsity(0) < es.sparsity(10));
    }

    #[test]
    fn finds_the_planted_sparse_corner() {
        let (ds, outlier) = workload();
        let es = EvolutionarySearch::fit(&ds, small_cfg());
        let cubes = es.run();
        assert!(!cubes.is_empty());
        // The best cubes must be genuinely sparse.
        assert!(
            cubes[0].sparsity < 0.0,
            "best sparsity {}",
            cubes[0].sparsity
        );
        // Results are sorted ascending by sparsity.
        for w in cubes.windows(2) {
            assert!(w[0].sparsity <= w[1].sparsity);
        }
        // The planted outlier's corner cube involves dims {0,1}; the GA
        // should discover at least one sparse cube on those dims, and
        // the subspace adapter should attribute it to the outlier.
        let subspaces = es.outlying_subspaces_of(&cubes, &outlier);
        let target = Subspace::from_dims(&[0, 1]);
        assert!(
            subspaces.contains(&target),
            "GA missed the planted corner; found {subspaces:?}"
        );
    }

    #[test]
    fn cube_membership() {
        let (ds, outlier) = workload();
        let es = EvolutionarySearch::fit(&ds, small_cfg());
        let cube = SparseCube {
            dims: vec![
                (0, es.bucket_of(0, outlier[0])),
                (1, es.bucket_of(1, outlier[1])),
            ],
            sparsity: -1.0,
            count: 1,
        };
        assert!(es.cube_contains(&cube, &outlier));
        assert!(!es.cube_contains(&cube, &[0.0, 0.97, 0.5, 0.5]));
        assert_eq!(cube.subspace(), Subspace::from_dims(&[0, 1]));
    }

    #[test]
    fn solutions_always_have_exact_cardinality() {
        let (ds, _) = workload();
        let es = EvolutionarySearch::fit(&ds, small_cfg());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = es.random_solution(&mut rng);
            let b = es.random_solution(&mut rng);
            assert_eq!(a.iter().filter(|&&v| v != STAR).count(), 2);
            let child = es.crossover(&a, &b, &mut rng);
            assert_eq!(child.iter().filter(|&&v| v != STAR).count(), 2);
            let mut m = child.clone();
            es.mutate(&mut m, &mut rng);
            assert_eq!(m.iter().filter(|&&v| v != STAR).count(), 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (ds, _) = workload();
        let a = evolutionary_search(&ds, small_cfg());
        let b = evolutionary_search(&ds, small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_cube_dim() {
        let (ds, _) = workload();
        let cfg = EvoConfig {
            cube_dim: 10,
            ..small_cfg()
        };
        let _ = EvolutionarySearch::fit(&ds, cfg);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_phi() {
        let (ds, _) = workload();
        let cfg = EvoConfig {
            phi: 1,
            ..small_cfg()
        };
        let _ = EvolutionarySearch::fit(&ds, cfg);
    }
}
