//! # hos-baselines
//!
//! Every comparator the paper's demo plan (part 3) and introduction
//! reference, implemented from their original descriptions:
//!
//! * [`exhaustive`] — brute-force lattice evaluation plus
//!   single-direction pruning ablations. Doubles as the **exact
//!   ground-truth oracle** for effectiveness experiments.
//! * [`evolutionary`] — Aggarwal & Yu's evolutionary sparse-subspace
//!   outlier search (SIGMOD'00, the paper's reference \[1\] and the
//!   comparison target of the demo).
//! * [`lof`] — Local Outlier Factor (reference \[3\]); `top_lof` also
//!   covers Jin et al.'s top-n local outliers (reference \[4\]).
//! * [`knn_outlier`] — Ramaswamy et al.'s top-n kth-NN-distance
//!   outliers (reference \[8\]).
//! * [`db_outlier`] — Knorr & Ng's distance-based DB(pct, dmin)
//!   outliers (reference \[5\]).
//! * [`intensional`] — Knorr & Ng's intensional knowledge: strongest
//!   outlying spaces, strongest/weak outliers (reference \[6\], the
//!   paper's named "space → outliers" contrast).
//! * [`loci`] — LOCI, the Local Correlation Integral detector
//!   (reference \[7\]).

pub mod db_outlier;
pub mod evolutionary;
pub mod exhaustive;
pub mod intensional;
pub mod knn_outlier;
pub mod loci;
pub mod lof;

pub use evolutionary::{evolutionary_search, EvoConfig, SparseCube};
pub use exhaustive::{exhaustive_search, ExhaustiveMode};
