//! Exhaustive and statically-pruned lattice search.
//!
//! Four modes bracket the dynamic search for the ablation experiments:
//!
//! * [`ExhaustiveMode::Full`] — evaluate every non-empty subspace.
//!   The exact oracle: effectiveness experiments use it for ground
//!   truth, and it supports the non-monotone normalised OD.
//! * [`ExhaustiveMode::UpwardOnly`] — fixed bottom-up sweep applying
//!   only Property 2 pruning.
//! * [`ExhaustiveMode::DownwardOnly`] — fixed top-down sweep applying
//!   only Property 1 pruning.
//! * [`ExhaustiveMode::BothStatic`] — fixed bottom-up sweep applying
//!   both prunings; isolates the value of HOS-Miner's TSF-driven
//!   *dynamic* level ordering (the only remaining difference).

use hos_core::od::OdMode;
use hos_core::search::{ScoredSubspace, SearchOutcome, SearchStats};
use hos_data::{PointId, Subspace};
use hos_index::KnnEngine;
use hos_lattice::{Lattice, SubspaceState};
use std::time::Instant;

/// Search strategy of the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustiveMode {
    /// Evaluate everything; no pruning.
    Full,
    /// Bottom-up with upward (Property 2) pruning only.
    UpwardOnly,
    /// Top-down with downward (Property 1) pruning only.
    DownwardOnly,
    /// Bottom-up with both prunings but no dynamic level ordering.
    BothStatic,
}

/// Runs the baseline search. Same contract as
/// [`hos_core::search::dynamic_search`], plus an [`OdMode`] which must
/// be [`OdMode::Raw`] for the pruned modes (the normalised OD is not
/// monotone, so pruning with it would be unsound).
///
/// # Panics
/// Panics if a pruned mode is combined with [`OdMode::DimNormalized`],
/// or on the same contract violations as the dynamic search.
pub fn exhaustive_search(
    engine: &dyn KnnEngine,
    query: &[f64],
    exclude: Option<PointId>,
    k: usize,
    threshold: f64,
    mode: ExhaustiveMode,
    od_mode: OdMode,
) -> SearchOutcome {
    assert!(k > 0, "k must be positive");
    let d = engine.dataset().dim();
    assert_eq!(query.len(), d, "query arity mismatch");
    assert!(
        mode == ExhaustiveMode::Full || od_mode == OdMode::Raw,
        "pruned modes require the monotone raw OD"
    );
    let start = Instant::now();
    let metric = engine.metric();

    let mut lattice = Lattice::new(d);
    let mut outlying: Vec<ScoredSubspace> = Vec::new();
    let mut level_eval_stats = vec![(0u64, 0u64); d + 1];
    let mut rounds = 0u32;

    let levels: Vec<usize> = match mode {
        ExhaustiveMode::DownwardOnly => (1..=d).rev().collect(),
        _ => (1..=d).collect(),
    };

    for m in levels {
        let open = lattice.open_at_level(m);
        if open.is_empty() {
            continue;
        }
        rounds += 1;
        for s in open {
            if lattice.state(s) != SubspaceState::Unevaluated {
                continue;
            }
            let raw = engine.od(query, k, s, exclude);
            let od = od_mode.normalize(raw, metric, s.dim());
            lattice.mark_evaluated(s);
            level_eval_stats[m].0 += 1;
            if od >= threshold {
                level_eval_stats[m].1 += 1;
                outlying.push(ScoredSubspace {
                    subspace: s,
                    od: Some(od),
                });
                match mode {
                    ExhaustiveMode::UpwardOnly | ExhaustiveMode::BothStatic => {
                        lattice.prune_up(s);
                    }
                    _ => {}
                }
            } else {
                match mode {
                    ExhaustiveMode::DownwardOnly | ExhaustiveMode::BothStatic => {
                        lattice.prune_down(s);
                    }
                    _ => {}
                }
            }
        }
    }

    for s in lattice.in_state(SubspaceState::PrunedOutlier) {
        outlying.push(ScoredSubspace {
            subspace: s,
            od: None,
        });
    }
    outlying.sort_by_key(|s| s.subspace.mask());

    let mut outlier_count = vec![0u64; d + 1];
    for s in &outlying {
        outlier_count[s.subspace.dim()] += 1;
    }
    let level_outlier_fraction: Vec<f64> = (0..=d)
        .map(|m| {
            if m == 0 {
                0.0
            } else {
                outlier_count[m] as f64 / hos_lattice::binomial(d, m)
            }
        })
        .collect();

    let counters = lattice.counters();
    SearchOutcome {
        outlying,
        level_eval_stats,
        stats: SearchStats {
            od_evals: counters.evaluated,
            wasted_evals: 0,
            pruned_outlier: counters.pruned_outlier,
            pruned_non_outlier: counters.pruned_non_outlier,
            rounds,
            lattice_size: Subspace::lattice_size(d),
            seconds: start.elapsed().as_secs_f64(),
            ..SearchStats::default()
        },
        level_outlier_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hos_core::priors::Priors;
    use hos_core::search::dynamic_search;
    use hos_data::{Dataset, Metric};
    use hos_index::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_engine(seed: u64, n: usize, d: usize) -> LinearScan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        // A couple of heavy outliers to make answers non-trivial.
        rows.push((0..d).map(|i| if i % 2 == 0 { 8.0 } else { 0.5 }).collect());
        rows.push(
            (0..d)
                .map(|i| if i == d - 1 { 11.0 } else { 0.4 })
                .collect(),
        );
        LinearScan::new(Dataset::from_rows(&rows).unwrap(), Metric::L2)
    }

    #[test]
    fn all_modes_agree_on_the_answer_set() {
        let e = random_engine(3, 80, 5);
        let n = e.dataset().len();
        for qid in [n - 2, n - 1, 0] {
            let q: Vec<f64> = e.dataset().row(qid).to_vec();
            let t = 3.0;
            let full =
                exhaustive_search(&e, &q, Some(qid), 4, t, ExhaustiveMode::Full, OdMode::Raw);
            for mode in [
                ExhaustiveMode::UpwardOnly,
                ExhaustiveMode::DownwardOnly,
                ExhaustiveMode::BothStatic,
            ] {
                let got = exhaustive_search(&e, &q, Some(qid), 4, t, mode, OdMode::Raw);
                assert_eq!(got.subspaces(), full.subspaces(), "{mode:?} on point {qid}");
            }
            // And the dynamic search agrees too.
            let dynamic = dynamic_search(&e, &q, Some(qid), 4, t, &Priors::uniform(5), 1);
            assert_eq!(
                dynamic.subspaces(),
                full.subspaces(),
                "dynamic on point {qid}"
            );
        }
    }

    #[test]
    fn full_mode_evaluates_everything() {
        let e = random_engine(5, 40, 4);
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        let out = exhaustive_search(&e, &q, Some(0), 3, 2.0, ExhaustiveMode::Full, OdMode::Raw);
        assert_eq!(out.stats.od_evals, 15);
        assert_eq!(out.stats.pruned_outlier + out.stats.pruned_non_outlier, 0);
    }

    #[test]
    fn pruned_modes_save_evaluations_on_outliers() {
        let e = random_engine(7, 80, 6);
        let n = e.dataset().len();
        let q: Vec<f64> = e.dataset().row(n - 2).to_vec();
        let t = 3.0;
        let full = exhaustive_search(&e, &q, Some(n - 2), 4, t, ExhaustiveMode::Full, OdMode::Raw);
        let both = exhaustive_search(
            &e,
            &q,
            Some(n - 2),
            4,
            t,
            ExhaustiveMode::BothStatic,
            OdMode::Raw,
        );
        assert!(
            both.stats.od_evals < full.stats.od_evals,
            "static pruning saved nothing: {} vs {}",
            both.stats.od_evals,
            full.stats.od_evals
        );
    }

    #[test]
    fn normalized_od_changes_high_dim_bias() {
        let e = random_engine(11, 60, 5);
        let q: Vec<f64> = e.dataset().row(0).to_vec();
        // With raw OD and a mid threshold, high-dimensional subspaces
        // dominate the answer; the normalised OD removes that bias, so
        // its answer set is no larger at every level above 1.
        let t = 1.2;
        let raw = exhaustive_search(&e, &q, Some(0), 4, t, ExhaustiveMode::Full, OdMode::Raw);
        let norm = exhaustive_search(
            &e,
            &q,
            Some(0),
            4,
            t,
            ExhaustiveMode::Full,
            OdMode::DimNormalized,
        );
        let count_at = |out: &SearchOutcome, m: usize| {
            out.outlying
                .iter()
                .filter(|s| s.subspace.dim() == m)
                .count()
        };
        for m in 2..=5 {
            assert!(
                count_at(&norm, m) <= count_at(&raw, m),
                "normalisation increased level-{m} answers"
            );
        }
    }

    #[test]
    #[should_panic]
    fn pruning_with_normalized_od_rejected() {
        let e = random_engine(1, 20, 3);
        let q = vec![0.5; 3];
        let _ = exhaustive_search(
            &e,
            &q,
            None,
            3,
            1.0,
            ExhaustiveMode::BothStatic,
            OdMode::DimNormalized,
        );
    }

    #[test]
    fn accounting_adds_up_in_every_mode() {
        let e = random_engine(13, 50, 5);
        let q: Vec<f64> = e.dataset().row(10).to_vec();
        for mode in [
            ExhaustiveMode::Full,
            ExhaustiveMode::UpwardOnly,
            ExhaustiveMode::DownwardOnly,
            ExhaustiveMode::BothStatic,
        ] {
            let out = exhaustive_search(&e, &q, Some(10), 3, 2.0, mode, OdMode::Raw);
            let s = &out.stats;
            assert_eq!(
                s.od_evals + s.pruned_outlier + s.pruned_non_outlier,
                s.lattice_size,
                "{mode:?}"
            );
        }
    }
}
