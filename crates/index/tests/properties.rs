//! Property tests: the X-tree must be indistinguishable from the
//! brute-force oracle on arbitrary data, metrics, subspaces and k —
//! and so must the sharded execution layer and the evaluator seam.

use hos_data::{Dataset, Metric, Subspace};
use hos_index::{
    all_points_full_od_counted, quantized_lower_bounds, Engine, HnswConfig, HnswEngine, KnnEngine,
    LinearScan, QueryContext, ShardedEngine, VaFile, VaFileConfig, XTree, XTreeConfig,
};
use proptest::prelude::*;

const D: usize = 5;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, D), 1..120)
        .prop_map(|rows| Dataset::from_rows(&rows).unwrap())
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop_oneof![Just(Metric::L1), Just(Metric::L2), Just(Metric::LInf)]
}

fn arb_metric_all() -> impl Strategy<Value = Metric> {
    prop_oneof![
        Just(Metric::L1),
        Just(Metric::L2),
        Just(Metric::LInf),
        Just(Metric::Lp(3.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xtree_knn_equals_linear(ds in arb_dataset(),
                               q in prop::collection::vec(-60.0f64..60.0, D),
                               k in 1usize..12,
                               mask in 1u64..(1 << D),
                               metric in arb_metric()) {
        let s = Subspace::from_mask(mask);
        let tree = XTree::build(ds.clone(), metric, XTreeConfig {
            max_leaf: 8, max_dir: 4, ..XTreeConfig::default()
        });
        tree.check_invariants().unwrap();
        let lin = LinearScan::new(ds, metric);
        let a = tree.knn(&q, k, s, None);
        let b = lin.knn(&q, k, s, None);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            // Distances must agree exactly (ids may differ on ties).
            prop_assert!((x.dist - y.dist).abs() < 1e-9,
                "{} vs {} in {}", x.dist, y.dist, s);
        }
    }

    #[test]
    fn xtree_range_equals_linear(ds in arb_dataset(),
                                 q in prop::collection::vec(-60.0f64..60.0, D),
                                 radius in 0.0f64..100.0,
                                 mask in 1u64..(1 << D),
                                 metric in arb_metric()) {
        let s = Subspace::from_mask(mask);
        let tree = XTree::build(ds.clone(), metric, XTreeConfig {
            max_leaf: 8, max_dir: 4, ..XTreeConfig::default()
        });
        let lin = LinearScan::new(ds, metric);
        let mut a: Vec<usize> = tree.range(&q, radius, s, None).iter().map(|n| n.id).collect();
        let mut b: Vec<usize> = lin.range(&q, radius, s, None).iter().map(|n| n.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn vafile_knn_equals_linear(ds in arb_dataset(),
                                q in prop::collection::vec(-60.0f64..60.0, D),
                                k in 1usize..12,
                                mask in 1u64..(1 << D),
                                bits in 1u32..8,
                                metric in arb_metric()) {
        let s = Subspace::from_mask(mask);
        let va = VaFile::build(ds.clone(), metric, VaFileConfig { bits });
        let lin = LinearScan::new(ds, metric);
        let a = va.knn(&q, k, s, None);
        let b = lin.knn(&q, k, s, None);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.dist - y.dist).abs() < 1e-9,
                "bits={} {} vs {} in {}", bits, x.dist, y.dist, s);
        }
    }

    /// The query-context cache is indistinguishable from the uncached
    /// scan: for arbitrary data, queries, metrics and k, the cached OD
    /// agrees with `LinearScan::od` to 1e-12 (they are in fact
    /// bit-identical) over EVERY subspace of the lattice, with and
    /// without self-exclusion.
    #[test]
    fn query_context_od_equals_uncached_scan(ds in arb_dataset(),
                                             q in prop::collection::vec(-60.0f64..60.0, D),
                                             k in 1usize..10,
                                             metric in arb_metric()) {
        let lin = LinearScan::new(ds.clone(), metric);
        let ctx = QueryContext::build(&ds, metric, &q);
        for s in Subspace::all_nonempty(D) {
            let cached = ctx.od(k, s, None);
            let direct = lin.od(&q, k, s, None);
            prop_assert!((cached - direct).abs() <= 1e-12,
                "cached {} vs direct {} in {} ({:?})", cached, direct, s, metric);
            let cached_ex = ctx.od(k, s, Some(0));
            let direct_ex = lin.od(&q, k, s, Some(0));
            prop_assert!((cached_ex - direct_ex).abs() <= 1e-12,
                "excluded: cached {} vs direct {} in {}", cached_ex, direct_ex, s);
        }
    }

    /// The cached k-NN lists match the engine's exactly: same ids,
    /// same distances, same order.
    #[test]
    fn query_context_knn_equals_uncached_scan(ds in arb_dataset(),
                                              q in prop::collection::vec(-60.0f64..60.0, D),
                                              k in 1usize..8,
                                              mask in 1u64..(1 << D),
                                              metric in arb_metric()) {
        let s = Subspace::from_mask(mask);
        let lin = LinearScan::new(ds.clone(), metric);
        let ctx = lin.query_context(&q).expect("linear scan provides a context");
        prop_assert_eq!(ctx.knn(k, s, None), lin.knn(&q, k, s, None));
    }

    /// The sharded engine is **bit-identical** to the unsharded scan:
    /// for arbitrary data, queries, metrics, k and shard counts
    /// 1..=8, the merged per-shard k-NN lists (ids AND distances) and
    /// the ODs equal `LinearScan`'s exactly — `assert_eq!`, no
    /// tolerance. This is the exactness contract of the whole sharded
    /// execution layer.
    #[test]
    fn sharded_knn_and_od_equal_linear_bitwise(ds in arb_dataset(),
                                               q in prop::collection::vec(-60.0f64..60.0, D),
                                               k in 1usize..12,
                                               shards in 1usize..=8,
                                               mask in 1u64..(1 << D),
                                               metric in arb_metric()) {
        let s = Subspace::from_mask(mask);
        let lin = LinearScan::new(ds.clone(), metric);
        let sharded = ShardedEngine::build(ds, metric, Engine::Linear, shards, 2);
        prop_assert_eq!(sharded.knn(&q, k, s, None), lin.knn(&q, k, s, None));
        prop_assert_eq!(sharded.od(&q, k, s, None), lin.od(&q, k, s, None));
        // Self-exclusion translates correctly into the owning shard.
        prop_assert_eq!(sharded.knn(&q, k, s, Some(0)), lin.knn(&q, k, s, Some(0)));
        prop_assert_eq!(sharded.od(&q, k, s, Some(0)), lin.od(&q, k, s, Some(0)));
    }

    /// The sharded evaluator (per-shard lazy contexts + exact merge)
    /// agrees with the unsharded scan over entire lattices, through
    /// both its uncached and cached phases, bitwise.
    #[test]
    fn sharded_evaluator_equals_linear_over_lattice(ds in arb_dataset(),
                                                    q in prop::collection::vec(-60.0f64..60.0, D),
                                                    k in 1usize..8,
                                                    shards in 1usize..=8,
                                                    metric in arb_metric()) {
        let lin = LinearScan::new(ds.clone(), metric);
        let sharded = ShardedEngine::build(ds, metric, Engine::Linear, shards, 2);
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(D).collect();
        let expected: Vec<f64> = subspaces.iter().map(|&s| lin.od(&q, k, s, Some(0))).collect();
        let mut ev = sharded.evaluator(&q, k, Some(0));
        prop_assert_eq!(ev.od_batch(&subspaces, 2), expected);
    }

    /// The evaluator path of the context-less engines (X-tree,
    /// VA-file) returns exactly what per-subspace `engine.od` calls
    /// return — the refactor onto `OdEvaluator` cannot silently change
    /// their results, batched or single, at any thread count.
    #[test]
    fn evaluator_path_preserves_contextless_engines(ds in arb_dataset(),
                                                    q in prop::collection::vec(-60.0f64..60.0, D),
                                                    k in 1usize..8,
                                                    metric in arb_metric()) {
        let tree = XTree::build(ds.clone(), metric, XTreeConfig {
            max_leaf: 8, max_dir: 4, ..XTreeConfig::default()
        });
        let va = VaFile::build(ds.clone(), metric, VaFileConfig { bits: 4 });
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(D).collect();
        for engine in [&tree as &dyn KnnEngine, &va as &dyn KnnEngine] {
            let expected: Vec<f64> = subspaces
                .iter()
                .map(|&s| engine.od(&q, k, s, Some(0)))
                .collect();
            for threads in [1usize, 3] {
                let mut ev = engine.evaluator(&q, k, Some(0));
                prop_assert_eq!(ev.od_batch(&subspaces, threads), expected.clone());
            }
            // Single-od streaming agrees too (the cumulative cost
            // model must never switch these engines onto a cache —
            // they have none).
            let mut ev = engine.evaluator(&q, k, Some(0));
            for (i, &s) in subspaces.iter().enumerate() {
                prop_assert_eq!(ev.od(s), expected[i]);
            }
        }
    }

    /// The chunked/blocked all-points kernel is **bit-identical** to
    /// per-point `LinearScan` queries — `==` on `f64`, no tolerance —
    /// for arbitrary data, every metric (including `Lp`, which takes
    /// the exact-fallback route), arbitrary k and arbitrary tombstone
    /// patterns. This pins the two tentpole claims at once: chunking
    /// lanes span points (so per-pair fold order is unchanged) and
    /// the quantized admission filter only ever skips losers.
    #[test]
    fn blocked_kernel_bit_identical_to_linear_scan(ds in arb_dataset(),
                                                   k in 0usize..12,
                                                   kill_seed in 0u64..u64::MAX,
                                                   metric in arb_metric_all()) {
        let mut ds = ds;
        // Tombstone a pseudo-random subset (never all rows).
        for i in 0..ds.len() {
            if (kill_seed >> (i % 64)) & 1 == 1 && ds.live_len() > 1 {
                ds.remove_row(i).unwrap();
            }
        }
        let live = ds.live_len();
        match all_points_full_od_counted(&ds, metric, k) {
            Err(_) => prop_assert!(live.saturating_sub(1) < k,
                "errored with {} live points available for k={k}", live - 1),
            Ok(scan) => {
                prop_assert!(live.saturating_sub(1) >= k);
                // Every live pair is either exactly evaluated or
                // provably filtered — nothing is silently dropped.
                prop_assert_eq!(
                    scan.distance_evals + scan.filtered,
                    (live * live.saturating_sub(1)) as u64);
                let lin = LinearScan::new(ds.clone(), metric);
                let full = ds.full_space();
                prop_assert_eq!(scan.ods.len(), live);
                for &(id, od) in &scan.ods {
                    let direct = lin.od(ds.row(id), k, full, Some(id));
                    prop_assert_eq!(od, direct,
                        "row {} diverged under {:?}", id, metric);
                }
            }
        }
    }

    /// The quantized `f32` admission bounds are *conservative*: for
    /// every live row, the lower bound never exceeds the exact `f64`
    /// pre-distance it stands in for. This is the property that makes
    /// skipping on `lb > top.bound()` exact rather than approximate.
    #[test]
    fn quantized_bounds_never_exceed_exact_pre(ds in arb_dataset(),
                                               qsel in 0usize..1024,
                                               metric in arb_metric()) {
        let q = qsel % ds.len();
        let lbs = quantized_lower_bounds(&ds, metric, q)
            .expect("small-magnitude data is always admissible");
        let qrow: Vec<f64> = ds.row(q).to_vec();
        for (i, &lb) in lbs.iter().enumerate() {
            let mut exact = 0.0f64;
            for (j, &qv) in qrow.iter().enumerate() {
                exact = metric.accumulate(exact, (qv - ds.get(i, j)).abs());
            }
            prop_assert!(lb <= exact,
                "bound {} exceeds exact pre {} for pair ({q},{i}) under {:?}",
                lb, exact, metric);
        }
        // Lp admits no order-safe quantized bound: always exact-path.
        prop_assert!(quantized_lower_bounds(&ds, Metric::Lp(3.0), q).is_none());
    }

    /// The exactness escape hatch, pinned: `HnswEngine` at `ef = n`
    /// (exhaustive pool) is **bit-identical** to `LinearScan` —
    /// `assert_eq!` on ids AND distances, no tolerance — for arbitrary
    /// data, metrics, k, subspaces and tombstone patterns. This is
    /// what makes the approximation strictly opt-in: widen the pool to
    /// the dataset and the engine IS the exact scan.
    #[test]
    fn hnsw_exhaustive_ef_bit_identical_to_linear(ds in arb_dataset(),
                                                  q in prop::collection::vec(-60.0f64..60.0, D),
                                                  k in 1usize..12,
                                                  mask in 1u64..(1 << D),
                                                  kill_seed in 0u64..u64::MAX,
                                                  metric in arb_metric_all()) {
        let mut ds = ds;
        for i in 0..ds.len() {
            if (kill_seed >> (i % 64)) & 1 == 1 && ds.live_len() > 1 {
                ds.remove_row(i).unwrap();
            }
        }
        let s = Subspace::from_mask(mask);
        let hnsw = HnswEngine::build(ds.clone(), metric, HnswConfig::default());
        hnsw.set_search_width(ds.len().max(1));
        let lin = LinearScan::new(ds, metric);
        prop_assert_eq!(hnsw.knn(&q, k, s, None), lin.knn(&q, k, s, None));
        prop_assert_eq!(hnsw.od(&q, k, s, None), lin.od(&q, k, s, None));
        prop_assert_eq!(hnsw.knn(&q, k, s, Some(0)), lin.knn(&q, k, s, Some(0)));
        prop_assert_eq!(hnsw.od(&q, k, s, Some(0)), lin.od(&q, k, s, Some(0)));
        // The evaluator seam inherits the exactness at ef = n too,
        // through both its uncached and cached phases.
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(D).collect();
        let expected: Vec<f64> = subspaces.iter().map(|&s| lin.od(&q, k, s, Some(0))).collect();
        let mut ev = hnsw.evaluator(&q, k, Some(0));
        prop_assert_eq!(ev.od_batch(&subspaces, 2), expected);
    }

    /// OD is monotone under subspace inclusion regardless of engine —
    /// the fact the whole paper rests on (Property 1/2).
    #[test]
    fn od_monotone_under_inclusion(ds in arb_dataset(),
                                   q in prop::collection::vec(-60.0f64..60.0, D),
                                   k in 1usize..8,
                                   m1 in 1u64..(1 << D),
                                   m2 in 1u64..(1 << D),
                                   metric in arb_metric()) {
        let sub = Subspace::from_mask(m1 & m2);
        let sup = Subspace::from_mask(m1);
        prop_assume!(!sub.is_empty());
        let lin = LinearScan::new(ds, metric);
        let od_sub = lin.od(&q, k, sub, None);
        let od_sup = lin.od(&q, k, sup, None);
        prop_assert!(od_sub <= od_sup + 1e-9,
            "OD({sub}) = {od_sub} > OD({sup}) = {od_sup}");
    }
}
