//! Topological (R*-style) node splitting.
//!
//! The X-tree first attempts the R*-tree topological split; only when
//! the resulting sibling overlap is intolerable does it fall back to
//! an overlap-minimal split or a supernode (decided by the caller in
//! `mod.rs` — this module just finds the best geometric partition and
//! reports its quality).

use super::mbr::Mbr;

/// Outcome of a topological split attempt over a set of entry MBRs.
#[derive(Clone, Debug)]
pub struct SplitResult {
    /// Indices (into the input slice) of the left group.
    pub left: Vec<usize>,
    /// Indices of the right group.
    pub right: Vec<usize>,
    /// The split axis that was chosen.
    pub axis: usize,
    /// X-tree overlap measure of the two group MBRs.
    pub overlap_ratio: f64,
    /// Bounding box of the left group.
    pub left_mbr: Mbr,
    /// Bounding box of the right group.
    pub right_mbr: Mbr,
}

fn group_mbr(mbrs: &[Mbr], idxs: &[usize]) -> Mbr {
    let mut m = Mbr::unset(mbrs[0].dim());
    for &i in idxs {
        m.merge(&mbrs[i]);
    }
    m
}

/// R*-tree topological split of `mbrs` into two groups, each holding
/// at least `min_fill` entries.
///
/// Axis choice: minimal sum of group margins across all distributions
/// (the R* goodness criterion). Distribution choice on the winning
/// axis: minimal overlap volume, ties broken by minimal total area.
///
/// `preferred_axes` (a bitmask, the node's split history) biases the
/// axis choice: if any history axis achieves a zero-overlap
/// distribution it wins outright, matching the X-tree's preference for
/// overlap-free splits along previously used dimensions.
///
/// # Panics
/// Panics if `mbrs.len() < 2 * min_fill` or `min_fill == 0`.
pub fn topological_split(mbrs: &[Mbr], min_fill: usize, preferred_axes: u64) -> SplitResult {
    assert!(min_fill >= 1, "min_fill must be positive");
    let n = mbrs.len();
    assert!(
        n >= 2 * min_fill,
        "cannot split {n} entries with min_fill {min_fill}"
    );
    let d = mbrs[0].dim();

    // Pre-sort index permutations per axis by (lo, hi).
    let mut best_axis: Option<(usize, f64)> = None; // (axis, margin sum)
    let mut per_axis_order: Vec<Vec<usize>> = Vec::with_capacity(d);
    for axis in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            mbrs[a].lo()[axis]
                .partial_cmp(&mbrs[b].lo()[axis])
                .expect("finite")
                .then(
                    mbrs[a].hi()[axis]
                        .partial_cmp(&mbrs[b].hi()[axis])
                        .expect("finite"),
                )
        });
        // Margin sum over all legal distributions along this axis.
        let mut margin_sum = 0.0;
        for split_at in min_fill..=n - min_fill {
            let left = group_mbr(mbrs, &order[..split_at]);
            let right = group_mbr(mbrs, &order[split_at..]);
            margin_sum += left.margin() + right.margin();
        }
        match best_axis {
            Some((_, best)) if best <= margin_sum => {}
            _ => best_axis = Some((axis, margin_sum)),
        }
        per_axis_order.push(order);
    }

    // Evaluate the distributions on the winning axis; also scan
    // history axes for a zero-overlap distribution.
    let choose_on_axis = |axis: usize| -> SplitResult {
        let order = &per_axis_order[axis];
        let mut best: Option<SplitResult> = None;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for split_at in min_fill..=n - min_fill {
            let left_idx: Vec<usize> = order[..split_at].to_vec();
            let right_idx: Vec<usize> = order[split_at..].to_vec();
            let lm = group_mbr(mbrs, &left_idx);
            let rm = group_mbr(mbrs, &right_idx);
            let key = (lm.overlap(&rm), lm.area() + rm.area());
            if key < best_key {
                best_key = key;
                best = Some(SplitResult {
                    overlap_ratio: lm.overlap_ratio(&rm),
                    left: left_idx,
                    right: right_idx,
                    axis,
                    left_mbr: lm,
                    right_mbr: rm,
                });
            }
        }
        best.expect("at least one distribution exists")
    };

    // X-tree bias: a history axis with an overlap-free distribution
    // wins outright.
    for axis in 0..d {
        if preferred_axes >> axis & 1 == 1 {
            let cand = choose_on_axis(axis);
            if cand.overlap_ratio == 0.0 {
                return cand;
            }
        }
    }

    let (axis, _) = best_axis.expect("d >= 1");
    choose_on_axis(axis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(points: &[(f64, f64)]) -> Vec<Mbr> {
        points
            .iter()
            .map(|&(x, y)| Mbr::of_point(&[x, y]))
            .collect()
    }

    #[test]
    fn splits_two_obvious_clusters() {
        let mbrs = boxes(&[
            (0.0, 0.0),
            (0.1, 0.2),
            (0.2, 0.1),
            (10.0, 10.0),
            (10.1, 10.2),
            (10.2, 10.1),
        ]);
        let r = topological_split(&mbrs, 2, 0);
        assert_eq!(r.left.len() + r.right.len(), 6);
        assert_eq!(r.overlap_ratio, 0.0);
        // The two clusters must not be mixed.
        let left_set: std::collections::HashSet<usize> = r.left.iter().copied().collect();
        let cluster_a: std::collections::HashSet<usize> = [0, 1, 2].into_iter().collect();
        let cluster_b: std::collections::HashSet<usize> = [3, 4, 5].into_iter().collect();
        assert!(left_set == cluster_a || left_set == cluster_b);
    }

    #[test]
    fn respects_min_fill() {
        let mbrs = boxes(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (4.0, 0.0)]);
        let r = topological_split(&mbrs, 2, 0);
        assert!(r.left.len() >= 2);
        assert!(r.right.len() >= 2);
    }

    #[test]
    fn partition_is_exact_cover() {
        let mbrs = boxes(&[
            (3.0, 1.0),
            (1.0, 4.0),
            (2.0, 2.0),
            (8.0, 0.0),
            (0.0, 9.0),
            (5.0, 5.0),
        ]);
        let r = topological_split(&mbrs, 2, 0);
        let mut all: Vec<usize> = r.left.iter().chain(r.right.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn group_mbrs_cover_groups() {
        let mbrs = boxes(&[(0.0, 0.0), (1.0, 1.0), (9.0, 9.0), (10.0, 10.0)]);
        let r = topological_split(&mbrs, 1, 0);
        for &i in &r.left {
            assert!(r.left_mbr.contains_point(mbrs[i].lo()));
        }
        for &i in &r.right {
            assert!(r.right_mbr.contains_point(mbrs[i].lo()));
        }
    }

    #[test]
    fn history_axis_preferred_when_overlap_free() {
        // Clusters separated along axis 1 only; history says axis 1.
        let mbrs = boxes(&[(0.0, 0.0), (1.0, 0.1), (0.5, 10.0), (0.6, 10.1)]);
        let r = topological_split(&mbrs, 1, 0b10);
        assert_eq!(r.axis, 1);
        assert_eq!(r.overlap_ratio, 0.0);
    }

    #[test]
    #[should_panic]
    fn too_few_entries_panics() {
        let mbrs = boxes(&[(0.0, 0.0), (1.0, 1.0)]);
        let _ = topological_split(&mbrs, 2, 0);
    }
}
