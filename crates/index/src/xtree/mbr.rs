//! Minimum bounding rectangles with subspace-aware MINDIST.

use hos_data::{Metric, Subspace};

/// An axis-aligned minimum bounding rectangle in `R^d`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    /// An "inverted" MBR that is the identity for [`Mbr::merge`]:
    /// every `include_*` call shrinks it onto real data.
    pub fn unset(d: usize) -> Self {
        Mbr {
            lo: vec![f64::INFINITY; d],
            hi: vec![f64::NEG_INFINITY; d],
        }
    }

    /// The degenerate MBR of a single point.
    pub fn of_point(row: &[f64]) -> Self {
        Mbr {
            lo: row.to_vec(),
            hi: row.to_vec(),
        }
    }

    /// Builds an MBR from explicit bounds.
    ///
    /// # Panics
    /// Panics (debug) if arities differ or any `lo > hi`.
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        debug_assert_eq!(lo.len(), hi.len());
        debug_assert!(lo.iter().zip(&hi).all(|(l, h)| l <= h));
        Mbr { lo, hi }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Whether no point has been included yet.
    pub fn is_unset(&self) -> bool {
        self.dim() > 0 && self.lo[0] > self.hi[0]
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Centre along one dimension.
    #[inline]
    pub fn center(&self, dim: usize) -> f64 {
        (self.lo[dim] + self.hi[dim]) / 2.0
    }

    /// Grows to cover a point.
    pub fn include_point(&mut self, row: &[f64]) {
        debug_assert_eq!(row.len(), self.dim());
        for ((l, h), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(row) {
            if v < *l {
                *l = v;
            }
            if v > *h {
                *h = v;
            }
        }
    }

    /// Grows to cover another MBR.
    pub fn merge(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Union of two MBRs as a new value.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut m = self.clone();
        m.merge(other);
        m
    }

    /// Volume (product of extents). High-dimensional volumes degrade
    /// to 0/overflow quickly, so split heuristics prefer
    /// [`Mbr::margin`]; area is used for enlargement comparisons where
    /// relative order is all that matters.
    pub fn area(&self) -> f64 {
        if self.is_unset() {
            return 0.0;
        }
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }

    /// Margin (sum of extents) — the R*-tree split goodness measure,
    /// numerically robust in high dimensions.
    pub fn margin(&self) -> f64 {
        if self.is_unset() {
            return 0.0;
        }
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .sum()
    }

    /// Volume of the intersection with another MBR.
    pub fn overlap(&self, other: &Mbr) -> f64 {
        let mut acc = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            acc *= hi - lo;
        }
        acc
    }

    /// The X-tree overlap measure between two sibling MBRs:
    /// `vol(a ∩ b) / vol(a ∪ b)` (0 when the union has no volume).
    pub fn overlap_ratio(&self, other: &Mbr) -> f64 {
        let inter = self.overlap(other);
        if inter == 0.0 {
            return 0.0;
        }
        let uni = self.union(other).area();
        if uni <= 0.0 {
            // Degenerate boxes that still intersect: treat as full overlap.
            1.0
        } else {
            inter / uni
        }
    }

    /// Area increase if this MBR had to cover `other` too.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Whether a point lies inside (inclusive).
    pub fn contains_point(&self, row: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(row)
            .all(|((l, h), v)| *l <= *v && *v <= *h)
    }

    /// MINDIST lower bound from a query point to this MBR in
    /// *pre-metric* space, restricted to subspace `s`.
    ///
    /// Guarantee: for every point `p` inside the MBR,
    /// `mindist_pre <= metric.pre_dist_sub(query, p, s)` — which is
    /// what makes best-first pruning exact.
    pub fn mindist_pre(&self, query: &[f64], s: Subspace, metric: Metric) -> f64 {
        let mut acc = 0.0;
        for d in s.dims() {
            let q = query[d];
            let gap = if q < self.lo[d] {
                self.lo[d] - q
            } else if q > self.hi[d] {
                q - self.hi[d]
            } else {
                0.0
            };
            acc = metric.accumulate(acc, gap);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_growth() {
        let mut m = Mbr::of_point(&[1.0, 2.0]);
        assert_eq!(m.area(), 0.0);
        m.include_point(&[3.0, 0.0]);
        assert_eq!(m.lo(), &[1.0, 0.0]);
        assert_eq!(m.hi(), &[3.0, 2.0]);
        assert_eq!(m.area(), 4.0);
        assert_eq!(m.margin(), 4.0);
        assert_eq!(m.center(0), 2.0);
    }

    #[test]
    fn unset_is_merge_identity() {
        let mut u = Mbr::unset(2);
        assert!(u.is_unset());
        assert_eq!(u.area(), 0.0);
        let m = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        u.merge(&m);
        assert_eq!(u, m);
        assert!(!u.is_unset());
    }

    #[test]
    fn overlap_volumes() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![2.0, 2.0]);
        let b = Mbr::from_bounds(vec![1.0, 1.0], vec![3.0, 3.0]);
        assert_eq!(a.overlap(&b), 1.0);
        let c = Mbr::from_bounds(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert_eq!(a.overlap(&c), 0.0);
        assert_eq!(a.overlap_ratio(&c), 0.0);
        let r = a.overlap_ratio(&b);
        assert!((r - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_overlap_ratio() {
        // Two identical zero-area boxes that coincide.
        let a = Mbr::of_point(&[1.0, 1.0]);
        let b = Mbr::of_point(&[1.0, 1.0]);
        assert_eq!(a.overlap_ratio(&b), 0.0); // zero intersection volume
    }

    #[test]
    fn enlargement() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Mbr::of_point(&[2.0, 0.5]);
        assert_eq!(a.enlargement(&b), 2.0 - 1.0);
        assert_eq!(a.enlargement(&Mbr::of_point(&[0.5, 0.5])), 0.0);
    }

    #[test]
    fn contains() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(a.contains_point(&[0.0, 1.0]));
        assert!(a.contains_point(&[0.5, 0.5]));
        assert!(!a.contains_point(&[1.1, 0.5]));
    }

    #[test]
    fn mindist_inside_is_zero() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let s = Subspace::full(2);
        assert_eq!(a.mindist_pre(&[0.5, 0.5], s, Metric::L2), 0.0);
    }

    #[test]
    fn mindist_is_lower_bound() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 2.0]);
        let q = [3.0, -1.0];
        for metric in [Metric::L1, Metric::L2, Metric::LInf] {
            for s in [
                Subspace::full(2),
                Subspace::from_dims(&[0]),
                Subspace::from_dims(&[1]),
            ] {
                let lb = a.mindist_pre(&q, s, metric);
                // Check against the actual closest corner/edge point.
                let closest = [q[0].clamp(0.0, 1.0), q[1].clamp(0.0, 2.0)];
                let exact = metric.pre_dist_sub(&q, &closest, s);
                assert!((lb - exact).abs() < 1e-12, "{metric:?} {s}");
            }
        }
    }

    #[test]
    fn mindist_respects_subspace() {
        let a = Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0]);
        let q = [5.0, 0.5];
        // Restricted to dim 1, the query is inside the projection.
        assert_eq!(
            a.mindist_pre(&q, Subspace::from_dims(&[1]), Metric::L2),
            0.0
        );
        assert!(a.mindist_pre(&q, Subspace::from_dims(&[0]), Metric::L2) > 0.0);
    }
}
