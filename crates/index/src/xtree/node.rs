//! Arena-allocated X-tree nodes.
//!
//! The X-tree's defining feature over the R*-tree is the **supernode**:
//! a directory node allowed to grow beyond one block when every
//! candidate split would produce heavily overlapping siblings. Here a
//! node is an enum in a flat arena (`Vec<Node>`), with supernode-ness
//! expressed as a block multiplier on directory capacity.

use super::mbr::Mbr;
use hos_data::PointId;

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// An X-tree node.
#[derive(Clone, Debug)]
pub enum Node {
    /// A data node holding point ids; coordinates live in the dataset.
    Leaf {
        /// Member point ids.
        points: Vec<PointId>,
        /// Bounding box of the member points.
        mbr: Mbr,
    },
    /// A directory node (possibly a supernode).
    Dir {
        /// Child node ids.
        children: Vec<NodeId>,
        /// Bounding box of all children.
        mbr: Mbr,
        /// Bitmask of dimensions this subtree has been split along —
        /// the X-tree's split history, used to prefer axes that can
        /// yield overlap-free splits.
        split_history: u64,
        /// Capacity multiplier; `> 1` makes this a supernode.
        blocks: usize,
    },
}

impl Node {
    /// The node's bounding box.
    pub fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Dir { mbr, .. } => mbr,
        }
    }

    /// Mutable access to the bounding box.
    pub fn mbr_mut(&mut self) -> &mut Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Dir { mbr, .. } => mbr,
        }
    }

    /// Whether this is a leaf (data) node.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Whether this is a supernode (multi-block directory).
    pub fn is_supernode(&self) -> bool {
        matches!(self, Node::Dir { blocks, .. } if *blocks > 1)
    }

    /// Number of entries (points or children).
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { points, .. } => points.len(),
            Node::Dir { children, .. } => children.len(),
        }
    }

    /// Whether the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let leaf = Node::Leaf {
            points: vec![1, 2],
            mbr: Mbr::of_point(&[0.0]),
        };
        assert!(leaf.is_leaf());
        assert!(!leaf.is_supernode());
        assert_eq!(leaf.len(), 2);
        assert!(!leaf.is_empty());

        let dir = Node::Dir {
            children: vec![0],
            mbr: Mbr::of_point(&[0.0]),
            split_history: 0b10,
            blocks: 2,
        };
        assert!(!dir.is_leaf());
        assert!(dir.is_supernode());
        assert_eq!(dir.len(), 1);

        let plain = Node::Dir {
            children: vec![],
            mbr: Mbr::unset(1),
            split_history: 0,
            blocks: 1,
        };
        assert!(!plain.is_supernode());
        assert!(plain.is_empty());
    }
}
