//! A from-scratch X-tree (Berchtold, Keim, Kriegel — VLDB'96).
//!
//! The X-tree is an R-tree derivative designed for high-dimensional
//! data: when splitting a directory node would create siblings whose
//! bounding boxes overlap too much (making every query visit both),
//! the node instead becomes a **supernode** — a directory node of
//! extended capacity that is scanned linearly. The tree thereby
//! degrades gracefully from hierarchical to sequential organisation as
//! dimensionality (and thus unavoidable overlap) grows.
//!
//! Faithfulness notes relative to the original paper:
//!
//! * Topological split = R*-tree split (margin-based axis choice,
//!   overlap-minimal distribution) — same as the original.
//! * The overlap-minimal split is realised through the split-history
//!   bias in `split::topological_split`: a history axis with an
//!   overlap-free distribution is taken outright. The original's
//!   additional unbalanced-split bookkeeping is subsumed by the
//!   min-fill bound plus the supernode fallback.
//! * Supernodes grow by whole blocks (`max_dir` entries each), exactly
//!   as described; data (leaf) nodes always split.
//!
//! Subspace k-NN uses best-first search with MINDIST lower bounds
//! computed only over the queried dimensions — this is what the
//! paper's "X-tree Indexing module ... to facilitate k-NN search in
//! every subspace" requires.

mod mbr;
mod node;
mod split;

pub use mbr::Mbr;
pub use node::{Node, NodeId};

use crate::error::{validate_insert, validate_remove, IndexError};
use crate::knn::{IncrementalEngine, KnnEngine, Neighbor};
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// X-tree construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct XTreeConfig {
    /// Maximum points per leaf.
    pub max_leaf: usize,
    /// Maximum children per directory block.
    pub max_dir: usize,
    /// Minimum fill fraction per split side (R*: 0.4).
    pub min_fill_frac: f64,
    /// Maximum tolerated sibling overlap ratio before a directory
    /// split is abandoned in favour of a supernode (paper: ~0.2).
    pub max_overlap: f64,
    /// Hard cap on supernode size in blocks (a safety valve; the
    /// original X-tree lets supernodes grow without bound).
    pub max_blocks: usize,
}

impl Default for XTreeConfig {
    fn default() -> Self {
        XTreeConfig {
            max_leaf: 32,
            max_dir: 16,
            min_fill_frac: 0.4,
            max_overlap: 0.2,
            max_blocks: 1 << 16,
        }
    }
}

/// Structural statistics, exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XTreeStats {
    /// Total nodes in the arena.
    pub nodes: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Supernode count.
    pub supernodes: usize,
    /// Largest supernode size, in blocks.
    pub max_supernode_blocks: usize,
    /// Tree height (leaf = 1).
    pub height: usize,
}

/// The X-tree k-NN engine.
pub struct XTree {
    dataset: Dataset,
    metric: Metric,
    cfg: XTreeConfig,
    nodes: Vec<Node>,
    root: NodeId,
    /// Tombstoned points still sitting in leaf nodes — reset by
    /// [`XTree::rebulk`], unlike the dataset's own dead count (the
    /// dataset is never compacted here, so gating the rebuild on it
    /// would re-trigger on every removal once the fraction is
    /// crossed).
    stale: usize,
    evals: AtomicU64,
}

impl XTree {
    /// Builds the tree by sequential insertion of every dataset row.
    pub fn build(dataset: Dataset, metric: Metric, cfg: XTreeConfig) -> Self {
        assert!(cfg.max_leaf >= 4, "max_leaf must be >= 4");
        assert!(cfg.max_dir >= 4, "max_dir must be >= 4");
        assert!(
            (0.1..=0.5).contains(&cfg.min_fill_frac),
            "min_fill_frac must be in [0.1, 0.5]"
        );
        let d = dataset.dim();
        let root_node = Node::Leaf {
            points: Vec::new(),
            mbr: Mbr::unset(d.max(1)),
        };
        let mut tree = XTree {
            dataset,
            metric,
            cfg,
            nodes: vec![root_node],
            root: 0,
            stale: 0,
            evals: AtomicU64::new(0),
        };
        for pid in 0..tree.dataset.len() {
            if tree.dataset.is_live(pid) {
                tree.insert(pid);
            }
        }
        tree
    }

    /// Builds the tree by top-down bulk loading (OMT-style): points
    /// are recursively partitioned along the dimension of widest
    /// spread into equal slabs sized to fill a balanced tree. Much
    /// faster than sequential insertion and produces low-overlap
    /// sibling boxes (so bulk-loaded trees contain no supernodes).
    /// Queries are identical in semantics to an insertion-built tree.
    pub fn bulk_load(dataset: Dataset, metric: Metric, cfg: XTreeConfig) -> Self {
        assert!(cfg.max_leaf >= 4, "max_leaf must be >= 4");
        assert!(cfg.max_dir >= 4, "max_dir must be >= 4");
        let mut tree = XTree {
            dataset,
            metric,
            cfg,
            nodes: Vec::new(),
            root: 0,
            stale: 0,
            evals: AtomicU64::new(0),
        };
        tree.rebulk();
        tree
    }

    /// (Re)builds the whole tree structure by bulk-loading the
    /// **live** points; tombstoned rows drop out of the nodes (ids and
    /// the dataset itself are untouched). This is the incremental
    /// path's compaction valve: `remove` calls it once the fraction of
    /// tombstones *in the tree* crosses [`XTree::REBULK_DEAD_FRACTION`],
    /// so the cost amortises to O(log n) per removal while scans never
    /// wade through more than that fraction of dead entries.
    fn rebulk(&mut self) {
        let d = self.dataset.dim();
        self.stale = 0;
        self.nodes.clear();
        let mut ids: Vec<PointId> = self.dataset.live_ids().collect();
        if ids.is_empty() {
            self.nodes.push(Node::Leaf {
                points: Vec::new(),
                mbr: Mbr::unset(d.max(1)),
            });
            self.root = 0;
            return;
        }
        // Height of the balanced tree: leaves hold up to max_leaf,
        // directories up to max_dir children.
        let leaves_needed = ids.len().div_ceil(self.cfg.max_leaf);
        let mut height = 1usize; // leaf level
        let mut reach = 1usize; // leaves reachable from one node at this height
        while reach < leaves_needed {
            reach *= self.cfg.max_dir;
            height += 1;
        }
        self.root = self.bulk_build(&mut ids, height);
    }

    /// Recursively builds a subtree of the given height over `ids`.
    fn bulk_build(&mut self, ids: &mut [PointId], height: usize) -> NodeId {
        let d = self.dataset.dim();
        if height == 1 || ids.len() <= self.cfg.max_leaf {
            let mut mbr = Mbr::unset(d.max(1));
            for &p in ids.iter() {
                if mbr.is_unset() {
                    mbr = Mbr::of_point(self.dataset.row(p));
                } else {
                    mbr.include_point(self.dataset.row(p));
                }
            }
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf {
                points: ids.to_vec(),
                mbr,
            });
            return id;
        }
        // Capacity of one child subtree.
        let child_capacity = self.cfg.max_leaf * self.cfg.max_dir.pow(height as u32 - 2);
        // Split along the dimension of widest spread.
        let mut best_dim = 0;
        let mut best_span = -1.0f64;
        for dim in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &p in ids.iter() {
                let v = self.dataset.get(p, dim);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_span {
                best_span = hi - lo;
                best_dim = dim;
            }
        }
        ids.sort_by(|&a, &b| {
            self.dataset
                .get(a, best_dim)
                .partial_cmp(&self.dataset.get(b, best_dim))
                .expect("finite")
                .then(a.cmp(&b))
        });
        let mut children = Vec::new();
        let mut rest: &mut [PointId] = ids;
        while !rest.is_empty() {
            let take = child_capacity.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            children.push(self.bulk_build(head, height - 1));
            rest = tail;
        }
        let mut mbr = Mbr::unset(d.max(1));
        for &c in &children {
            mbr.merge(self.nodes[c].mbr());
        }
        let id = self.nodes.len();
        self.nodes.push(Node::Dir {
            children,
            mbr,
            split_history: 1u64 << best_dim,
            blocks: 1,
        });
        id
    }

    /// Construction parameters.
    pub fn config(&self) -> XTreeConfig {
        self.cfg
    }

    /// Tombstoned points still held in tree nodes (dropped at the
    /// next bounded re-bulk-load). Exposed so tests can pin the
    /// rebuild cadence.
    pub fn stale_points(&self) -> usize {
        self.stale
    }

    /// Structural statistics of the built tree.
    pub fn stats(&self) -> XTreeStats {
        let mut s = XTreeStats {
            nodes: self.nodes.len(),
            ..Default::default()
        };
        for n in &self.nodes {
            match n {
                Node::Leaf { .. } => s.leaves += 1,
                Node::Dir { blocks, .. } => {
                    if *blocks > 1 {
                        s.supernodes += 1;
                        s.max_supernode_blocks = s.max_supernode_blocks.max(*blocks);
                    }
                }
            }
        }
        s.height = self.height_of(self.root);
        s
    }

    fn height_of(&self, id: NodeId) -> usize {
        match &self.nodes[id] {
            Node::Leaf { .. } => 1,
            Node::Dir { children, .. } => {
                1 + children
                    .iter()
                    .map(|&c| self.height_of(c))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    fn min_fill(&self, capacity: usize) -> usize {
        ((capacity as f64 * self.cfg.min_fill_frac).floor() as usize).max(1)
    }

    fn insert(&mut self, pid: PointId) {
        if let Some(right) = self.insert_rec(self.root, pid) {
            // Root split: grow the tree by one level.
            let left = self.root;
            let mbr = self.nodes[left].mbr().union(self.nodes[right].mbr());
            let new_root = self.nodes.len();
            self.nodes.push(Node::Dir {
                children: vec![left, right],
                mbr,
                split_history: 0,
                blocks: 1,
            });
            self.root = new_root;
        }
    }

    /// Inserts into the subtree at `id`; returns the id of a new right
    /// sibling if the node had to split (the left half stays in `id`).
    fn insert_rec(&mut self, id: NodeId, pid: PointId) -> Option<NodeId> {
        let row: Vec<f64> = self.dataset.row(pid).to_vec();
        match &mut self.nodes[id] {
            Node::Leaf { points, mbr } => {
                points.push(pid);
                if mbr.is_unset() {
                    *mbr = Mbr::of_point(&row);
                } else {
                    mbr.include_point(&row);
                }
                if points.len() > self.cfg.max_leaf {
                    Some(self.split_leaf(id))
                } else {
                    None
                }
            }
            Node::Dir { children, mbr, .. } => {
                // Choose the child needing least area enlargement
                // (ties: smaller area, then smaller id for determinism).
                let children_snapshot = children.clone();
                mbr.include_point(&row);
                let point_box = Mbr::of_point(&row);
                let mut best: Option<(NodeId, f64, f64)> = None;
                for &c in &children_snapshot {
                    let cm = self.nodes[c].mbr();
                    let enl = cm.enlargement(&point_box);
                    let area = cm.area();
                    best = match best {
                        None => Some((c, enl, area)),
                        Some((_, be, ba)) if (enl, area) < (be, ba) => Some((c, enl, area)),
                        other => other,
                    };
                }
                let (chosen, _, _) = best.expect("directory nodes are never empty");
                if let Some(new_right) = self.insert_rec(chosen, pid) {
                    if let Node::Dir { children, .. } = &mut self.nodes[id] {
                        children.push(new_right);
                    }
                    let (len, capacity) = match &self.nodes[id] {
                        Node::Dir {
                            children, blocks, ..
                        } => (children.len(), blocks * self.cfg.max_dir),
                        _ => unreachable!(),
                    };
                    if len > capacity {
                        return self.split_dir(id);
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, id: NodeId) -> NodeId {
        let (points, d) = match &self.nodes[id] {
            Node::Leaf { points, mbr } => (points.clone(), mbr.dim()),
            _ => unreachable!("split_leaf on a directory node"),
        };
        let mbrs: Vec<Mbr> = points
            .iter()
            .map(|&p| Mbr::of_point(self.dataset.row(p)))
            .collect();
        let min_fill = self.min_fill(self.cfg.max_leaf);
        let r = split::topological_split(&mbrs, min_fill, 0);
        let left_pts: Vec<PointId> = r.left.iter().map(|&i| points[i]).collect();
        let right_pts: Vec<PointId> = r.right.iter().map(|&i| points[i]).collect();
        debug_assert_eq!(left_pts.len() + right_pts.len(), points.len());
        let _ = d;
        self.nodes[id] = Node::Leaf {
            points: left_pts,
            mbr: r.left_mbr,
        };
        let right_id = self.nodes.len();
        self.nodes.push(Node::Leaf {
            points: right_pts,
            mbr: r.right_mbr,
        });
        right_id
    }

    /// Splits a directory node or, when the best split overlaps too
    /// much, upgrades it to a supernode (returns `None`).
    fn split_dir(&mut self, id: NodeId) -> Option<NodeId> {
        let (children, history, blocks) = match &self.nodes[id] {
            Node::Dir {
                children,
                split_history,
                blocks,
                ..
            } => (children.clone(), *split_history, *blocks),
            _ => unreachable!("split_dir on a leaf"),
        };
        let mbrs: Vec<Mbr> = children
            .iter()
            .map(|&c| self.nodes[c].mbr().clone())
            .collect();
        let min_fill = self.min_fill(self.cfg.max_dir);
        let r = split::topological_split(&mbrs, min_fill, history);
        if r.overlap_ratio > self.cfg.max_overlap && blocks < self.cfg.max_blocks {
            // X-tree decision: no good split exists — extend the node
            // into (or grow) a supernode instead.
            if let Node::Dir { blocks, .. } = &mut self.nodes[id] {
                *blocks += 1;
            }
            return None;
        }
        let left_children: Vec<NodeId> = r.left.iter().map(|&i| children[i]).collect();
        let right_children: Vec<NodeId> = r.right.iter().map(|&i| children[i]).collect();
        let new_history = history | (1u64 << r.axis);
        self.nodes[id] = Node::Dir {
            children: left_children,
            mbr: r.left_mbr,
            split_history: new_history,
            blocks: 1,
        };
        let right_id = self.nodes.len();
        self.nodes.push(Node::Dir {
            children: right_children,
            mbr: r.right_mbr,
            split_history: new_history,
            blocks: 1,
        });
        Some(right_id)
    }

    /// Validates structural invariants (testing aid): every **live**
    /// point in exactly one leaf, every MBR covers its subtree.
    /// Tombstoned points may still sit in leaves (they are skipped at
    /// query time and dropped at the next re-bulk-load) but must not
    /// appear twice.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.dataset.len()];
        self.check_node(self.root, &mut seen)?;
        if let Some(missing) =
            (0..self.dataset.len()).find(|&i| self.dataset.is_live(i) && !seen[i])
        {
            return Err(format!("live point {missing} not reachable from the root"));
        }
        Ok(())
    }

    fn check_node(&self, id: NodeId, seen: &mut [bool]) -> Result<(), String> {
        match &self.nodes[id] {
            Node::Leaf { points, mbr } => {
                for &p in points {
                    if seen[p] {
                        return Err(format!("point {p} appears in two leaves"));
                    }
                    seen[p] = true;
                    if !mbr.contains_point(self.dataset.row(p)) {
                        return Err(format!("leaf {id} MBR does not cover point {p}"));
                    }
                }
                Ok(())
            }
            Node::Dir { children, mbr, .. } => {
                if children.is_empty() {
                    return Err(format!("directory {id} is empty"));
                }
                for &c in children {
                    let cm = self.nodes[c].mbr();
                    if !cm.is_unset() {
                        let covered = mbr.union(cm);
                        if &covered != mbr {
                            return Err(format!("dir {id} MBR does not cover child {c}"));
                        }
                    }
                    self.check_node(c, seen)?;
                }
                Ok(())
            }
        }
    }
}

/// Finite f64 ordering wrapper for priority queues.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("finite distance")
    }
}

impl KnnEngine for XTree {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn into_dataset(self: Box<Self>) -> Dataset {
        self.dataset
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        if k == 0 || self.dataset.is_empty() {
            return Vec::new();
        }
        let mut evals = 0u64;
        // Max-heap of the best k candidates by pre-distance.
        let mut best: BinaryHeap<(OrdF64, PointId)> = BinaryHeap::with_capacity(k + 1);
        // Min-heap of frontier nodes by MINDIST.
        let mut frontier: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
        frontier.push(Reverse((
            OrdF64(
                self.nodes[self.root]
                    .mbr()
                    .mindist_pre(query, s, self.metric),
            ),
            self.root,
        )));
        while let Some(Reverse((OrdF64(mind), id))) = frontier.pop() {
            if best.len() == k {
                let worst = best.peek().expect("k > 0").0 .0;
                if mind > worst {
                    break; // every remaining node is farther than the kth NN
                }
            }
            match &self.nodes[id] {
                Node::Leaf { points, .. } => {
                    for &p in points {
                        if Some(p) == exclude || !self.dataset.is_live(p) {
                            continue;
                        }
                        let pre = self.metric.pre_dist_sub(query, self.dataset.row(p), s);
                        evals += 1;
                        if best.len() < k {
                            best.push((OrdF64(pre), p));
                        } else if (OrdF64(pre), p) < *best.peek().expect("k > 0") {
                            // Full (pre, id) eviction order — the same
                            // tie-break as TopK — so the kept set is
                            // independent of traversal order and thus
                            // of tree structure; X-tree neighbour
                            // lists equal LinearScan's bit for bit.
                            best.pop();
                            best.push((OrdF64(pre), p));
                        }
                    }
                }
                Node::Dir { children, .. } => {
                    for &c in children {
                        let cm = self.nodes[c].mbr();
                        if cm.is_unset() {
                            continue;
                        }
                        let cd = cm.mindist_pre(query, s, self.metric);
                        if best.len() < k || cd <= best.peek().expect("k > 0").0 .0 {
                            frontier.push(Reverse((OrdF64(cd), c)));
                        }
                    }
                }
            }
        }
        self.evals.fetch_add(evals, AtomicOrdering::Relaxed);
        let mut out: Vec<Neighbor> = best
            .into_iter()
            .map(|(OrdF64(pre), id)| Neighbor {
                id,
                dist: self.metric.finish(pre),
            })
            .collect();
        out.sort_by(|a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        });
        out
    }

    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        if self.dataset.is_empty() {
            return Vec::new();
        }
        let pre_radius = self.metric.pre_of(radius);
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        let mut evals = 0u64;
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Leaf { points, .. } => {
                    for &p in points {
                        if Some(p) == exclude || !self.dataset.is_live(p) {
                            continue;
                        }
                        evals += 1;
                        let d = self.metric.dist_sub(query, self.dataset.row(p), s);
                        if d <= radius {
                            out.push(Neighbor { id: p, dist: d });
                        }
                    }
                }
                Node::Dir { children, .. } => {
                    for &c in children {
                        let cm = self.nodes[c].mbr();
                        if !cm.is_unset() && cm.mindist_pre(query, s, self.metric) <= pre_radius {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        self.evals.fetch_add(evals, AtomicOrdering::Relaxed);
        out
    }

    fn distance_evals(&self) -> u64 {
        self.evals.load(AtomicOrdering::Relaxed)
    }

    fn as_incremental(&mut self) -> Option<&mut dyn IncrementalEngine> {
        Some(self)
    }
}

impl XTree {
    /// Removals trigger a re-bulk-load once tombstones reach a quarter
    /// of the points *held in the tree* (live + not-yet-dropped dead):
    /// scans then never wade through more than 25% dead leaf entries,
    /// and the O(n log n) rebuild amortises to O(log n) per removal.
    /// The gate counts tombstones since the last rebuild — not the
    /// dataset's cumulative dead count, which never resets here and
    /// would re-trigger a full rebuild on every removal once crossed.
    pub const REBULK_DEAD_FRACTION: f64 = 0.25;
}

/// Incremental maintenance for the X-tree.
///
/// * **Insert** — the native R*-style insertion path (`choose
///   subtree → split or supernode`), exactly the routine sequential
///   [`XTree::build`] uses per point.
/// * **Remove** — tombstone; leaf scans skip dead points (their MBRs
///   stay conservative, so the MINDIST bounds stay valid), and a
///   bounded re-bulk-load rebuilds the structure over the live points
///   once the dead fraction crosses [`XTree::REBULK_DEAD_FRACTION`].
///
/// Either way, queries stay exact: best-first search with valid lower
/// bounds plus the full `(distance, id)` eviction order returns the
/// true top-k regardless of tree shape, which is why incremental
/// results match a cold rebuild bit for bit.
impl IncrementalEngine for XTree {
    fn insert(&mut self, row: &[f64]) -> Result<PointId, IndexError> {
        validate_insert(&self.dataset, row)?;
        let was_dimless = self.dataset.dim() == 0;
        let pid = self.dataset.push_row(row)?;
        if was_dimless {
            // First row fixed the arity: the placeholder root leaf has
            // the wrong MBR dimensionality, so rebuild from scratch.
            self.rebulk();
        } else {
            self.insert(pid);
        }
        Ok(pid)
    }

    fn remove(&mut self, id: PointId) -> Result<(), IndexError> {
        validate_remove(&self.dataset, id)?;
        self.dataset.remove_row(id)?;
        self.stale += 1;
        let in_tree = (self.dataset.live_len() + self.stale) as f64;
        if self.stale as f64 >= Self::REBULK_DEAD_FRACTION * in_tree {
            self.rebulk();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(0.0..100.0)).collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn empty_and_tiny_trees() {
        let t = XTree::build(Dataset::empty(), Metric::L2, XTreeConfig::default());
        assert!(t.knn(&[], 3, Subspace::empty(), None).is_empty());
        let one = Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let t = XTree::build(one, Metric::L2, XTreeConfig::default());
        let nn = t.knn(&[0.0, 0.0], 5, Subspace::full(2), None);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].id, 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_after_many_inserts() {
        for seed in 0..3 {
            let ds = random_dataset(500, 6, seed);
            let t = XTree::build(ds, Metric::L2, XTreeConfig::default());
            t.check_invariants().unwrap();
            let s = t.stats();
            assert!(s.height >= 2, "stats {s:?}");
            assert!(s.leaves > 1);
        }
    }

    #[test]
    fn knn_matches_linear_scan_full_space() {
        let ds = random_dataset(400, 5, 7);
        let t = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
        let lin = LinearScan::new(ds, Metric::L2);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let q: Vec<f64> = (0..5).map(|_| rng.gen_range(0.0..100.0)).collect();
            let a = t.knn(&q, 7, Subspace::full(5), None);
            let b = lin.knn(&q, 7, Subspace::full(5), None);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert!((x.dist - y.dist).abs() < 1e-9, "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan_subspaces() {
        let ds = random_dataset(300, 8, 3);
        for metric in [Metric::L1, Metric::L2, Metric::LInf] {
            let t = XTree::build(ds.clone(), metric, XTreeConfig::default());
            let lin = LinearScan::new(ds.clone(), metric);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..10 {
                let q: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..100.0)).collect();
                let mask = rng.gen_range(1u64..(1 << 8));
                let s = Subspace::from_mask(mask);
                let a = t.knn(&q, 5, s, None);
                let b = lin.knn(&q, 5, s, None);
                for (x, y) in a.iter().zip(&b) {
                    assert!(
                        (x.dist - y.dist).abs() < 1e-9,
                        "metric {metric:?} subspace {s}: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exclusion_respected() {
        let ds = random_dataset(100, 3, 1);
        let t = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
        let q: Vec<f64> = ds.row(42).to_vec();
        let nn = t.knn(&q, 3, Subspace::full(3), Some(42));
        assert!(nn.iter().all(|n| n.id != 42));
        // Without exclusion the point finds itself at distance 0.
        let nn2 = t.knn(&q, 1, Subspace::full(3), None);
        assert_eq!(nn2[0].id, 42);
        assert_eq!(nn2[0].dist, 0.0);
    }

    #[test]
    fn range_matches_linear_scan() {
        let ds = random_dataset(300, 4, 11);
        let t = XTree::build(ds.clone(), Metric::L1, XTreeConfig::default());
        let lin = LinearScan::new(ds, Metric::L1);
        let q = [50.0, 50.0, 50.0, 50.0];
        for s in [Subspace::full(4), Subspace::from_dims(&[1, 3])] {
            for radius in [5.0, 20.0, 60.0] {
                let mut a: Vec<_> = t.range(&q, radius, s, None).iter().map(|n| n.id).collect();
                let mut b: Vec<_> = lin
                    .range(&q, radius, s, None)
                    .iter()
                    .map(|n| n.id)
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "radius {radius} subspace {s}");
            }
        }
    }

    #[test]
    fn clustered_data_produces_supernodes_or_clean_tree() {
        // Heavily overlapping high-d data: the X-tree must survive and
        // stay correct; supernodes may or may not appear depending on
        // geometry, but invariants always hold.
        let mut rng = StdRng::seed_from_u64(21);
        let d = 12;
        let n = 800;
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(0.0..1.0)).collect();
        let ds = Dataset::from_flat(flat, d).unwrap();
        let t = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
        t.check_invariants().unwrap();
        let lin = LinearScan::new(ds, Metric::L2);
        let q = vec![0.5; d];
        let a = t.knn(&q, 10, Subspace::full(d), None);
        let b = lin.knn(&q, 10, Subspace::full(d), None);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_reduces_distance_evals_on_low_dim_queries() {
        let ds = random_dataset(4000, 8, 17);
        let t = XTree::build(ds.clone(), Metric::L2, XTreeConfig::default());
        let q: Vec<f64> = ds.row(0).to_vec();
        let before = t.distance_evals();
        t.knn(&q, 5, Subspace::full(8), None);
        let used = t.distance_evals() - before;
        assert!(
            used < 4000,
            "X-tree looked at every point ({used} evals) — no pruning at all"
        );
    }

    #[test]
    fn stats_reflect_structure() {
        let ds = random_dataset(2000, 4, 23);
        let t = XTree::build(ds, Metric::L2, XTreeConfig::default());
        let s = t.stats();
        assert_eq!(s.nodes, t.nodes.len());
        assert!(s.height >= 2);
        assert!(s.leaves >= 2000 / 33);
    }

    #[test]
    fn bulk_load_matches_insertion_build() {
        for (n, d) in [(0usize, 3usize), (1, 3), (40, 3), (700, 6), (3000, 10)] {
            let ds = random_dataset(n, d, n as u64 + d as u64);
            let bulk = XTree::bulk_load(ds.clone(), Metric::L2, XTreeConfig::default());
            bulk.check_invariants().unwrap();
            let lin = LinearScan::new(ds.clone(), Metric::L2);
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..8 {
                let q: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..100.0)).collect();
                let mask = rng.gen_range(1u64..(1 << d));
                let s = Subspace::from_mask(mask);
                let a = bulk.knn(&q, 5, s, None);
                let b = lin.knn(&q, 5, s, None);
                assert_eq!(a.len(), b.len(), "n={n}");
                for (x, y) in a.iter().zip(&b) {
                    assert!((x.dist - y.dist).abs() < 1e-9, "n={n} {s}");
                }
            }
        }
    }

    #[test]
    fn bulk_load_is_balanced_and_supernode_free() {
        let ds = random_dataset(5000, 8, 77);
        let bulk = XTree::bulk_load(ds.clone(), Metric::L2, XTreeConfig::default());
        let s = bulk.stats();
        assert_eq!(s.supernodes, 0);
        // Balanced height: ceil(log_16(ceil(5000/32))) + 1 = 3.
        assert!(s.height <= 3, "bulk height {}", s.height);
        let inserted = XTree::build(ds, Metric::L2, XTreeConfig::default());
        assert!(s.height <= inserted.stats().height);
    }

    #[test]
    fn rebulk_cadence_is_bounded_not_per_removal() {
        // Regression: the rebuild gate counts tombstones in the TREE
        // (reset by each re-bulk-load), not the dataset's cumulative
        // dead count — otherwise, once the dead fraction crossed 25%,
        // every later removal would rebuild the whole tree.
        let ds = random_dataset(400, 4, 31);
        let mut t = XTree::build(ds, Metric::L2, XTreeConfig::default());
        let mut rebuilds = 0usize;
        let mut gaps_without_rebuild = 0usize;
        let mut prev_stale = 0usize;
        for id in 0..300usize {
            IncrementalEngine::remove(&mut t, id).unwrap();
            if t.stale_points() == 0 {
                rebuilds += 1;
            } else {
                assert_eq!(
                    t.stale_points(),
                    prev_stale + 1,
                    "stale must only grow by 1"
                );
                gaps_without_rebuild += 1;
            }
            prev_stale = t.stale_points();
            t.check_invariants().unwrap();
        }
        // Far fewer rebuilds than removals, and plenty of removals
        // that did not rebuild — the amortisation actually happens.
        assert!(rebuilds >= 2, "gate never fired: {rebuilds}");
        assert!(
            rebuilds <= 20,
            "rebuilding nearly every removal: {rebuilds} rebuilds / 300 removals"
        );
        assert!(gaps_without_rebuild > 250);
        // Queries stay exact throughout (spot check at the end).
        let lin = LinearScan::new(t.dataset().clone(), Metric::L2);
        let q: Vec<f64> = t.dataset().row(350).to_vec();
        assert_eq!(
            t.knn(&q, 5, Subspace::full(4), Some(350)),
            lin.knn(&q, 5, Subspace::full(4), Some(350))
        );
    }

    #[test]
    #[should_panic]
    fn config_validation() {
        let _ = XTree::build(
            Dataset::empty(),
            Metric::L2,
            XTreeConfig {
                max_leaf: 1,
                ..XTreeConfig::default()
            },
        );
    }
}
