//! Exact sharded query execution: intra-query parallelism across data
//! partitions.
//!
//! The dynamic search parallelises *across* subspaces and queries, but
//! a single k-NN query still scans one monolithic dataset on one core.
//! [`ShardedEngine`] splits the dataset into `s` contiguous row shards
//! ([`Dataset::shard`], global [`PointId`]s preserved), builds one
//! sub-engine per shard, fans every query over the shards with
//! [`crate::batch::parallel_map`], and merges the per-shard top-k
//! lists exactly.
//!
//! # Why the merge is lossless
//!
//! If point `p` is among the `k` nearest neighbours of the query over
//! the whole dataset, it is among the `k` nearest within its own shard
//! (a shard holds a subset of the points, so at most `k - 1` shard
//! members can beat `p`). The union of per-shard top-`k` lists
//! therefore contains the global top-`k`, and re-selecting `k` from
//! the union — with the same [`crate::topk::TopK`] `(distance, id)`
//! tie-break used everywhere else — yields exactly the global list.
//! Per-point distances are computed by the same code over the same
//! row bytes whichever shard a point lands in, and OD sums the merged
//! list in the same ascending `(distance, id)` order as the unsharded
//! engine, so ODs are **bit-identical**, not just close. (Ordering by
//! finished distance equals ordering by pre-metric distance because
//! every [`Metric::finish`] is strictly monotone.) The property tests
//! in `tests/properties.rs` pin this with `assert_eq!` across shard
//! counts, metrics and engines.
//!
//! # Evaluator
//!
//! [`ShardedEngine::evaluator`] returns a sharded
//! [`OdEvaluator`]: each shard keeps its **own** lazy
//! [`QueryContext`] (the same `2d` cumulative-dimensionality breakeven
//! as the unsharded evaluator, applied to the summed shard matrices),
//! and each OD is a k-way merge of per-shard cached top-k lists. Large
//! batches parallelise across subspaces; small batches parallelise
//! across shards — so a single full-space OD query also uses every
//! core, which is precisely what the unsharded engine cannot do.

use crate::batch::{parallel_map, parallel_map_mut};
use crate::context::QueryContext;
use crate::error::{validate_insert, validate_remove, IndexError};
use crate::evaluator::OdEvaluator;
use crate::knn::{build_engine, Engine, IncrementalEngine, KnnEngine, Neighbor};
use crate::topk::TopK;
use crate::walker::{walk_order, PrefixStack};
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

/// One data shard: a sub-engine over a contiguous base row slice
/// (`offset .. offset + base_len` in global ids) plus the global ids
/// of rows routed here by later inserts (`extra`, one per local id
/// `base_len..`). Global ids only grow, and each insert appends to
/// exactly one shard, so `extra` is always sorted — the global→local
/// translation stays a range check plus a binary search.
struct Shard {
    engine: Box<dyn KnnEngine>,
    offset: PointId,
    /// Rows the shard was built with (its contiguous global range).
    base_len: usize,
    /// Global ids of rows inserted after the build, in local id order.
    extra: Vec<PointId>,
}

impl Shard {
    /// The global id of one of this shard's local row ids.
    #[inline]
    fn global_of(&self, local: PointId) -> PointId {
        if local < self.base_len {
            self.offset + local
        } else {
            self.extra[local - self.base_len]
        }
    }

    /// The local row id owning global id `g`, if this shard owns it.
    fn local_of(&self, g: PointId) -> Option<PointId> {
        if g >= self.offset && g < self.offset + self.base_len {
            return Some(g - self.offset);
        }
        self.extra.binary_search(&g).ok().map(|i| self.base_len + i)
    }

    /// Translates a global exclusion id into this shard's local id
    /// space (None if the excluded point lives elsewhere).
    fn local_exclude(&self, exclude: Option<PointId>) -> Option<PointId> {
        exclude.and_then(|g| self.local_of(g))
    }

    /// The shard's top-k for one subspace, with **global** ids and
    /// finished distances — via the shard's own query context when one
    /// is supplied, the sub-engine otherwise. Either path returns the
    /// same values bit for bit (pinned by the context equivalence
    /// tests).
    fn topk(
        &self,
        ctx: Option<&QueryContext<'_>>,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        let local = self.local_exclude(exclude);
        let mut list = match ctx {
            Some(ctx) => ctx.knn(k, s, local),
            None => self.engine.knn(query, k, s, local),
        };
        for n in &mut list {
            n.id = self.global_of(n.id);
        }
        list
    }
}

/// Re-selects the global top-`k` from per-shard top-`k` lists using
/// the shared `(distance, id)` tie-break, ascending.
fn merge_topk(k: usize, lists: &[Vec<Neighbor>]) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for list in lists {
        for n in list {
            top.offer(n.dist, n.id);
        }
    }
    top.into_sorted()
        .into_iter()
        .map(|c| Neighbor {
            id: c.id,
            dist: c.pre,
        })
        .collect()
}

/// A [`KnnEngine`] that answers every query by fanning it over
/// per-shard sub-engines and exactly merging the partial results.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{Engine, KnnEngine, LinearScan, ShardedEngine};
///
/// let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
/// let ds = Dataset::from_rows(&rows).unwrap();
/// let sharded = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, 4, 2);
/// let linear = LinearScan::new(ds, Metric::L2);
/// let s = Subspace::full(2);
/// // Bit-identical to the unsharded engine:
/// assert_eq!(sharded.knn(&[3.0, 3.0], 5, s, None), linear.knn(&[3.0, 3.0], 5, s, None));
/// assert_eq!(sharded.od(&[3.0, 3.0], 5, s, None), linear.od(&[3.0, 3.0], 5, s, None));
/// ```
pub struct ShardedEngine {
    /// The full dataset (the [`KnnEngine::dataset`] contract); shards
    /// hold their own row copies.
    dataset: Dataset,
    metric: Metric,
    shards: Vec<Shard>,
    /// Worker threads for the per-shard fan-out. Atomic so
    /// [`KnnEngine::set_threads`] can retune a built engine (the
    /// `HosMiner` facade forwards its own `set_threads` here).
    threads: AtomicUsize,
}

impl ShardedEngine {
    /// Partitions `dataset` into `shards` contiguous slices
    /// ([`Dataset::shard`]; the count is clamped to `1..=n`) and
    /// builds one `inner`-kind sub-engine per shard. `threads` bounds
    /// the per-query shard fan-out (clamped to at least 1).
    pub fn build(
        dataset: Dataset,
        metric: Metric,
        inner: Engine,
        shards: usize,
        threads: usize,
    ) -> Self {
        let parts = dataset.shard(shards);
        let shards = parts
            .into_iter()
            .map(|p| Shard {
                offset: p.offset,
                base_len: p.dataset.len(),
                extra: Vec::new(),
                engine: build_engine(inner, p.dataset, metric),
            })
            .collect();
        ShardedEngine {
            dataset,
            metric,
            shards,
            threads: AtomicUsize::new(threads.max(1)),
        }
    }

    /// Number of shards actually built (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-query shard fan-out width.
    pub fn threads(&self) -> usize {
        self.threads.load(AtomicOrdering::Relaxed)
    }

    /// Per-shard top-k lists for one subspace, fanned across up to
    /// `threads` workers.
    fn fan_topk(
        &self,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
        threads: usize,
    ) -> Vec<Vec<Neighbor>> {
        parallel_map(&self.shards, threads, |sh| {
            sh.topk(None, query, k, s, exclude)
        })
    }
}

impl KnnEngine for ShardedEngine {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn into_dataset(self: Box<Self>) -> Dataset {
        self.dataset
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        if k == 0 || self.dataset.is_empty() {
            return Vec::new();
        }
        let lists = self.fan_topk(query, k, s, exclude, self.threads());
        merge_topk(k, &lists)
    }

    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        let lists = parallel_map(&self.shards, self.threads(), |sh| {
            let mut list = sh.engine.range(query, radius, s, sh.local_exclude(exclude));
            for n in &mut list {
                n.id = sh.global_of(n.id);
            }
            list
        });
        lists.into_iter().flatten().collect()
    }

    fn distance_evals(&self) -> u64 {
        self.shards
            .iter()
            .map(|sh| sh.engine.distance_evals())
            .sum()
    }

    fn set_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), AtomicOrdering::Relaxed);
    }

    fn set_search_width(&self, ef: usize) {
        for sh in &self.shards {
            sh.engine.set_search_width(ef);
        }
    }

    fn search_width(&self) -> Option<usize> {
        self.shards.iter().find_map(|sh| sh.engine.search_width())
    }

    // No whole-dataset query context: a single `n x d` matrix would
    // serialise exactly the work sharding exists to spread. The
    // sharded evaluator below builds one context *per shard* instead.

    fn as_incremental(&mut self) -> Option<&mut dyn IncrementalEngine> {
        Some(self)
    }

    fn evaluator<'a>(
        &'a self,
        query: &'a [f64],
        k: usize,
        exclude: Option<PointId>,
    ) -> Box<dyn OdEvaluator + 'a> {
        Box::new(ShardedOdEvaluator {
            shards: &self.shards,
            query,
            k,
            exclude,
            shard_threads: self.threads(),
            d: self.dataset.dim(),
            ctxs: None,
            ctx_pending: true,
            dims_evaluated: 0,
            stacks: self.shards.iter().map(|_| PrefixStack::new()).collect(),
            order: Vec::new(),
            merge: TopK::new(k),
            extra_visits: 0,
        })
    }
}

/// The sharded [`OdEvaluator`]: per-shard lazy query contexts plus the
/// exact k-way merge. Single ODs fan across the shards; cached batches
/// run the prefix-stack kernel **per shard** (one [`PrefixStack`] and
/// one walk over the batch per shard, shards in parallel), so sharded
/// lattice queries get the same `O(n/shards)`-per-node cost the
/// unsharded walker gets over `n`.
struct ShardedOdEvaluator<'a> {
    shards: &'a [Shard],
    query: &'a [f64],
    k: usize,
    exclude: Option<PointId>,
    /// Shard fan-out width for single-OD calls (from the engine).
    shard_threads: usize,
    d: usize,
    /// One lazy context per shard, slot `i` for shard `i`; `None`
    /// until the breakeven, `Some(vec)` after (slots stay `None` for
    /// sub-engines without a context, e.g. X-tree).
    ctxs: Option<Vec<Option<QueryContext<'a>>>>,
    ctx_pending: bool,
    dims_evaluated: usize,
    /// One prefix stack per shard, reused across batches.
    stacks: Vec<PrefixStack>,
    /// Reused walk-order index scratch.
    order: Vec<usize>,
    /// Reused merge heap for the per-subspace k-way re-selection.
    merge: TopK,
    /// Node visits performed by throwaway per-segment stacks on the
    /// oversubscribed parallel path (the persistent per-shard stacks
    /// count their own).
    extra_visits: u64,
}

impl ShardedOdEvaluator<'_> {
    /// Same cumulative-`2d` amortisation model as the unsharded
    /// [`crate::evaluator::LazyContextEvaluator`]: the shard matrices
    /// sum to the one `n x d` build the model prices.
    fn note_dims(&mut self, dims: usize) {
        self.dims_evaluated += dims;
        if self.ctx_pending && self.dims_evaluated > 2 * self.d {
            // The builds are the biggest one-time cost on this path
            // (together one full n x d pass): fan them over the shards
            // like every query. (Mapped over `&'a Shard` refs so the
            // returned contexts keep the evaluator's lifetime rather
            // than the worker closure's.)
            let query = self.query;
            let shard_refs: Vec<&Shard> = self.shards.iter().collect();
            self.ctxs = Some(parallel_map(&shard_refs, self.shard_threads, |sh| {
                sh.engine.query_context(query)
            }));
            self.ctx_pending = false;
        }
    }

    /// One OD: per-shard top-k (cached where available), exact merge,
    /// sum in ascending `(distance, id)` order — the unsharded
    /// summation order. `threads` bounds the shard fan-out.
    fn od_merged(&self, s: Subspace, threads: usize) -> f64 {
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let lists = parallel_map(&indices, threads, |&i| {
            let ctx = self.ctxs.as_ref().and_then(|c| c[i].as_ref());
            self.shards[i].topk(ctx, self.query, self.k, s, self.exclude)
        });
        merge_topk(self.k, &lists).iter().map(|n| n.dist).sum()
    }
}

impl OdEvaluator for ShardedOdEvaluator<'_> {
    fn od(&mut self, s: Subspace) -> f64 {
        self.note_dims(s.dim());
        self.od_merged(s, self.shard_threads)
    }

    fn od_batch(&mut self, subspaces: &[Subspace], threads: usize) -> Vec<f64> {
        if subspaces.is_empty() {
            return Vec::new();
        }
        self.note_dims(subspaces.iter().map(|s| s.dim()).sum());
        if self.ctxs.is_some() {
            return self.od_batch_walked(subspaces, threads);
        }
        if subspaces.len() >= threads.max(1) {
            // Uncached phase, wide batch: enough subspaces to saturate
            // the workers on their own; nested shard fan-out would
            // only oversubscribe.
            let this = &*self;
            parallel_map(subspaces, threads, |&s| this.od_merged(s, 1))
        } else {
            // Uncached phase, few subspaces (e.g. the last open
            // level): spread each one across the shards instead.
            subspaces
                .iter()
                .map(|&s| self.od_merged(s, threads))
                .collect()
        }
    }

    fn node_visits(&self) -> u64 {
        // Summed across shards: each shard's fold streams its own
        // `n / shards` rows, so the total O(n)-equivalent work is the
        // sum divided by the shard count.
        self.stacks.iter().map(|s| s.node_visits()).sum::<u64>() + self.extra_visits
    }
}

/// Walk-order positions per block in the cached sharded batch path:
/// bounds the per-shard top-k lists held at once to `shards × BLOCK`
/// instead of `shards × batch`.
const WALK_BLOCK: usize = 256;

impl ShardedOdEvaluator<'_> {
    /// One shard's top-k for one subspace inside a walked batch, with
    /// global ids: through the shard's prefix stack when a context
    /// exists, through the sub-engine's own search otherwise.
    /// Bit-identical to [`Shard::topk`] either way — same candidates,
    /// same `(pre, id)` selection.
    fn lane_topk(
        shard: &Shard,
        ctx: Option<&QueryContext<'_>>,
        stack: &mut PrefixStack,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        match ctx {
            Some(ctx) => {
                stack.seek(ctx, s);
                let mut list = stack.knn(ctx, k, shard.local_exclude(exclude));
                for n in &mut list {
                    n.id = shard.global_of(n.id);
                }
                list
            }
            // Context-less sub-engine (e.g. X-tree): the engine's own
            // pruning search, as before.
            None => shard.topk(None, query, k, s, exclude),
        }
    }

    /// The cached batch path: every shard walks the batch in walker
    /// order with its own prefix stack, shards in parallel; when more
    /// threads than shards are available, each block additionally
    /// splits into per-shard sub-segments on throwaway stacks (the
    /// same trade the unsharded parallel path makes), so `--threads`
    /// beyond the shard count still buys parallelism. The walk is
    /// processed in [`WALK_BLOCK`]-sized blocks so at most
    /// `shards × block` top-k lists are alive at once; per-shard
    /// persistent stacks survive across blocks, keeping prefix sharing
    /// intact at block boundaries. The exact `(distance, id)` k-way
    /// merge then reduces each subspace and results scatter back into
    /// input order. Bit-identical to `od_merged` per subspace — same
    /// per-shard candidates, same merge, same summation order.
    fn od_batch_walked(&mut self, subspaces: &[Subspace], threads: usize) -> Vec<f64> {
        walk_order(subspaces, &mut self.order);
        let (k, exclude, query) = (self.k, self.exclude, self.query);
        let ctxs = self.ctxs.as_ref().expect("cached phase");
        let nshards = self.shards.len();
        let width = threads.max(1);
        // Sub-segments per shard per block when oversubscribed
        // (width > shards); 1 keeps the persistent-stack fast path.
        // Blocks stay WALK_BLOCK positions either way — splitting
        // *within* the block preserves the shards × WALK_BLOCK memory
        // bound under any thread count.
        let subsplit = width.div_ceil(nshards).min(WALK_BLOCK);
        let mut out = vec![0.0f64; subspaces.len()];
        let block_len = WALK_BLOCK;

        let mut lanes: Vec<(&Shard, Option<&QueryContext<'_>>, &mut PrefixStack)> = self
            .shards
            .iter()
            .zip(ctxs)
            .zip(&mut self.stacks)
            .map(|((shard, ctx), stack)| (shard, ctx.as_ref(), stack))
            .collect();

        let mut block_start = 0usize;
        while block_start < self.order.len() {
            let block = &self.order[block_start..(block_start + block_len).min(self.order.len())];
            // Per-shard lists for this block, slot `s * block.len() + p`.
            let per_shard: Vec<Vec<Neighbor>> = if subsplit <= 1 {
                let rows = parallel_map_mut(&mut lanes, width, |(shard, ctx, stack)| {
                    block
                        .iter()
                        .map(|&i| {
                            Self::lane_topk(shard, *ctx, stack, query, k, subspaces[i], exclude)
                        })
                        .collect::<Vec<Vec<Neighbor>>>()
                });
                rows.into_iter().flatten().collect()
            } else {
                // Oversubscribed: (shard, sub-segment) tasks with
                // throwaway stacks — allocation returns exactly where
                // extra threads were requested.
                let seg = block.len().div_ceil(subsplit).max(1);
                let mut tasks: Vec<(usize, usize)> = Vec::new();
                for s in 0..nshards {
                    for (j, _) in block.chunks(seg).enumerate() {
                        tasks.push((s, j));
                    }
                }
                let shards = self.shards;
                let results = parallel_map(&tasks, width, |&(s, j)| {
                    let shard = &shards[s];
                    let ctx = ctxs[s].as_ref();
                    let mut stack = PrefixStack::new();
                    let segment = &block[j * seg..((j + 1) * seg).min(block.len())];
                    let lists: Vec<Vec<Neighbor>> = segment
                        .iter()
                        .map(|&i| {
                            Self::lane_topk(shard, ctx, &mut stack, query, k, subspaces[i], exclude)
                        })
                        .collect();
                    (s, j * seg, lists, stack.node_visits())
                });
                let mut flat: Vec<Vec<Neighbor>> = vec![Vec::new(); nshards * block.len()];
                for (s, start, lists, visits) in results {
                    self.extra_visits += visits;
                    for (off, list) in lists.into_iter().enumerate() {
                        flat[s * block.len() + start + off] = list;
                    }
                }
                flat
            };

            for (pos, &i) in block.iter().enumerate() {
                self.merge.reset(k);
                for s in 0..nshards {
                    for n in &per_shard[s * block.len() + pos] {
                        self.merge.offer(n.dist, n.id);
                    }
                }
                // Ordering by finished distance equals ordering by
                // pre-metric distance (Metric::finish is strictly
                // monotone), and the sum runs in the same ascending
                // (distance, id) order as the unsharded engine.
                out[i] = self.merge.sorted().iter().map(|c| c.pre).sum();
            }
            block_start += block.len();
        }
        out
    }
}

/// Incremental maintenance by per-shard routing.
///
/// Every global id has exactly one owning shard: its contiguous base
/// range, or the shard an insert was routed to (tracked in
/// [`Shard::extra`]).
///
/// * **Insert** — routed to the **least-loaded** shard by live row
///   count (ties to the lowest shard index, for determinism), so
///   long-running streams keep the shards balanced and the per-query
///   fan-out keeps its speedup. Correctness never depended on the
///   placement — the top-k merge is lossless for *any* partition of
///   the points — but the old route-to-last policy ground parallel
///   efficiency down as one shard absorbed the whole stream. The row
///   is appended to both the engine-level dataset (which issues the
///   global id) and the chosen shard's sub-engine.
/// * **Remove** — routed to the owning shard; tombstoned in both the
///   sub-engine and the engine-level dataset (which the `dataset()`
///   contract and `try_knn`'s live-count validation read).
impl IncrementalEngine for ShardedEngine {
    fn insert(&mut self, row: &[f64]) -> Result<PointId, IndexError> {
        validate_insert(&self.dataset, row)?;
        let shard = self
            .shards
            .iter_mut()
            .min_by_key(|sh| sh.engine.dataset().live_len())
            .expect("at least one shard");
        let local = shard
            .engine
            .as_incremental()
            .ok_or(IndexError::Immutable("sharded sub-engine"))?
            .insert(row)?;
        let global = self
            .dataset
            .push_row(row)
            .expect("row validated before insert");
        debug_assert_eq!(local, shard.base_len + shard.extra.len());
        shard.extra.push(global);
        Ok(global)
    }

    fn remove(&mut self, id: PointId) -> Result<(), IndexError> {
        validate_remove(&self.dataset, id)?;
        let (shard, local) = self
            .shards
            .iter_mut()
            .find_map(|sh| sh.local_of(id).map(|local| (sh, local)))
            .expect("every id has an owning shard");
        shard
            .engine
            .as_incremental()
            .ok_or(IndexError::Immutable("sharded sub-engine"))?
            .remove(local)?;
        self.dataset
            .remove_row(id)
            .expect("id validated before removal");
        Ok(())
    }
}

/// Builds either a plain engine (`shards <= 1`) or a [`ShardedEngine`]
/// wrapping `shards` sub-engines of the chosen kind — the one
/// constructor configs and CLIs need.
pub fn build_engine_sharded(
    engine: Engine,
    dataset: Dataset,
    metric: Metric,
    shards: usize,
    threads: usize,
) -> Box<dyn KnnEngine> {
    if shards <= 1 {
        build_engine(engine, dataset, metric)
    } else {
        Box::new(ShardedEngine::build(
            dataset, metric, engine, shards, threads,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        // Coarse grid values force plenty of distance ties, so the
        // (distance, id) merge tie-break is actually exercised.
        let flat: Vec<f64> = (0..n * d)
            .map(|_| (rng.gen_range(0..8) as f64) * 0.5)
            .collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn knn_and_od_bit_identical_to_linear_scan() {
        let d = 4;
        let ds = dataset(90, d, 1);
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let linear = LinearScan::new(ds.clone(), metric);
            for shards in [1, 2, 3, 5, 8] {
                let sharded = ShardedEngine::build(ds.clone(), metric, Engine::Linear, shards, 2);
                for qid in [0usize, 17, 89] {
                    let q: Vec<f64> = ds.row(qid).to_vec();
                    for s in Subspace::all_nonempty(d) {
                        assert_eq!(
                            sharded.knn(&q, 6, s, Some(qid)),
                            linear.knn(&q, 6, s, Some(qid)),
                            "{metric:?} shards={shards} {s}"
                        );
                        assert_eq!(
                            sharded.od(&q, 6, s, Some(qid)),
                            linear.od(&q, 6, s, Some(qid)),
                            "{metric:?} shards={shards} {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn evaluator_matches_unsharded_through_both_phases() {
        // Batch enough dimensionality that the per-shard contexts
        // build mid-stream; every OD must still equal the unsharded
        // engine's bit for bit.
        let d = 5;
        let ds = dataset(120, d, 2);
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        let reference: Vec<f64> = subspaces
            .iter()
            .map(|&s| linear.od(ds.row(7), 5, s, Some(7)))
            .collect();
        for shards in [2, 4, 7] {
            let engine = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, shards, 3);
            let q: Vec<f64> = ds.row(7).to_vec();
            let mut ev = engine.evaluator(&q, 5, Some(7));
            // Single calls first (uncached), then a big batch (cached).
            for (i, &s) in subspaces.iter().take(3).enumerate() {
                assert_eq!(ev.od(s), reference[i], "shards={shards} single {s}");
            }
            for threads in [1, 4] {
                assert_eq!(
                    ev.od_batch(&subspaces, threads),
                    reference,
                    "shards={shards} threads={threads}"
                );
            }
            // Small batch takes the shard-parallel branch.
            assert_eq!(ev.od_batch(&subspaces[..2], 8), reference[..2]);
        }
    }

    #[test]
    fn walked_batch_blocks_and_oversubscription_stay_exact() {
        // d = 9: 511 subspaces — more than one WALK_BLOCK, so the
        // blocked loop crosses a boundary; threads > shards exercises
        // the throwaway-stack sub-segment path. Both must stay
        // bit-identical to the unsharded reference.
        let d = 9;
        let ds = dataset(140, d, 11);
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(9).to_vec();
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        assert!(subspaces.len() > WALK_BLOCK);
        let reference: Vec<f64> = subspaces
            .iter()
            .map(|&s| linear.od(&q, 4, s, Some(9)))
            .collect();
        for shards in [2usize, 3] {
            let engine = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, shards, 2);
            for threads in [1usize, shards, 8] {
                let mut ev = engine.evaluator(&q, 4, Some(9));
                assert_eq!(
                    ev.od_batch(&subspaces, threads),
                    reference,
                    "shards={shards} threads={threads}"
                );
                assert!(ev.node_visits() > 0, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let ds = dataset(70, 3, 3);
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let sharded = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, 4, 2);
        let q: Vec<f64> = ds.row(10).to_vec();
        let s = Subspace::full(3);
        let mut a: Vec<(usize, f64)> = sharded
            .range(&q, 1.25, s, Some(10))
            .iter()
            .map(|n| (n.id, n.dist))
            .collect();
        let mut b: Vec<(usize, f64)> = linear
            .range(&q, 1.25, s, Some(10))
            .iter()
            .map(|n| (n.id, n.dist))
            .collect();
        a.sort_by_key(|x| x.0);
        b.sort_by_key(|x| x.0);
        assert_eq!(a, b);
    }

    #[test]
    fn distance_evals_aggregate_across_shards() {
        let ds = dataset(50, 3, 4);
        let sharded = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, 5, 1);
        assert_eq!(sharded.distance_evals(), 0);
        let q: Vec<f64> = ds.row(0).to_vec();
        sharded.knn(&q, 3, Subspace::full(3), Some(0));
        // Every non-excluded point is touched exactly once in total.
        assert_eq!(sharded.distance_evals(), 49);
    }

    #[test]
    fn shard_count_clamps_and_exposes() {
        let ds = dataset(6, 2, 5);
        let e = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, 64, 0);
        assert_eq!(e.shard_count(), 6);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.dataset().len(), 6);
        // Still exact after clamping to one point per shard.
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(1).to_vec();
        assert_eq!(
            e.knn(&q, 3, Subspace::full(2), None),
            linear.knn(&q, 3, Subspace::full(2), None)
        );
    }

    #[test]
    fn set_threads_retunes_fanout_without_changing_results() {
        let ds = dataset(60, 3, 9);
        let e = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, 4, 1);
        let q: Vec<f64> = ds.row(5).to_vec();
        let s = Subspace::full(3);
        let before = e.knn(&q, 4, s, Some(5));
        assert_eq!(e.threads(), 1);
        e.set_threads(4);
        assert_eq!(e.threads(), 4);
        assert_eq!(e.knn(&q, 4, s, Some(5)), before);
        e.set_threads(0); // clamped
        assert_eq!(e.threads(), 1);
        // Plain engines accept the call as a no-op.
        LinearScan::new(ds, Metric::L2).set_threads(8);
    }

    #[test]
    fn k_zero_and_empty_edge_cases() {
        let ds = dataset(10, 2, 6);
        let e = ShardedEngine::build(ds, Metric::L2, Engine::Linear, 3, 2);
        assert!(e.knn(&[0.0, 0.0], 0, Subspace::full(2), None).is_empty());
        let empty = ShardedEngine::build(Dataset::empty(), Metric::L2, Engine::Linear, 3, 2);
        assert!(empty.knn(&[], 3, Subspace::empty(), None).is_empty());
        assert_eq!(empty.shard_count(), 1);
    }

    /// Satellite regression: a long insert stream must spread across
    /// the shards (least-loaded routing), not pile onto the last one —
    /// and every query over the rebalanced layout must stay
    /// bit-identical to an unsharded mirror.
    #[test]
    fn insert_stream_balances_across_shards_and_stays_exact() {
        let d = 3;
        let ds = dataset(40, d, 8);
        let mut e = ShardedEngine::build(ds.clone(), Metric::L2, Engine::Linear, 4, 2);
        let mut mirror = LinearScan::new(ds, Metric::L2);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..60 {
            let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..4.0)).collect();
            let a = e.as_incremental().unwrap().insert(&row).unwrap();
            let b = mirror.as_incremental().unwrap().insert(&row).unwrap();
            assert_eq!(a, b);
        }
        // 100 live rows over 4 shards: balanced routing caps the
        // spread at 1 row. The old route-to-last policy put all 60
        // inserts on one shard (70 vs 10).
        let live: Vec<usize> = e
            .shards
            .iter()
            .map(|sh| sh.engine.dataset().live_len())
            .collect();
        let (lo, hi) = (*live.iter().min().unwrap(), *live.iter().max().unwrap());
        assert!(hi - lo <= 1, "unbalanced shards: {live:?}");
        // Rebalanced ids resolve correctly on every query path.
        let s = Subspace::full(d);
        for qid in [0usize, 45, 99] {
            let q: Vec<f64> = mirror.dataset().row(qid).to_vec();
            assert_eq!(
                e.knn(&q, 7, s, Some(qid)),
                mirror.knn(&q, 7, s, Some(qid)),
                "qid={qid}"
            );
        }
        // Removing an insert-routed id reaches its owning shard (the
        // first extra row cannot live on the last shard under balanced
        // routing of this layout) and the engine stays exact.
        e.as_incremental().unwrap().remove(41).unwrap();
        mirror.as_incremental().unwrap().remove(41).unwrap();
        assert_eq!(
            e.as_incremental().unwrap().remove(41),
            Err(IndexError::DeadPoint(41))
        );
        let q: Vec<f64> = mirror.dataset().row(0).to_vec();
        assert_eq!(e.knn(&q, 9, s, None), mirror.knn(&q, 9, s, None));
        // The evaluator's cached walked path sees the extra rows too.
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        let reference: Vec<f64> = subspaces
            .iter()
            .map(|&s| mirror.od(&q, 5, s, Some(0)))
            .collect();
        let mut ev = e.evaluator(&q, 5, Some(0));
        assert_eq!(ev.od_batch(&subspaces, 2), reference);
    }

    #[test]
    fn build_engine_sharded_picks_the_right_backend() {
        let ds = dataset(20, 2, 7);
        let plain = build_engine_sharded(Engine::Linear, ds.clone(), Metric::L2, 1, 4);
        assert!(
            plain.query_context(&[0.0, 0.0]).is_some(),
            "unsharded keeps its context"
        );
        let sharded = build_engine_sharded(Engine::Linear, ds, Metric::L2, 4, 4);
        assert!(
            sharded.query_context(&[0.0, 0.0]).is_none(),
            "sharded declines a whole-dataset context"
        );
    }
}
