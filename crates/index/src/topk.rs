//! Bounded top-k selection over pre-metric distances, shared by the
//! engines ([`crate::linear::LinearScan`]), the query-context cache
//! ([`crate::context::QueryContext`]) and the prefix-stack lattice
//! kernel ([`crate::walker::PrefixStack`]).
//!
//! A max-heap of capacity `k` keeps the *worst* current candidate on
//! top, ready to be evicted; ties break on ascending point id so every
//! consumer is deterministic. The heap is a plain `Vec` with manual
//! sift operations rather than `std::collections::BinaryHeap`, for two
//! reasons the hot selection loops care about:
//!
//! * **Bound fast path** — once the heap is full, [`TopK::offer`]
//!   rejects a losing candidate with at most two raw `f64`/id
//!   compares against the cached root, before any `Candidate` is
//!   built or any heap operation runs. (The reject must use the full
//!   `(pre, id)` order, not `pre` alone: a candidate *tying* the worst
//!   pre-distance still wins when its id is smaller, and VA-file
//!   offers candidates in lower-bound order where that case is live.
//!   `equal_pre_keeps_smaller_id_regardless_of_offer_order` pins it.)
//! * **Reuse** — [`TopK::reset`] recycles the backing allocation, so a
//!   walker evaluating thousands of lattice nodes performs zero heap
//!   allocations after the first node.
//!
//! `into_sorted` returns candidates in ascending `(pre, id)` order —
//! exactly what `BinaryHeap::into_sorted_vec` used to yield, pinned by
//! the sorted-order regression tests here and in [`crate::linear`].

use hos_data::PointId;
use std::cmp::Ordering;

/// One candidate: pre-metric distance plus point id.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    pub pre: f64,
    pub id: PointId,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.pre == other.pre && self.id == other.id
    }
}
impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances are finite by Dataset validation; tie-break on id
        // for determinism.
        self.pre
            .partial_cmp(&other.pre)
            .expect("finite distances")
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Keeps the `k` smallest `(pre, id)` candidates seen so far.
pub(crate) struct TopK {
    k: usize,
    /// Max-heap by `(pre, id)`: `heap[0]` is the worst kept candidate.
    /// After [`TopK::sorted`] the invariant is traded for ascending
    /// order; [`TopK::reset`] restores a clean (empty) state.
    heap: Vec<Candidate>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Empties the selection and retargets it to a new `k`, keeping
    /// the backing allocation — the zero-alloc path for callers that
    /// run one selection per lattice node.
    #[inline]
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        self.heap.reserve(k);
    }

    /// Offers one candidate; keeps it only if it beats the current
    /// worst (or the heap is not yet full). Eviction compares the
    /// full `(pre, id)` order, so the kept set — and the tie-break —
    /// is independent of the order candidates are offered in (VaFile
    /// offers in lower-bound order, not id order).
    ///
    /// `inline(always)`: the chunked selection loop in
    /// `context::offer_bounded` offers up to eight candidates per
    /// accepted chunk; an outlined call there costs more than the two
    /// compares of the fast path it guards.
    #[inline(always)]
    pub fn offer(&mut self, pre: f64, id: PointId) {
        if self.heap.len() < self.k {
            self.heap.push(Candidate { pre, id });
            self.sift_up(self.heap.len() - 1);
            return;
        }
        if self.k == 0 {
            return;
        }
        // Fast bound check against the cached worst: a candidate at or
        // beyond `(worst.pre, worst.id)` can never be kept. This is
        // the common case on sorted-ish data and costs one or two
        // scalar compares, no heap traffic.
        let worst = self.heap[0];
        if pre > worst.pre || (pre == worst.pre && id >= worst.id) {
            return;
        }
        self.heap[0] = Candidate { pre, id };
        self.sift_down(0);
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] > self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let biggest = if r < len && self.heap[r] > self.heap[l] {
                r
            } else {
                l
            };
            if self.heap[biggest] > self.heap[i] {
                self.heap.swap(i, biggest);
                i = biggest;
            } else {
                break;
            }
        }
    }

    /// Whether the heap holds its full `k` candidates.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The worst kept pre-distance (the current kth best), if any —
    /// the filter bound for engines that can skip candidates.
    #[inline]
    pub fn worst(&self) -> Option<f64> {
        self.heap.first().map(|c| c.pre)
    }

    /// The admission bound for candidate pre-distances: the cached
    /// worst kept pre once the selection is full, `+inf` while free
    /// slots remain (everything admissible), `-inf` for `k == 0`
    /// (nothing ever kept). A candidate with `pre > bound()` is
    /// provably rejected by [`TopK::offer`]'s fast path, so callers
    /// may skip constructing it entirely; a candidate *at* the bound
    /// must still be offered — a smaller id ties into the heap.
    #[inline]
    pub fn bound(&self) -> f64 {
        if !self.is_full() {
            f64::INFINITY
        } else {
            self.heap
                .first()
                .map(|c| c.pre)
                .unwrap_or(f64::NEG_INFINITY)
        }
    }

    /// The ids currently kept, in arbitrary (heap) order — used by the
    /// lattice walker to seed the next node's admission bound with the
    /// previous node's winners.
    #[inline]
    pub fn ids(&self) -> impl Iterator<Item = PointId> + '_ {
        self.heap.iter().map(|c| c.id)
    }

    /// The kept candidates in ascending `(pre, id)` order, sorted in
    /// place. The heap invariant is consumed: call [`TopK::reset`]
    /// before the next selection (which every reusing caller does
    /// anyway).
    #[inline]
    pub fn sorted(&mut self) -> &[Candidate] {
        self.heap.sort_unstable();
        &self.heap
    }

    /// The kept candidates in ascending `(pre, id)` order, consuming
    /// the selection.
    pub fn into_sorted(mut self) -> Vec<Candidate> {
        self.heap.sort_unstable();
        self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_in_ascending_order() {
        let mut t = TopK::new(3);
        for (pre, id) in [(5.0, 0), (1.0, 1), (4.0, 2), (0.5, 3), (2.0, 4)] {
            t.offer(pre, id);
        }
        let out = t.into_sorted();
        let pairs: Vec<(f64, usize)> = out.iter().map(|c| (c.pre, c.id)).collect();
        assert_eq!(pairs, vec![(0.5, 3), (1.0, 1), (2.0, 4)]);
    }

    #[test]
    fn ties_break_on_ascending_id() {
        let mut t = TopK::new(4);
        for id in [3usize, 0, 2, 1] {
            t.offer(7.0, id);
        }
        let ids: Vec<usize> = t.into_sorted().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.offer(2.0, 0);
        t.offer(1.0, 1);
        assert_eq!(t.into_sorted().len(), 2);
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut t = TopK::new(0);
        t.offer(1.0, 0);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn equal_pre_keeps_smaller_id_regardless_of_offer_order() {
        // Ties resolve to the smaller id whether it arrives first
        // (LinearScan/QueryContext offer in id order) or last (VaFile
        // offers in lower-bound order): the kept set depends only on
        // the candidates, not their sequence. This is exactly the case
        // the bound fast path must NOT reject: pre == worst.pre with a
        // smaller id still enters the heap.
        for ids in [[0usize, 1], [1, 0]] {
            let mut t = TopK::new(1);
            for id in ids {
                t.offer(3.0, id);
            }
            let out = t.into_sorted();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].id, 0, "offer order {ids:?}");
        }
    }

    /// The regression the bound fast path is pinned by: against a
    /// sort-everything reference, the kept set AND its order are
    /// identical on adversarial tie-heavy streams in several offer
    /// orders (ascending id, descending id, interleaved) — i.e. the
    /// cheap reject never changes behaviour, it only skips heap work.
    #[test]
    fn equivalent_to_full_sort_reference_under_ties() {
        let base: Vec<(f64, usize)> = (0..64).map(|i| ((i % 5) as f64 * 0.25, i)).collect();
        let mut shuffled = base.clone();
        shuffled.reverse();
        let mut interleaved: Vec<(f64, usize)> = Vec::new();
        for i in 0..32 {
            interleaved.push(base[i]);
            interleaved.push(base[63 - i]);
        }
        for k in [0usize, 1, 3, 7, 64, 100] {
            // Reference: full sort by (pre, id), take k.
            let mut reference = base.clone();
            reference.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
            reference.truncate(k);
            for (label, stream) in [
                ("ascending", &base),
                ("descending", &shuffled),
                ("interleaved", &interleaved),
            ] {
                let mut t = TopK::new(k);
                for &(pre, id) in stream {
                    t.offer(pre, id);
                }
                let got: Vec<(f64, usize)> =
                    t.into_sorted().iter().map(|c| (c.pre, c.id)).collect();
                assert_eq!(got, reference, "k={k} order={label}");
            }
        }
    }

    #[test]
    fn reset_recycles_for_the_next_selection() {
        let mut t = TopK::new(2);
        for (pre, id) in [(9.0, 0), (1.0, 1), (5.0, 2)] {
            t.offer(pre, id);
        }
        assert_eq!(t.sorted().len(), 2);
        // sorted() consumed the heap order; reset restores a clean
        // selection with a different k.
        t.reset(3);
        assert!(!t.is_full());
        for (pre, id) in [(4.0, 4), (2.0, 5), (8.0, 6), (3.0, 7)] {
            t.offer(pre, id);
        }
        let pairs: Vec<(f64, usize)> = t.sorted().iter().map(|c| (c.pre, c.id)).collect();
        assert_eq!(pairs, vec![(2.0, 5), (3.0, 7), (4.0, 4)]);
    }

    #[test]
    fn worst_tracks_the_kth_best() {
        let mut t = TopK::new(2);
        assert_eq!(t.worst(), None);
        t.offer(5.0, 0);
        assert_eq!(t.worst(), Some(5.0));
        t.offer(1.0, 1);
        assert_eq!(t.worst(), Some(5.0));
        t.offer(2.0, 2);
        assert_eq!(t.worst(), Some(2.0));
        assert!(t.is_full());
    }
}
