//! Bounded top-k selection over pre-metric distances, shared by the
//! engines ([`crate::linear::LinearScan`]) and the query-context cache
//! ([`crate::context::QueryContext`]).
//!
//! A max-heap of capacity `k` keeps the *worst* current candidate on
//! top, ready to be evicted; ties break on ascending point id so every
//! consumer is deterministic. `into_sorted` returns candidates in
//! ascending `(pre, id)` order — `BinaryHeap::into_sorted_vec` already
//! yields exactly that, so no re-sort is ever needed.

use hos_data::PointId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One candidate: pre-metric distance plus point id.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Candidate {
    pub pre: f64,
    pub id: PointId,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.pre == other.pre && self.id == other.id
    }
}
impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances are finite by Dataset validation; tie-break on id
        // for determinism.
        self.pre
            .partial_cmp(&other.pre)
            .expect("finite distances")
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Keeps the `k` smallest `(pre, id)` candidates seen so far.
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<Candidate>,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one candidate; keeps it only if it beats the current
    /// worst (or the heap is not yet full). Eviction compares the
    /// full `(pre, id)` order, so the kept set — and the tie-break —
    /// is independent of the order candidates are offered in (VaFile
    /// offers in lower-bound order, not id order).
    #[inline]
    pub fn offer(&mut self, pre: f64, id: PointId) {
        let cand = Candidate { pre, id };
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(top) = self.heap.peek() {
            if cand < *top {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// Whether the heap holds its full `k` candidates.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The worst kept pre-distance (the current kth best), if any —
    /// the filter bound for engines that can skip candidates.
    #[inline]
    pub fn worst(&self) -> Option<f64> {
        self.heap.peek().map(|c| c.pre)
    }

    /// The kept candidates in ascending `(pre, id)` order.
    ///
    /// `BinaryHeap::into_sorted_vec` returns ascending order under the
    /// heap's own `Ord`, which is exactly `(pre, id)`: no further sort
    /// is needed, and [`crate::linear`]'s regression test pins this.
    pub fn into_sorted(self) -> Vec<Candidate> {
        self.heap.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_in_ascending_order() {
        let mut t = TopK::new(3);
        for (pre, id) in [(5.0, 0), (1.0, 1), (4.0, 2), (0.5, 3), (2.0, 4)] {
            t.offer(pre, id);
        }
        let out = t.into_sorted();
        let pairs: Vec<(f64, usize)> = out.iter().map(|c| (c.pre, c.id)).collect();
        assert_eq!(pairs, vec![(0.5, 3), (1.0, 1), (2.0, 4)]);
    }

    #[test]
    fn ties_break_on_ascending_id() {
        let mut t = TopK::new(4);
        for id in [3usize, 0, 2, 1] {
            t.offer(7.0, id);
        }
        let ids: Vec<usize> = t.into_sorted().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut t = TopK::new(10);
        t.offer(2.0, 0);
        t.offer(1.0, 1);
        assert_eq!(t.into_sorted().len(), 2);
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut t = TopK::new(0);
        t.offer(1.0, 0);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn equal_pre_keeps_smaller_id_regardless_of_offer_order() {
        // Ties resolve to the smaller id whether it arrives first
        // (LinearScan/QueryContext offer in id order) or last (VaFile
        // offers in lower-bound order): the kept set depends only on
        // the candidates, not their sequence.
        for ids in [[0usize, 1], [1, 0]] {
            let mut t = TopK::new(1);
            for id in ids {
                t.offer(3.0, id);
            }
            let out = t.into_sorted();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].id, 0, "offer order {ids:?}");
        }
    }
}
