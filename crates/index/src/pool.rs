//! Process-lifetime worker pool behind [`crate::batch::parallel_map`].
//!
//! Before this module existed, every `parallel_map` call spawned fresh
//! crossbeam scoped threads — fine for one-shot CLI runs, but a
//! resident server paying a thread spawn + join per admission batch
//! wastes latency on the hottest path. The pool spawns its workers
//! once (lazily, on first parallel call) and keeps them parked on a
//! condvar; a parallel region just pushes closures onto the shared
//! queue and blocks until its completion latch opens.
//!
//! ## Scoped execution over 'static workers
//!
//! Pool workers are ordinary detached threads, so the jobs they run
//! must be `'static` — but `parallel_map` closures borrow the caller's
//! stack (the input slice, the output slice, the mapping function).
//! [`run_scoped`] bridges the gap the same way rayon and crossbeam do
//! internally: it transmutes the job's lifetime away **and blocks the
//! caller on a latch until every job has finished running** (even when
//! a job panics), so no borrow ever outlives its frame. The unsafe is
//! confined to that one transmute; the latch discipline is what makes
//! it sound.
//!
//! ## Nesting
//!
//! A parallel region entered *from inside a pool worker* runs serially
//! ([`in_worker`] short-circuits): with every worker potentially
//! blocked waiting for sub-jobs that no free worker can run, nested
//! fan-out would deadlock the pool. Serial nesting matches the
//! system's existing discipline — `batch_search` workers already run
//! their per-level batches with `threads = 1` to avoid
//! oversubscription.
//!
//! ## Panics
//!
//! A panicking job never kills a pool worker: the payload is captured,
//! the latch still counts down, and the *caller* of the parallel
//! region re-raises the first captured payload once all jobs are done
//! — observable behaviour identical to the scoped-thread code this
//! replaces.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A job as the worker threads see it: erased, owned, `'static`.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shared pool: a queue of pending jobs and the workers parked on
/// it. One per process, created by [`pool`].
pub struct WorkerPool {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    workers: usize,
}

static POOL: OnceLock<&'static WorkerPool> = OnceLock::new();

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a pool worker. Parallel entry points
/// use this to run nested regions serially instead of deadlocking the
/// pool (see module docs).
pub fn in_worker() -> bool {
    IS_POOL_WORKER.with(|c| c.get())
}

/// The process-wide pool, spawning its workers on first use. Worker
/// count is the machine's available parallelism; callers may still
/// request more chunks than workers — excess jobs queue and the
/// results are identical either way.
pub fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let p: &'static WorkerPool = Box::leak(Box::new(WorkerPool {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("hos-pool-{i}"))
                .spawn(move || p.worker_loop())
                .expect("spawning pool worker");
        }
        p
    })
}

/// Number of worker threads the pool runs (callers' `threads` argument
/// above this just queues — still correct, no extra concurrency).
pub fn pool_size() -> usize {
    pool().workers
}

impl WorkerPool {
    fn worker_loop(&self) {
        IS_POOL_WORKER.with(|c| c.set(true));
        loop {
            let job = {
                let mut q = self.queue.lock().expect("pool queue poisoned");
                loop {
                    match q.pop_front() {
                        Some(job) => break job,
                        None => q = self.job_ready.wait(q).expect("pool queue poisoned"),
                    }
                }
            };
            // The job is a run_scoped wrapper that catches its own
            // panics; nothing here can unwind the worker.
            job();
        }
    }

    fn submit(&self, jobs: Vec<Job>) {
        let mut q = self.queue.lock().expect("pool queue poisoned");
        q.extend(jobs);
        self.job_ready.notify_all();
    }
}

/// Completion latch for one scoped parallel region: counts pool-run
/// jobs down to zero and carries the first panic payload across the
/// thread boundary.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().expect("latch poisoned");
        slot.get_or_insert(payload);
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().expect("latch poisoned");
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("latch poisoned");
        while *r > 0 {
            r = self.done.wait(r).expect("latch poisoned");
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().expect("latch poisoned").take()
    }
}

/// Runs every task to completion, the first on the calling thread and
/// the rest on the pool, returning only when all have finished. Tasks
/// may borrow from the caller's stack — that is the point.
///
/// If any task panics, the first captured payload is re-raised here
/// (after all tasks have completed, so borrowed state stays valid
/// through the unwind). Called from inside a pool worker, all tasks
/// run inline on the caller (see module docs on nesting).
pub fn run_scoped<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    if n == 1 || in_worker() {
        for t in tasks {
            t();
        }
        return;
    }
    let latch = Arc::new(Latch::new(n - 1));
    let mut tasks = tasks.into_iter();
    let caller_task = tasks.next().expect("n >= 2");
    let jobs: Vec<Job> = tasks
        .map(|t| {
            let l = Arc::clone(&latch);
            let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                    l.record_panic(payload);
                }
                l.count_down();
            });
            // SAFETY: the transmute only erases the `'scope` lifetime;
            // vtable and layout are unchanged. The borrows inside the
            // job stay valid because this function does not return (or
            // unwind) until `latch.wait()` has observed every job
            // finished — the job can never run after its borrowed
            // frame is gone.
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped) }
        })
        .collect();
    pool().submit(jobs);
    // The caller is a worker too: it runs the first chunk while the
    // pool works the rest, then blocks until the region completes.
    let caller_result = catch_unwind(AssertUnwindSafe(caller_task));
    latch.wait();
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..37)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn tasks_borrow_caller_stack() {
        let mut out = [0u64; 8];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .chunks_mut(2)
                .enumerate()
                .map(|(i, chunk)| {
                    Box::new(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = (i * 2 + j) as u64 * 10;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(tasks);
        }
        assert_eq!(out, [0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn empty_and_single() {
        run_scoped(Vec::new());
        let ran = AtomicUsize::new(0);
        run_scoped(vec![Box::new(|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_task_propagates_to_caller_after_completion() {
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|i| {
                    let survivors = &survivors;
                    Box::new(move || {
                        if i == 3 {
                            panic!("job 3 exploded");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(tasks);
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "job 3 exploded");
        // Every non-panicking job still ran to completion.
        assert_eq!(survivors.load(Ordering::Relaxed), 7);
        // …and the pool still works afterwards.
        let after = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    after.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(tasks);
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        std::thread::scope(|s| {
            for caller in 0..4 {
                s.spawn(move || {
                    let total = AtomicUsize::new(0);
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
                        .map(|i| {
                            let total = &total;
                            Box::new(move || {
                                total.fetch_add(i + caller, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    run_scoped(tasks);
                    assert_eq!(total.load(Ordering::Relaxed), 120 + 16 * caller);
                });
            }
        });
    }

    #[test]
    fn pool_size_is_positive() {
        assert!(pool_size() >= 1);
    }
}
