//! Blocked all-points full-space OD kernel.
//!
//! Dataset-wide scans (`hos-core`'s `scan_outliers`, threshold
//! quantile estimation) need the full-space OD of **every** live point
//! — `n` independent queries that the per-query engines answer one at
//! a time, re-striding the row-major matrix and allocating a neighbour
//! list each. This kernel computes them together, in one of two modes:
//!
//! * **Quantized admission** (`L1`/`L2`/`L∞` with sane magnitudes) —
//!   the half-width companion columns
//!   ([`hos_data::Dataset::to_column_major_f32`]) are streamed once
//!   per `(block, dim)` to build a conservative *lower bound* on every
//!   pre-distance; per query, a candidate whose bound already exceeds
//!   the top-k admission bound ([`TopK::bound`]) is rejected without
//!   ever touching the exact `f64` data, and only the survivors run
//!   the exact ascending-dimension fold. See `DESIGN.md` §9 for the
//!   conservativeness proof; [`quantized_lower_bounds`] exposes the
//!   bound computation for the property tests that pin it.
//! * **Exact fallback** (`Lp`, or magnitudes past the overflow
//!   guards) — the original blocked layout: the matrix is transposed
//!   once into column-major form ([`hos_data::Dataset::to_column_major`]),
//!   queries are processed in blocks of [`BLOCK`], and for each
//!   dimension (ascending) each query folds the whole column into its
//!   accumulator row. The inner loops are chunked [`LANES`] wide over
//!   *points* (each point's own dimension fold stays sequential), so
//!   they auto-vectorize without changing any per-pair op sequence.
//!
//! # Bit-identity
//!
//! Per `(query, point)` pair the fold is `accumulate(acc, |q_j - p_j|)`
//! over dimensions in ascending order starting from `0.0` — precisely
//! [`Metric::pre_dist_sub`] on the full space, the op sequence every
//! engine's scan performs (and every engine is pinned bit-identical to
//! `LinearScan`). Chunking lanes span points, never dimensions, so
//! each pair's accumulator sequence is untouched; the quantized path
//! only *skips* pairs that [`TopK::offer`]'s fast path would provably
//! reject (`lb > bound()` strict — a pair *at* the bound still folds,
//! because a smaller id ties into the heap). Selection and summation
//! go through the shared `(pre, id)` order, so the ODs equal per-point
//! [`crate::knn::KnnEngine::od`] calls **bit for bit**; the tests here
//! assert that with `assert_eq!` across metrics and tombstones.
//!
//! # Errors and accounting
//!
//! Every ranked OD self-excludes, so fewer than `k` live candidates is
//! [`IndexError::InsufficientPoints`] — the same typed error the
//! checked per-point path (`try_od`) returns, instead of silently
//! understating every OD. [`all_points_full_od_counted`] additionally
//! reports `distance_evals` (exact pair folds) and `filtered`
//! (quantized-bound rejects); they always satisfy
//! `distance_evals + filtered == live * (live - 1)`.

use crate::error::IndexError;
use crate::topk::TopK;
use hos_data::{Dataset, Metric, PointId, QuantizedColumns};

/// Queries per block: big enough to amortise each column stream,
/// small enough that a block of accumulator rows stays cache-resident.
const BLOCK: usize = 32;

/// Chunk width of the point-lane inner loops (`f64` exact fold). Four
/// 64-bit lanes fill a 256-bit vector; the `f32` quantized fold uses
/// twice as many.
const LANES: usize = 4;

/// Per-term slack subtracted from a quantized gap, in units of the
/// column's magnitude scale: `2^-19`, a 32x margin over the worst-case
/// `~2^-24`-relative rounding of the two narrowing conversions and the
/// `f32` subtraction between them.
const QUANT_SLACK: f64 = 1.9073486328125e-6;

/// Multiplicative guard on a finished lower bound, per dimension:
/// covers the relative error of the `f32` square/accumulate arithmetic
/// (`~3 * 2^-24` per term, so `1e-6` per dimension is a wide margin).
const QUANT_GUARD_PER_DIM: f64 = 1e-6;

/// Magnitude ceiling for the quantized path: squaring must stay far
/// from `f32::MAX` (`~3.4e38`), so columns whose absolute values reach
/// `1e15` fall back to the exact kernel.
const QUANT_MAX_SCALE: f64 = 1e15;

/// Result of [`all_points_full_od_counted`]: the ranked ODs plus the
/// kernel's work accounting.
#[derive(Clone, Debug)]
pub struct BlockedScan {
    /// `(id, full-space OD)` per live point, ascending id order.
    pub ods: Vec<(PointId, f64)>,
    /// Exact `f64` pair folds performed (live pairs only; the exact
    /// fallback folds every live pair, the quantized path only the
    /// admission survivors).
    pub distance_evals: u64,
    /// Live pairs rejected by the quantized lower bound without an
    /// exact fold. `distance_evals + filtered == live * (live - 1)`.
    pub filtered: u64,
}

/// Full-space OD of every **live** point against the live remainder of
/// the dataset (each query excludes itself), as `(id, od)` pairs in
/// ascending id order. Bit-identical to
/// `engine.od(ds.row(i), k, full, Some(i))` per live `i` on any of the
/// exact engines.
///
/// # Errors
///
/// [`IndexError::InsufficientPoints`] when fewer than `k` live
/// candidates remain after self-exclusion (`available = live - 1`) —
/// aligned with the checked per-point path, which a caller mixing both
/// relies on.
pub fn all_points_full_od(
    ds: &Dataset,
    metric: Metric,
    k: usize,
) -> Result<Vec<(PointId, f64)>, IndexError> {
    all_points_full_od_counted(ds, metric, k).map(|scan| scan.ods)
}

/// [`all_points_full_od`] with work accounting — see [`BlockedScan`].
pub fn all_points_full_od_counted(
    ds: &Dataset,
    metric: Metric,
    k: usize,
) -> Result<BlockedScan, IndexError> {
    let available = ds.live_len().saturating_sub(1);
    if available < k {
        return Err(IndexError::InsufficientPoints { available, k });
    }
    let live: Vec<PointId> = ds.live_ids().collect();
    if live.is_empty() {
        return Ok(BlockedScan {
            ods: Vec::new(),
            distance_evals: 0,
            filtered: 0,
        });
    }
    if quantized_admissible(metric, ds) {
        Ok(scan_quantized(ds, metric, k, &live))
    } else {
        Ok(scan_exact(ds, metric, k, &live))
    }
}

/// Whether the quantized admission path is sound for this metric and
/// dataset: `Lp` is excluded (`powf` admits no cheap order-safe lower
/// bound), as are magnitudes past [`QUANT_MAX_SCALE`].
fn quantized_admissible(metric: Metric, ds: &Dataset) -> bool {
    match metric {
        Metric::L1 | Metric::L2 | Metric::LInf => (0..ds.dim())
            .all(|j| ds.column(j).fold(0.0f64, |m, v| m.max(v.abs())) < QUANT_MAX_SCALE),
        Metric::Lp(_) => false,
    }
}

/// Conservative lower bounds on the full-space pre-distance from live
/// point `q` to every *physical* row (tombstoned slots included
/// positionally; callers filter), computed exactly as the quantized
/// admission path computes them — or `None` when that path is
/// inadmissible ([`quantized_admissible`]) and the kernel runs exact.
///
/// Guarantee (pinned by the property tests): for every row `i`,
/// `bounds[i] <= metric.pre_dist_sub(ds.row(q), ds.row(i), full)`.
pub fn quantized_lower_bounds(ds: &Dataset, metric: Metric, q: PointId) -> Option<Vec<f64>> {
    if !quantized_admissible(metric, ds) || q >= ds.len() {
        return None;
    }
    let n = ds.len();
    let qcols = ds.to_column_major_f32();
    let mut acc = vec![0.0f32; n];
    fold_quantized_rows(metric, &qcols, n, ds.dim(), &[q], &mut acc);
    let guard = quant_guard(ds.dim());
    Some(acc.iter().map(|&lb| f64::from(lb) * guard).collect())
}

#[inline]
fn quant_guard(d: usize) -> f64 {
    (1.0 - d as f64 * QUANT_GUARD_PER_DIM).max(0.0)
}

/// Exact blocked kernel: every live pair is folded.
fn scan_exact(ds: &Dataset, metric: Metric, k: usize, live: &[PointId]) -> BlockedScan {
    let n = ds.len();
    let d = ds.dim();
    let cols = ds.to_column_major();
    let mut ods = Vec::with_capacity(live.len());
    let mut acc = vec![0.0f64; BLOCK * n];
    let mut top = TopK::new(k);
    for block in live.chunks(BLOCK) {
        let acc = &mut acc[..block.len() * n];
        acc.fill(0.0);
        // Ascending dimensions, exactly the pre_dist_sub fold order.
        for j in 0..d {
            let col = &cols[j * n..(j + 1) * n];
            for (row, &q) in acc.chunks_exact_mut(n).zip(block) {
                fold_exact_column(metric, row, col, col[q]);
            }
        }
        for (row, &q) in acc.chunks_exact(n).zip(block) {
            top.reset(k);
            for (i, &pre) in row.iter().enumerate() {
                if i == q || !ds.is_live(i) {
                    continue;
                }
                top.offer(pre, i);
            }
            // Ascending (pre, id) summation — the shared OD order.
            let od: f64 = top.sorted().iter().map(|c| metric.finish(c.pre)).sum();
            ods.push((q, od));
        }
    }
    let live_n = live.len() as u64;
    BlockedScan {
        ods,
        distance_evals: live_n * (live_n - 1),
        filtered: 0,
    }
}

/// Folds one exact `f64` column into a block-row of accumulators:
/// `row[i] = accumulate(row[i], |qv - col[i]|)`. Chunked [`LANES`]
/// wide over points — each slot's own dimension sequence is untouched,
/// so this is bit-identical to the scalar loop in any chunk order.
#[inline]
fn fold_exact_column(metric: Metric, row: &mut [f64], col: &[f64], qv: f64) {
    match metric {
        Metric::L1 => {
            let mut rc = row.chunks_exact_mut(LANES);
            let mut cc = col.chunks_exact(LANES);
            for (r, c) in (&mut rc).zip(&mut cc) {
                r[0] += (qv - c[0]).abs();
                r[1] += (qv - c[1]).abs();
                r[2] += (qv - c[2]).abs();
                r[3] += (qv - c[3]).abs();
            }
            for (r, &p) in rc.into_remainder().iter_mut().zip(cc.remainder()) {
                *r += (qv - p).abs();
            }
        }
        Metric::L2 => {
            // `g * g == |g| * |g|` bit for bit (IEEE multiplication is
            // sign-magnitude), so the abs is elided.
            let mut rc = row.chunks_exact_mut(LANES);
            let mut cc = col.chunks_exact(LANES);
            for (r, c) in (&mut rc).zip(&mut cc) {
                r[0] += (qv - c[0]) * (qv - c[0]);
                r[1] += (qv - c[1]) * (qv - c[1]);
                r[2] += (qv - c[2]) * (qv - c[2]);
                r[3] += (qv - c[3]) * (qv - c[3]);
            }
            for (r, &p) in rc.into_remainder().iter_mut().zip(cc.remainder()) {
                *r += (qv - p) * (qv - p);
            }
        }
        Metric::LInf => {
            let mut rc = row.chunks_exact_mut(LANES);
            let mut cc = col.chunks_exact(LANES);
            for (r, c) in (&mut rc).zip(&mut cc) {
                r[0] = r[0].max((qv - c[0]).abs());
                r[1] = r[1].max((qv - c[1]).abs());
                r[2] = r[2].max((qv - c[2]).abs());
                r[3] = r[3].max((qv - c[3]).abs());
            }
            for (r, &p) in rc.into_remainder().iter_mut().zip(cc.remainder()) {
                *r = r.max((qv - p).abs());
            }
        }
        Metric::Lp(p) => {
            // powf dominates; chunking buys nothing here.
            for (r, &pv) in row.iter_mut().zip(col) {
                *r += (qv - pv).abs().powf(p);
            }
        }
    }
}

/// Chunk width of the lower-bound sweep's min-tree: wide enough that
/// one rejected chunk retires 16 candidates on a single compare.
const SWEEP_LANES: usize = 16;

/// Quantized-admission kernel: half-width lower bounds for the whole
/// block, then per query an exact scalar fold only for candidates the
/// bound cannot reject.
///
/// The per-query sweep never branches on liveness: tombstoned slots
/// and the query's own slot are overwritten with `+inf` lower bounds,
/// which every admission compare rejects, so the hot loop reduces to a
/// chunked min-tree over the bound row — one compare retires a whole
/// chunk once the top-k bound has tightened. `filtered` is then the
/// arithmetic complement `live - 1 - evals` per query.
fn scan_quantized(ds: &Dataset, metric: Metric, k: usize, live: &[PointId]) -> BlockedScan {
    let n = ds.len();
    let d = ds.dim();
    let qcols = ds.to_column_major_f32();
    let guard = quant_guard(d);
    let dead_ids: Vec<PointId> = (0..n).filter(|&i| !ds.is_live(i)).collect();
    let mut ods = Vec::with_capacity(live.len());
    let mut acc = vec![0.0f32; n];
    let mut top = TopK::new(k);
    let mut evals = 0u64;
    let mut filtered = 0u64;
    // One query at a time, unlike the exact path's query blocks: the
    // f32 bound row stays L1-resident across the whole dimension loop
    // (the exact path's f64 accumulator block is re-streamed once per
    // dimension instead), and the f32 columns are small enough to stay
    // cache-resident across queries.
    for &q in live {
        let row = &mut acc[..];
        fold_quantized_rows(metric, &qcols, n, d, &[q], row);
        for &i in &dead_ids {
            row[i] = f32::INFINITY;
        }
        row[q] = f32::INFINITY;
        top.reset(k);
        let qrow = ds.row(q);
        let mut q_evals = 0u64;
        // Fill: the first k live candidates go straight to exact
        // folds — the bound is +inf until the heap is full.
        let mut i = 0usize;
        while i < n && !top.is_full() {
            if row[i].is_finite() {
                let pre = exact_pre(metric, qrow, ds.row(i));
                q_evals += 1;
                top.offer(pre, i);
            }
            i += 1;
        }
        // Sweep: strict reject only — `offer` provably drops any
        // pre above the bound, and `lb * guard <= pre`; a pair
        // *at* the bound can still tie in on a smaller id.
        let mut w = top.bound();
        while i + SWEEP_LANES <= n {
            let c = &row[i..i + SWEEP_LANES];
            let mut m = [0.0f32; SWEEP_LANES / 2];
            for j in 0..SWEEP_LANES / 2 {
                m[j] = if c[j] < c[j + SWEEP_LANES / 2] {
                    c[j]
                } else {
                    c[j + SWEEP_LANES / 2]
                };
            }
            let mut width = SWEEP_LANES / 2;
            while width > 1 {
                width /= 2;
                for j in 0..width {
                    m[j] = if m[j] < m[j + width] {
                        m[j]
                    } else {
                        m[j + width]
                    };
                }
            }
            if f64::from(m[0]) * guard <= w {
                for (j, &lb) in c.iter().enumerate() {
                    if f64::from(lb) * guard <= w {
                        let pre = exact_pre(metric, qrow, ds.row(i + j));
                        q_evals += 1;
                        top.offer(pre, i + j);
                    }
                }
                w = top.bound();
            }
            i += SWEEP_LANES;
        }
        for (j, &lb) in row[i..].iter().enumerate() {
            if f64::from(lb) * guard <= w {
                let pre = exact_pre(metric, qrow, ds.row(i + j));
                q_evals += 1;
                top.offer(pre, i + j);
                w = top.bound();
            }
        }
        let od: f64 = top.sorted().iter().map(|c| metric.finish(c.pre)).sum();
        ods.push((q, od));
        evals += q_evals;
        filtered += (live.len() - 1) as u64 - q_evals;
    }
    BlockedScan {
        ods,
        distance_evals: evals,
        filtered,
    }
}

/// Chunk width of the `f32` lower-bound fold: eight 32-bit lanes fill
/// a 256-bit vector.
const QLANES: usize = 8;

/// Streams the `f32` companion columns (ascending dimensions) into a
/// block of lower-bound accumulator rows. Per term the rounding slack
/// `scale[j] * 2^-19` is subtracted and the result floored at zero, so
/// each accumulated term under-estimates the exact `f64` gap term; the
/// caller applies the multiplicative [`quant_guard`] to also cover the
/// `f32` square/accumulate rounding. The metric dispatch sits outside
/// the streaming loops so each inner body is a branch-free chunked
/// loop the compiler can vectorize.
fn fold_quantized_rows(
    metric: Metric,
    qcols: &QuantizedColumns,
    n: usize,
    d: usize,
    block: &[PointId],
    acc: &mut [f32],
) {
    debug_assert_eq!(acc.len(), block.len() * n);
    acc.fill(0.0);
    macro_rules! stream {
        ($lane:expr, $tail:expr) => {
            for j in 0..d {
                let col = &qcols.cols[j * n..(j + 1) * n];
                let slack = (qcols.scale[j] * QUANT_SLACK) as f32;
                for (row, &q) in acc.chunks_exact_mut(n).zip(block) {
                    let qv = col[q];
                    let mut rc = row.chunks_exact_mut(QLANES);
                    let mut cc = col.chunks_exact(QLANES);
                    for (r, c) in (&mut rc).zip(&mut cc) {
                        for l in 0..QLANES {
                            let t = ((qv - c[l]).abs() - slack).max(0.0);
                            $lane(&mut r[l], t);
                        }
                    }
                    for (r, &p) in rc.into_remainder().iter_mut().zip(cc.remainder()) {
                        let t = ((qv - p).abs() - slack).max(0.0);
                        $tail(r, t);
                    }
                }
            }
        };
    }
    match metric {
        Metric::L1 => {
            stream!(|r: &mut f32, t: f32| *r += t, |r: &mut f32, t: f32| *r += t)
        }
        Metric::L2 => {
            stream!(|r: &mut f32, t: f32| *r += t * t, |r: &mut f32, t: f32| {
                *r += t * t
            })
        }
        Metric::LInf => {
            stream!(
                |r: &mut f32, t: f32| *r = r.max(t),
                |r: &mut f32, t: f32| *r = r.max(t)
            )
        }
        Metric::Lp(_) => unreachable!("Lp never takes the quantized path"),
    }
}

/// Exact full-space pre-distance of one pair: the ascending-dimension
/// `accumulate` fold from `0.0` — the shared op sequence (row-major
/// here, column-major in [`scan_exact`]; same values, same order).
#[inline]
fn exact_pre(metric: Metric, q: &[f64], p: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (a, b) in q.iter().zip(p) {
        acc = metric.accumulate(acc, (a - b).abs());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{build_engine, Engine};
    use crate::sharded::build_engine_sharded;
    use hos_data::Subspace;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        // Coarse grid: exact distance ties exercise the (pre, id)
        // tie-break through the blocked selection too.
        let flat: Vec<f64> = (0..n * d)
            .map(|_| (rng.gen_range(0..9) as f64) * 0.5)
            .collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn bit_identical_to_per_point_engine_queries() {
        // 70 points spans multiple blocks (BLOCK = 32), so block
        // boundaries are exercised; L1/L2/LInf run the quantized
        // admission path, Lp the exact fallback.
        let ds = dataset(70, 4, 1);
        let full = Subspace::full(4);
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let blocked = all_points_full_od(&ds, metric, 5).unwrap();
            assert_eq!(blocked.len(), 70);
            for kind in [Engine::Linear, Engine::XTree, Engine::VaFile] {
                let engine = build_engine(kind, ds.clone(), metric);
                for &(i, od) in &blocked {
                    assert_eq!(
                        od,
                        engine.od(ds.row(i), 5, full, Some(i)),
                        "{metric:?} {kind} point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn tombstones_skip_both_sides() {
        let mut ds = dataset(40, 3, 2);
        for id in [0usize, 13, 39] {
            ds.remove_row(id).unwrap();
        }
        let blocked = all_points_full_od(&ds, Metric::L2, 4).unwrap();
        // Dead rows neither rank nor serve as neighbours.
        assert_eq!(blocked.len(), 37);
        assert!(blocked.iter().all(|&(i, _)| ds.is_live(i)));
        let engine = build_engine_sharded(Engine::Linear, ds.clone(), Metric::L2, 3, 2);
        for &(i, od) in &blocked {
            assert_eq!(
                od,
                engine.od(ds.row(i), 4, Subspace::full(3), Some(i)),
                "point {i}"
            );
        }
    }

    /// Too few live candidates is the same typed error — with the
    /// same `available` accounting — that every engine's checked
    /// per-point path returns, not a silently short-k OD.
    #[test]
    fn insufficient_points_aligns_with_engines() {
        let empty = Dataset::empty();
        assert_eq!(
            all_points_full_od(&empty, Metric::L2, 3).unwrap_err(),
            IndexError::InsufficientPoints { available: 0, k: 3 }
        );
        let one = Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(
            all_points_full_od(&one, Metric::L2, 3).unwrap_err(),
            IndexError::InsufficientPoints { available: 0, k: 3 }
        );
        let mut ds = dataset(8, 2, 3);
        for id in [1usize, 4, 6] {
            ds.remove_row(id).unwrap();
        }
        // 5 live, self-excluding queries see 4 candidates.
        let err = all_points_full_od(&ds, Metric::L2, 5).unwrap_err();
        assert_eq!(err, IndexError::InsufficientPoints { available: 4, k: 5 });
        for kind in [Engine::Linear, Engine::XTree, Engine::VaFile] {
            let engine = build_engine(kind, ds.clone(), Metric::L2);
            let per_point = engine
                .try_od(ds.row(0), 5, Subspace::full(2), Some(0))
                .unwrap_err();
            assert_eq!(err, per_point, "{kind}");
        }
        // k == available is the boundary that still succeeds.
        assert_eq!(all_points_full_od(&ds, Metric::L2, 4).unwrap().len(), 5);
    }

    #[test]
    fn small_and_zero_k_edges() {
        // k = 0 stays OD 0 for every live point, never an error.
        let one = Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(
            all_points_full_od(&one, Metric::L2, 0).unwrap(),
            vec![(0, 0.0)]
        );
        let two = Dataset::from_rows(&[vec![0.0], vec![3.0]]).unwrap();
        assert_eq!(
            all_points_full_od(&two, Metric::L1, 1).unwrap(),
            vec![(0, 3.0), (1, 3.0)]
        );
    }

    /// The counted kernel's accounting is exact on both paths:
    /// `distance_evals + filtered == live * (live - 1)`, and the
    /// quantized path actually filters on clustered data.
    #[test]
    fn counted_accounting_covers_every_live_pair() {
        let mut rng = StdRng::seed_from_u64(9);
        // Two tight clusters far apart: most cross-cluster pairs lose
        // to within-cluster neighbours, so admission has real rejects.
        let flat: Vec<f64> = (0..90 * 3)
            .map(|i| {
                let base = if (i / 3) < 45 { 0.0 } else { 1000.0 };
                base + rng.gen_range(0..100) as f64 * 0.01
            })
            .collect();
        let mut ds = Dataset::from_flat(flat, 3).unwrap();
        ds.remove_row(7).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let scan = all_points_full_od_counted(&ds, metric, 4).unwrap();
            let live = ds.live_len() as u64;
            assert_eq!(
                scan.distance_evals + scan.filtered,
                live * (live - 1),
                "{metric:?}"
            );
            match metric {
                Metric::Lp(_) => assert_eq!(scan.filtered, 0, "exact fallback never filters"),
                _ => assert!(
                    scan.filtered > scan.distance_evals,
                    "{metric:?}: clustered data should reject most pairs, \
                     got evals={} filtered={}",
                    scan.distance_evals,
                    scan.filtered
                ),
            }
            // Counting never changes the answer.
            assert_eq!(scan.ods, all_points_full_od(&ds, metric, 4).unwrap());
        }
    }

    /// The public bound API: conservative against the exact pre-fold
    /// on every physical row, and `None` exactly when the kernel runs
    /// the exact fallback.
    #[test]
    fn quantized_bounds_are_conservative() {
        let ds = dataset(60, 5, 4);
        let full = Subspace::full(5);
        for metric in [Metric::L1, Metric::L2, Metric::LInf] {
            let lb = quantized_lower_bounds(&ds, metric, 11).unwrap();
            assert_eq!(lb.len(), 60);
            for (i, &b) in lb.iter().enumerate() {
                let exact = metric.pre_dist_sub(ds.row(11), ds.row(i), full);
                assert!(b <= exact, "{metric:?} i={i}: lb {b} > exact {exact}");
            }
        }
        assert!(quantized_lower_bounds(&ds, Metric::Lp(3.0), 11).is_none());
        let huge = Dataset::from_rows(&[vec![0.0], vec![2.0e15]]).unwrap();
        assert!(quantized_lower_bounds(&huge, Metric::L2, 0).is_none());
        // The kernel's fallback on such data is still bit-exact.
        let scan = all_points_full_od_counted(&huge, Metric::L2, 1).unwrap();
        assert_eq!(scan.filtered, 0);
        assert_eq!(scan.ods, vec![(0, 2.0e15), (1, 2.0e15)]);
    }
}
