//! Blocked all-points full-space OD kernel.
//!
//! Dataset-wide scans (`hos-core`'s `scan_outliers`, threshold
//! quantile estimation) need the full-space OD of **every** live point
//! — `n` independent queries that the per-query engines answer one at
//! a time, re-striding the row-major matrix and allocating a neighbour
//! list each. This kernel computes them together:
//!
//! * the matrix is transposed once into column-major (SoA) form
//!   ([`hos_data::Dataset::to_column_major`]), so the inner loops
//!   stream contiguous memory;
//! * queries are processed in blocks of [`BLOCK`]: for each dimension
//!   (ascending), each query in the block folds the whole column into
//!   its accumulator row — one `|q_j - p_j|` pass per `(block, dim)`;
//! * per query, bounded top-k selection runs over the finished
//!   accumulator row with a reused [`TopK`] (cached-bound fast path,
//!   zero allocation after the first block).
//!
//! # Bit-identity
//!
//! Per `(query, point)` pair the fold is `accumulate(acc, |q_j - p_j|)`
//! over dimensions in ascending order starting from `0.0` — precisely
//! [`Metric::pre_dist_sub`] on the full space, the op sequence every
//! engine's scan performs (and every engine is pinned bit-identical to
//! `LinearScan`). Selection and summation go through the shared
//! `(pre, id)` order, so the ODs equal per-point
//! [`crate::knn::KnnEngine::od`] calls **bit for bit**; the tests here
//! assert that with `assert_eq!` across metrics and tombstones.
//!
//! The kernel reads the dataset directly, so engine
//! `distance_evals` counters are not advanced — callers that need the
//! accounting should stay on the per-point path.

use crate::topk::TopK;
use hos_data::{Dataset, Metric, PointId};

/// Queries per block: big enough to amortise each column stream,
/// small enough that a block of accumulator rows stays cache-resident.
const BLOCK: usize = 32;

/// Full-space OD of every **live** point against the live remainder of
/// the dataset (each query excludes itself), as `(id, od)` pairs in
/// ascending id order. Bit-identical to
/// `engine.od(ds.row(i), k, full, Some(i))` per live `i` on any of the
/// exact engines.
pub fn all_points_full_od(ds: &Dataset, metric: Metric, k: usize) -> Vec<(PointId, f64)> {
    let n = ds.len();
    let d = ds.dim();
    let live: Vec<PointId> = ds.live_ids().collect();
    if live.is_empty() || d == 0 {
        return live.into_iter().map(|i| (i, 0.0)).collect();
    }
    let cols = ds.to_column_major();
    let mut out = Vec::with_capacity(live.len());
    let mut acc = vec![0.0f64; BLOCK * n];
    let mut top = TopK::new(k);
    for block in live.chunks(BLOCK) {
        let acc = &mut acc[..block.len() * n];
        acc.fill(0.0);
        // Ascending dimensions, exactly the pre_dist_sub fold order.
        for j in 0..d {
            let col = &cols[j * n..(j + 1) * n];
            for (row, &q) in acc.chunks_exact_mut(n).zip(block) {
                let qv = col[q];
                for (slot, &p) in row.iter_mut().zip(col) {
                    *slot = metric.accumulate(*slot, (qv - p).abs());
                }
            }
        }
        for (row, &q) in acc.chunks_exact(n).zip(block) {
            top.reset(k);
            for (i, &pre) in row.iter().enumerate() {
                if i == q || !ds.is_live(i) {
                    continue;
                }
                top.offer(pre, i);
            }
            // Ascending (pre, id) summation — the shared OD order.
            let od: f64 = top.sorted().iter().map(|c| metric.finish(c.pre)).sum();
            out.push((q, od));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{build_engine, Engine};
    use crate::sharded::build_engine_sharded;
    use hos_data::Subspace;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        // Coarse grid: exact distance ties exercise the (pre, id)
        // tie-break through the blocked selection too.
        let flat: Vec<f64> = (0..n * d)
            .map(|_| (rng.gen_range(0..9) as f64) * 0.5)
            .collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn bit_identical_to_per_point_engine_queries() {
        // 70 points spans multiple blocks (BLOCK = 32), so block
        // boundaries are exercised.
        let ds = dataset(70, 4, 1);
        let full = Subspace::full(4);
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let blocked = all_points_full_od(&ds, metric, 5);
            assert_eq!(blocked.len(), 70);
            for kind in [Engine::Linear, Engine::XTree, Engine::VaFile] {
                let engine = build_engine(kind, ds.clone(), metric);
                for &(i, od) in &blocked {
                    assert_eq!(
                        od,
                        engine.od(ds.row(i), 5, full, Some(i)),
                        "{metric:?} {kind} point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn tombstones_skip_both_sides() {
        let mut ds = dataset(40, 3, 2);
        for id in [0usize, 13, 39] {
            ds.remove_row(id).unwrap();
        }
        let blocked = all_points_full_od(&ds, Metric::L2, 4);
        // Dead rows neither rank nor serve as neighbours.
        assert_eq!(blocked.len(), 37);
        assert!(blocked.iter().all(|&(i, _)| ds.is_live(i)));
        let engine = build_engine_sharded(Engine::Linear, ds.clone(), Metric::L2, 3, 2);
        for &(i, od) in &blocked {
            assert_eq!(
                od,
                engine.od(ds.row(i), 4, Subspace::full(3), Some(i)),
                "point {i}"
            );
        }
    }

    #[test]
    fn small_and_empty_edges() {
        let empty = Dataset::empty();
        assert!(all_points_full_od(&empty, Metric::L2, 3).is_empty());
        let one = Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        // Single live point, self-excluded: zero neighbours, OD 0.
        assert_eq!(all_points_full_od(&one, Metric::L2, 3), vec![(0, 0.0)]);
        let two = Dataset::from_rows(&[vec![0.0], vec![3.0]]).unwrap();
        assert_eq!(
            all_points_full_od(&two, Metric::L1, 5),
            vec![(0, 3.0), (1, 3.0)]
        );
    }
}
