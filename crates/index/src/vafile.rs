//! VA-file (Vector Approximation file; Weber, Schek, Blott — VLDB'98).
//!
//! The canonical alternative to hierarchical indexes in high
//! dimensionality: instead of a tree, store a compact quantised
//! *approximation* of every vector (`bits` per dimension) and answer
//! k-NN queries in two phases:
//!
//! 1. **Filter** — scan the approximations, computing per-vector lower
//!    and upper distance bounds from the quantisation cells alone; a
//!    vector whose lower bound exceeds the current kth-best upper
//!    bound cannot be a result.
//! 2. **Refine** — compute exact distances only for the survivors, in
//!    ascending lower-bound order, stopping once the next lower bound
//!    exceeds the kth exact distance.
//!
//! The approximation scan touches every point but reads only
//! `bits × |s|` of data per point, so the filter is cheap; the
//! expensive full-precision reads are the `distance_evals` the
//! experiments count. Subspace queries come for free: bounds are
//! accumulated only over the masked dimensions.

use crate::error::{validate_insert, validate_remove, IndexError};
use crate::knn::{IncrementalEngine, KnnEngine, Neighbor};
use crate::topk::TopK;
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// VA-file construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct VaFileConfig {
    /// Quantisation bits per dimension (cells = `2^bits`), 1..=8.
    pub bits: u32,
}

impl Default for VaFileConfig {
    fn default() -> Self {
        VaFileConfig { bits: 6 }
    }
}

/// The VA-file engine.
pub struct VaFile {
    dataset: Dataset,
    metric: Metric,
    /// Cell boundaries per dimension: `cells + 1` ascending marks
    /// (equi-width over the data range).
    marks: Vec<Vec<f64>>,
    /// Quantised cell index per (point, dimension), row-major.
    approx: Vec<u8>,
    cells: usize,
    evals: AtomicU64,
    /// Removals since the marks were last rebuilt. Removals never
    /// shrink marks in place, so after enough churn the cells are much
    /// wider than the live value range and the filter degrades;
    /// [`VaFile::requantise`] resets this.
    stale_removals: usize,
}

impl VaFile {
    /// Quantises the dataset. Marks span the **live** value range only
    /// — a tombstoned extreme must not widen every cell and weaken the
    /// filter brackets for the points that remain (the
    /// `build_marks_span_live_range_only` regression).
    ///
    /// # Panics
    /// Panics if `bits` is outside `1..=8`.
    pub fn build(dataset: Dataset, metric: Metric, cfg: VaFileConfig) -> Self {
        assert!((1..=8).contains(&cfg.bits), "bits must be in 1..=8");
        let mut va = VaFile {
            dataset,
            metric,
            marks: Vec::new(),
            approx: Vec::new(),
            cells: 1usize << cfg.bits,
            evals: AtomicU64::new(0),
            stale_removals: 0,
        };
        va.requantise();
        va
    }

    /// Number of quantisation cells per dimension.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Rebuilds the marks (equi-width over the **live** value range)
    /// and requantises every physical row. Used when an insert fixes
    /// the dimensionality of an engine built over an empty dataset;
    /// also safe to call any time the incremental mark-widening has
    /// degraded the filter (exactness never depends on the marks, only
    /// filter selectivity does).
    fn requantise(&mut self) {
        let d = self.dataset.dim();
        let cells = self.cells;
        self.marks = (0..d)
            .map(|c| {
                let col: Vec<f64> = self.dataset.iter().map(|(_, row)| row[c]).collect();
                let (lo, hi) = hos_data::stats::min_max(&col).unwrap_or((0.0, 1.0));
                let span = (hi - lo).max(f64::MIN_POSITIVE);
                let mut m: Vec<f64> = (0..=cells)
                    .map(|i| lo + span * i as f64 / cells as f64)
                    .collect();
                let last = m.len() - 1;
                m[last] = hi + span * 1e-9;
                m
            })
            .collect();
        self.approx = vec![0u8; self.dataset.len() * d];
        for i in 0..self.dataset.len() {
            // Tombstoned rows are quantised too (their slots must stay
            // aligned) but may clamp outside the live range — harmless,
            // they are skipped by every query.
            let row = self.dataset.row(i);
            for (c, &v) in row.iter().enumerate() {
                self.approx[i * d + c] = cell_of(&self.marks[c], v, cells) as u8;
            }
        }
        self.stale_removals = 0;
    }

    /// Lower and upper pre-metric distance bounds between `query` and
    /// the approximation of point `i`, over subspace `s`.
    fn bounds(&self, query: &[f64], i: PointId, s: Subspace) -> (f64, f64) {
        let d = self.dataset.dim();
        let mut lo_acc = 0.0;
        let mut hi_acc = 0.0;
        for dim in s.dims() {
            let cell = self.approx[i * d + dim] as usize;
            let cell_lo = self.marks[dim][cell];
            let cell_hi = self.marks[dim][cell + 1];
            let q = query[dim];
            let gap_lo = if q < cell_lo {
                cell_lo - q
            } else if q > cell_hi {
                q - cell_hi
            } else {
                0.0
            };
            let gap_hi = (q - cell_lo).abs().max((q - cell_hi).abs());
            lo_acc = self.metric.accumulate(lo_acc, gap_lo);
            hi_acc = self.metric.accumulate(hi_acc, gap_hi);
        }
        (lo_acc, hi_acc)
    }
}

fn cell_of(marks: &[f64], v: f64, cells: usize) -> usize {
    // Binary search over the ascending marks.
    match marks.binary_search_by(|m| m.partial_cmp(&v).expect("finite")) {
        Ok(i) => i.min(cells - 1),
        Err(i) => i.saturating_sub(1).min(cells - 1),
    }
}

impl KnnEngine for VaFile {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn into_dataset(self: Box<Self>) -> Dataset {
        self.dataset
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        let n = self.dataset.len();
        if k == 0 || n == 0 {
            return Vec::new();
        }
        // Phase 1: filter on approximation bounds. Track the kth
        // smallest *upper* bound seen; anything with a lower bound
        // beyond it is out.
        let mut upper = TopK::new(k);
        let mut survivors: Vec<(f64, PointId)> = Vec::new();
        for i in 0..n {
            if Some(i) == exclude || !self.dataset.is_live(i) {
                continue;
            }
            let (lo, hi) = self.bounds(query, i, s);
            upper.offer(hi, i);
            survivors.push((lo, i));
        }
        let kth_upper = upper.worst().unwrap_or(f64::INFINITY);
        survivors.retain(|&(lo, _)| lo <= kth_upper);
        // Phase 2: refine in ascending lower-bound order.
        survivors.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        let mut best = TopK::new(k);
        let mut evals = 0u64;
        for &(lo, i) in &survivors {
            if best.is_full() && best.worst().is_some_and(|w| lo > w) {
                break;
            }
            let pre = self.metric.pre_dist_sub(query, self.dataset.row(i), s);
            evals += 1;
            best.offer(pre, i);
        }
        self.evals.fetch_add(evals, AtomicOrdering::Relaxed);
        best.into_sorted()
            .into_iter()
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        let pre_radius = self.metric.pre_of(radius);
        let mut out = Vec::new();
        let mut evals = 0u64;
        for i in 0..self.dataset.len() {
            if Some(i) == exclude || !self.dataset.is_live(i) {
                continue;
            }
            let (lo, hi) = self.bounds(query, i, s);
            if lo > pre_radius {
                continue; // certainly outside
            }
            if hi <= pre_radius {
                // Certainly inside — but the caller wants the exact
                // distance, so one refinement read is still needed.
            }
            evals += 1;
            let d = self.metric.dist_sub(query, self.dataset.row(i), s);
            if d <= radius {
                out.push(Neighbor { id: i, dist: d });
            }
        }
        self.evals.fetch_add(evals, AtomicOrdering::Relaxed);
        out
    }

    fn distance_evals(&self) -> u64 {
        self.evals.load(AtomicOrdering::Relaxed)
    }

    fn as_incremental(&mut self) -> Option<&mut dyn IncrementalEngine> {
        Some(self)
    }
}

/// Incremental maintenance for the VA-file.
///
/// * **Insert** — quantise the new row with the existing marks. A
///   value outside the current range first *widens the outer marks*
///   (`marks[0]`/`marks[cells]`): widening only grows cells, so every
///   existing approximation's lower bound can only shrink and upper
///   bound only grow — both stay valid brackets, which is all the
///   filter's correctness needs. The k-NN result itself is exact
///   regardless of the marks, so incremental results stay
///   bit-identical to a cold rebuild (whose marks differ).
/// * **Remove** — tombstone; the filter and refine loops skip dead
///   rows. Approximation slots stay allocated until the dataset is
///   compacted offline. Once removals outnumber the live set the
///   marks are rebuilt over the live range (widening is never undone
///   in place), restoring filter selectivity after heavy churn.
impl IncrementalEngine for VaFile {
    fn insert(&mut self, row: &[f64]) -> Result<PointId, IndexError> {
        validate_insert(&self.dataset, row)?;
        let was_dimless = self.dataset.dim() == 0;
        let id = self.dataset.push_row(row)?;
        if was_dimless {
            // First row of an engine built over an empty dataset: the
            // insert fixed the arity, so build real marks now.
            self.requantise();
            return Ok(id);
        }
        let d = self.dataset.dim();
        debug_assert_eq!(self.approx.len(), id * d);
        for (c, &v) in row.iter().enumerate() {
            let m = &mut self.marks[c];
            let last = m.len() - 1;
            if v < m[0] {
                m[0] = v;
            }
            if v >= m[last] {
                let span = (v - m[0]).max(f64::MIN_POSITIVE);
                m[last] = v + span * 1e-9;
            }
            self.approx.push(cell_of(m, v, self.cells) as u8);
        }
        Ok(id)
    }

    fn remove(&mut self, id: PointId) -> Result<(), IndexError> {
        validate_remove(&self.dataset, id)?;
        self.dataset.remove_row(id)?;
        // Tombstoning alone keeps every bracket valid but never
        // tightens one; once removals dominate the live set, rebuild
        // the marks over what actually remains. Results are exact
        // either way — only filter selectivity is at stake — so the
        // trigger is a heuristic, not a correctness point.
        self.stale_removals += 1;
        if self.stale_removals > self.dataset.live_len().max(16) {
            self.requantise();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-50.0..50.0)).collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn quantisation_covers_extremes() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![0.5], vec![1.0]]).unwrap();
        let va = VaFile::build(ds, Metric::L2, VaFileConfig { bits: 2 });
        assert_eq!(va.cells(), 4);
        assert_eq!(va.approx[0], 0);
        assert_eq!(va.approx[2], 3); // max value in the top cell
    }

    #[test]
    fn bounds_bracket_exact_distance() {
        let ds = random_dataset(200, 5, 3);
        let va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        let q: Vec<f64> = (0..5).map(|i| i as f64 * 7.0 - 20.0).collect();
        for s in [Subspace::full(5), Subspace::from_dims(&[1, 3])] {
            for i in 0..ds.len() {
                let (lo, hi) = va.bounds(&q, i, s);
                let exact = Metric::L2.pre_dist_sub(&q, ds.row(i), s);
                assert!(lo <= exact + 1e-9, "lower bound violated: {lo} > {exact}");
                assert!(hi >= exact - 1e-9, "upper bound violated: {hi} < {exact}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        for metric in [Metric::L1, Metric::L2, Metric::LInf] {
            let ds = random_dataset(300, 6, 7);
            let va = VaFile::build(ds.clone(), metric, VaFileConfig::default());
            let lin = LinearScan::new(ds.clone(), metric);
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..15 {
                let q: Vec<f64> = (0..6).map(|_| rng.gen_range(-60.0..60.0)).collect();
                let mask = rng.gen_range(1u64..(1 << 6));
                let s = Subspace::from_mask(mask);
                let a = va.knn(&q, 5, s, None);
                let b = lin.knn(&q, 5, s, None);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert!(
                        (x.dist - y.dist).abs() < 1e-9,
                        "{metric:?} {s}: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let ds = random_dataset(300, 4, 13);
        let va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        let lin = LinearScan::new(ds, Metric::L2);
        let q = [0.0, 0.0, 0.0, 0.0];
        for radius in [10.0, 40.0, 120.0] {
            let mut a: Vec<_> = va
                .range(&q, radius, Subspace::full(4), Some(5))
                .iter()
                .map(|n| n.id)
                .collect();
            let mut b: Vec<_> = lin
                .range(&q, radius, Subspace::full(4), Some(5))
                .iter()
                .map(|n| n.id)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "radius {radius}");
        }
    }

    #[test]
    fn filter_skips_most_refinements() {
        let ds = random_dataset(4000, 8, 17);
        let va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        let q: Vec<f64> = ds.row(0).to_vec();
        let before = va.distance_evals();
        va.knn(&q, 5, Subspace::full(8), Some(0));
        let used = va.distance_evals() - before;
        assert!(used < 400, "VA filter refined {used} of 4000 points");
    }

    #[test]
    fn exclusion_and_edge_cases() {
        let ds = random_dataset(50, 3, 1);
        let va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        let q: Vec<f64> = ds.row(10).to_vec();
        let nn = va.knn(&q, 3, Subspace::full(3), Some(10));
        assert!(nn.iter().all(|n| n.id != 10));
        assert!(va.knn(&q, 0, Subspace::full(3), None).is_empty());
        let empty = VaFile::build(Dataset::empty(), Metric::L2, VaFileConfig::default());
        assert!(empty.knn(&[], 3, Subspace::empty(), None).is_empty());
    }

    #[test]
    fn constant_column_does_not_panic() {
        let ds = Dataset::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        let va = VaFile::build(ds, Metric::L2, VaFileConfig::default());
        let nn = va.knn(&[5.0, 2.1], 2, Subspace::full(2), None);
        assert_eq!(nn[0].id, 1);
    }

    /// Regression: `build` once derived marks from the *physical*
    /// columns, so a tombstoned extreme row widened every cell for the
    /// survivors. Marks must span the live range only — and the
    /// brackets must still be valid for every live point.
    #[test]
    fn build_marks_span_live_range_only() {
        let mut ds = random_dataset(120, 3, 21); // values in ±50
        let outlier = ds.push_row(&[1.0e6, -1.0e6, 1.0e6]).unwrap();
        ds.remove_row(outlier).unwrap();
        let va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        for c in 0..3 {
            let last = va.marks[c].len() - 1;
            assert!(
                va.marks[c][0] >= -51.0 && va.marks[c][last] <= 51.0,
                "dim {c}: marks [{}, {}] span the tombstoned extreme",
                va.marks[c][0],
                va.marks[c][last]
            );
        }
        // Tight marks are still correct marks.
        let q: Vec<f64> = ds.row(7).to_vec();
        for i in ds.live_ids() {
            let (lo, hi) = va.bounds(&q, i, Subspace::full(3));
            let exact = Metric::L2.pre_dist_sub(&q, ds.row(i), Subspace::full(3));
            assert!(lo <= exact + 1e-9 && hi >= exact - 1e-9, "point {i}");
        }
    }

    /// Heavy churn rebuilds the marks over the live range (an insert's
    /// widening plus tombstoning alone never tightens them), and the
    /// engine stays bit-exact against the linear-scan oracle
    /// throughout.
    #[test]
    fn churn_requantises_marks_and_stays_exact() {
        let ds = random_dataset(60, 2, 23); // values in ±50
        let mut va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        let far = va.insert(&[4.0e5, 4.0e5]).unwrap();
        let last = va.marks[0].len() - 1;
        assert!(va.marks[0][last] >= 4.0e5, "insert must widen the marks");
        va.remove(far).unwrap();
        // Remove until removals outnumber the live set; the rebuild
        // trigger must fire and tighten the outer marks back down.
        for id in 0..45 {
            va.remove(id).unwrap();
        }
        let last = va.marks[0].len() - 1;
        assert!(
            va.marks[0][last] <= 51.0,
            "marks still span the removed extreme after churn: {}",
            va.marks[0][last]
        );
        // Oracle pin: same mutations on the raw dataset, exact answers.
        let mut oracle = ds;
        oracle.push_row(&[4.0e5, 4.0e5]).unwrap();
        oracle.remove_row(far).unwrap();
        for id in 0..45 {
            oracle.remove_row(id).unwrap();
        }
        let lin = LinearScan::new(oracle.clone(), Metric::L2);
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..10 {
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-60.0..60.0)).collect();
            let s = Subspace::from_mask(rng.gen_range(1u64..4));
            assert_eq!(va.knn(&q, 4, s, None), lin.knn(&q, 4, s, None), "{s}");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_bits_rejected() {
        let ds = random_dataset(10, 2, 0);
        let _ = VaFile::build(ds, Metric::L2, VaFileConfig { bits: 9 });
    }
}
