//! Per-query distance cache: the `n x d` pre-distance matrix.
//!
//! The dynamic subspace search (paper §3.3) evaluates the OD of one
//! query point in up to `2^d - 1` subspaces. An uncached engine
//! re-reads every raw coordinate and recomputes every per-dimension
//! delta for each of those evaluations, so the same `|q_j - p_j|` is
//! computed up to `2^(d-1)` times. [`QueryContext`] computes each
//! per-dimension *pre-distance term* (`|q_j - p_j|` for L1/L∞, the
//! squared delta for L2, the `p`-th power for Lp) exactly once per
//! `(point, dimension)` pair; every subsequent subspace OD is then a
//! subset-combine over cached columns plus bounded top-k selection —
//! no raw coordinate is touched again.
//!
//! Exactness: the cached terms are precisely what
//! [`Metric::pre_dist_sub`] folds over, combined in the same ascending
//! dimension order with the same floating-point operations, so cached
//! ODs are **bit-identical** to uncached [`LinearScan`] ODs — not just
//! close. The equivalence property test in `tests/properties.rs` pins
//! this across all metrics and entire lattices.
//!
//! Engines opt in through [`crate::knn::KnnEngine::query_context`];
//! [`crate::batch::batch_od`] and `hos-core`'s `dynamic_search` use
//! the cache transparently whenever the engine provides one.
//!
//! [`LinearScan`]: crate::linear::LinearScan

use crate::knn::Neighbor;
use crate::topk::TopK;
use crate::walker::PrefixWalker;
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// The cached `n x d` pre-distance matrix of one query point.
///
/// Column-major: all `n` per-point terms of one dimension are
/// contiguous, so a subspace combine streams `|s|` cache-friendly
/// columns instead of `n` strided rows.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{KnnEngine, LinearScan, QueryContext};
///
/// let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![9.0, 9.0]]).unwrap();
/// let engine = LinearScan::new(ds, Metric::L2);
/// let query = [0.0, 0.0];
/// let ctx = engine.query_context(&query).expect("linear scan caches");
/// let s = Subspace::full(2);
/// // Cached OD is exactly the engine's OD:
/// assert_eq!(ctx.od(2, s, None), engine.od(&query, 2, s, None));
/// ```
pub struct QueryContext<'a> {
    metric: Metric,
    n: usize,
    /// `cols[j * n + i]` = pre-distance term of point `i` in dim `j`.
    cols: Vec<f64>,
    /// Tombstone snapshot at build time (empty = all rows live):
    /// cached terms exist for every physical row, but dead rows never
    /// enter selection — matching the live-only engine scans.
    dead: Vec<bool>,
    /// The owning engine's distance-evaluation counter, so cached OD
    /// work stays visible to the efficiency experiments.
    evals: Option<&'a AtomicU64>,
    /// Process-unique build id, so a [`crate::walker::PrefixStack`]
    /// can detect (and discard) accumulators computed under a
    /// different context instead of silently reusing them.
    uid: u64,
}

/// Source of [`QueryContext::uid`] values.
static NEXT_CTX_UID: AtomicU64 = AtomicU64::new(1);

impl<'a> QueryContext<'a> {
    /// Computes the pre-distance matrix for `query` against `dataset`:
    /// one pass over the raw coordinates, `n * d` stored terms.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from `dataset.dim()`.
    pub fn build(dataset: &Dataset, metric: Metric, query: &[f64]) -> QueryContext<'a> {
        let n = dataset.len();
        let d = dataset.dim();
        assert_eq!(query.len(), d, "query arity mismatch");
        let flat = dataset.as_flat();
        let mut cols = vec![0.0f64; n * d];
        for (j, &q) in query.iter().enumerate() {
            let col = &mut cols[j * n..(j + 1) * n];
            for (i, slot) in col.iter_mut().enumerate() {
                let gap = (q - flat[i * d + j]).abs();
                *slot = metric.accumulate(0.0, gap);
            }
        }
        let dead = if dataset.dead_count() > 0 {
            (0..n).map(|i| !dataset.is_live(i)).collect()
        } else {
            Vec::new()
        };
        QueryContext {
            metric,
            n,
            cols,
            dead,
            evals: None,
            uid: NEXT_CTX_UID.fetch_add(1, AtomicOrdering::Relaxed),
        }
    }

    /// The process-unique id of this build (see the `uid` field).
    #[inline]
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Attaches an engine's distance counter: every subsequent OD /
    /// k-NN call adds its logical point-distance count there.
    pub(crate) fn with_counter(mut self, evals: &'a AtomicU64) -> QueryContext<'a> {
        self.evals = Some(evals);
        self
    }

    /// Number of points in the cached matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cached dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The metric the terms were computed under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// A [`PrefixWalker`] over this context: the prefix-stack lattice
    /// kernel that makes each visited node an `O(n)` column fold
    /// instead of an `O(n · |s|)` recombine — bit-identical to
    /// [`QueryContext::od`] because both fold the same cached columns
    /// in the same ascending-dimension order.
    pub fn walker(&self) -> PrefixWalker<'_> {
        PrefixWalker::new(self)
    }

    /// Folds one cached column term into a running accumulator —
    /// the cached analogue of [`Metric::accumulate`].
    #[inline]
    pub(crate) fn combine(&self, acc: f64, term: f64) -> f64 {
        match self.metric {
            Metric::LInf => acc.max(term),
            _ => acc + term,
        }
    }

    /// The cached pre-distance column of dimension `j`: one term per
    /// physical row, in row order.
    #[inline]
    pub(crate) fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// Top-k selection over an externally accumulated pre-distance
    /// vector (one slot per physical row) — the prefix-stack kernel's
    /// selection step. Applies exactly the same exclusion, liveness
    /// and eval-accounting rules as [`QueryContext::od`]'s own
    /// selection, into a caller-owned reusable [`TopK`]; the kept
    /// candidates are left in the scratch (read them via
    /// [`TopK::sorted`]).
    pub(crate) fn select_acc(
        &self,
        acc: &[f64],
        k: usize,
        exclude: Option<PointId>,
        top: &mut TopK,
    ) {
        top.reset(k);
        if k == 0 || self.n == 0 {
            return;
        }
        debug_assert_eq!(acc.len(), self.n);
        let count = if self.dead.is_empty() {
            // All rows live: split the scan at the excluded id instead
            // of testing it per element. Offer order stays ascending
            // by id, so the kept set and tie-break are unchanged.
            let ex = exclude.unwrap_or(usize::MAX);
            let (head, tail) = if ex < acc.len() {
                (&acc[..ex], &acc[ex + 1..])
            } else {
                (acc, &[][..])
            };
            for (i, &pre) in head.iter().enumerate() {
                top.offer(pre, i);
            }
            for (i, &pre) in tail.iter().enumerate() {
                top.offer(pre, ex + 1 + i);
            }
            (head.len() + tail.len()) as u64
        } else {
            let mut live = 0u64;
            for (i, &pre) in acc.iter().enumerate() {
                if Some(i) == exclude || self.dead[i] {
                    continue;
                }
                live += 1;
                top.offer(pre, i);
            }
            live
        };
        if let Some(evals) = self.evals {
            evals.fetch_add(count, AtomicOrdering::Relaxed);
        }
    }

    /// Sums the finished distances of a selection produced by
    /// [`QueryContext::select_acc`] in ascending `(pre, id)` order —
    /// the same summation order as [`QueryContext::od`], so the result
    /// is bit-identical to the direct combine.
    #[inline]
    pub(crate) fn finish_od(&self, top: &mut TopK) -> f64 {
        top.sorted().iter().map(|c| self.metric.finish(c.pre)).sum()
    }

    /// Converts a selection produced by [`QueryContext::select_acc`]
    /// into finished [`Neighbor`]s in ascending `(distance, id)` order.
    #[inline]
    pub(crate) fn finish_knn(&self, top: &mut TopK) -> Vec<Neighbor> {
        top.sorted()
            .iter()
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    /// Pre-metric distance of point `i` in subspace `s`, from cache.
    #[inline]
    pub fn pre_dist(&self, i: PointId, s: Subspace) -> f64 {
        let mut acc = 0.0f64;
        for j in s.dims() {
            acc = self.combine(acc, self.cols[j * self.n + i]);
        }
        acc
    }

    /// The `k` nearest neighbours of the query in subspace `s`,
    /// ascending by distance, ties broken on ascending id — the same
    /// contract (and the same values) as the uncached engine.
    pub fn knn(&self, k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        let mut top = self.select(k, s, exclude);
        top.drain(..)
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    /// The outlying degree of the query in `s`: the sum of distances
    /// to its `k` nearest neighbours (paper §2), entirely from cache.
    pub fn od(&self, k: usize, s: Subspace, exclude: Option<PointId>) -> f64 {
        self.select(k, s, exclude)
            .iter()
            .map(|c| self.metric.finish(c.pre))
            .sum()
    }

    fn select(
        &self,
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<crate::topk::Candidate> {
        if k == 0 || self.n == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        let mut count = 0u64;
        for i in 0..self.n {
            if Some(i) == exclude || self.dead.get(i).copied().unwrap_or(false) {
                continue;
            }
            count += 1;
            top.offer(self.pre_dist(i, s), i);
        }
        if let Some(evals) = self.evals {
            evals.fetch_add(count, AtomicOrdering::Relaxed);
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnEngine;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-50.0..50.0)).collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn od_bit_identical_to_linear_scan_across_lattice() {
        let d = 5;
        let ds = random_dataset(80, d, 3);
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let engine = LinearScan::new(ds.clone(), metric);
            let q: Vec<f64> = ds.row(7).to_vec();
            let ctx = QueryContext::build(&ds, metric, &q);
            for s in Subspace::all_nonempty(d) {
                let cached = ctx.od(4, s, Some(7));
                let direct = engine.od(&q, 4, s, Some(7));
                assert_eq!(cached, direct, "{metric:?} {s}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan_exactly() {
        let d = 4;
        let ds = random_dataset(60, d, 9);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(0).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L2, &q);
        for s in Subspace::all_nonempty(d) {
            let a = ctx.knn(5, s, None);
            let b = engine.knn(&q, 5, s, None);
            assert_eq!(a, b, "{s}");
        }
    }

    #[test]
    fn empty_subspace_gives_zero_od() {
        let ds = random_dataset(10, 3, 1);
        let ctx = QueryContext::build(&ds, Metric::L2, &[0.0, 0.0, 0.0]);
        assert_eq!(ctx.od(3, Subspace::empty(), None), 0.0);
    }

    #[test]
    fn exclusion_and_k_edge_cases() {
        let ds = random_dataset(5, 2, 2);
        let q: Vec<f64> = ds.row(1).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L1, &q);
        let s = Subspace::full(2);
        assert!(ctx.knn(0, s, None).is_empty());
        let nn = ctx.knn(99, s, Some(1));
        assert_eq!(nn.len(), 4);
        assert!(nn.iter().all(|n| n.id != 1));
        // Self-inclusion: distance zero to itself, id 1 first.
        let with_self = ctx.knn(1, s, None);
        assert_eq!(with_self[0].id, 1);
        assert_eq!(with_self[0].dist, 0.0);
    }

    #[test]
    fn counter_attribution() {
        let ds = random_dataset(10, 3, 4);
        let q: Vec<f64> = ds.row(0).to_vec();
        let evals = AtomicU64::new(0);
        let ctx = QueryContext::build(&ds, Metric::L2, &q).with_counter(&evals);
        ctx.od(3, Subspace::full(3), None);
        assert_eq!(evals.load(AtomicOrdering::Relaxed), 10);
        ctx.od(3, Subspace::full(3), Some(0));
        assert_eq!(evals.load(AtomicOrdering::Relaxed), 19);
    }

    #[test]
    fn engine_hands_out_contexts_that_count() {
        let ds = random_dataset(12, 3, 5);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(2).to_vec();
        let ctx = engine.query_context(&q).expect("linear scan caches");
        ctx.od(3, Subspace::full(3), Some(2));
        assert_eq!(engine.distance_evals(), 11);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let ds = random_dataset(4, 3, 6);
        let _ = QueryContext::build(&ds, Metric::L2, &[0.0, 0.0]);
    }
}
