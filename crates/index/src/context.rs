//! Per-query distance cache: the `n x d` pre-distance matrix.
//!
//! The dynamic subspace search (paper §3.3) evaluates the OD of one
//! query point in up to `2^d - 1` subspaces. An uncached engine
//! re-reads every raw coordinate and recomputes every per-dimension
//! delta for each of those evaluations, so the same `|q_j - p_j|` is
//! computed up to `2^(d-1)` times. [`QueryContext`] computes each
//! per-dimension *pre-distance term* (`|q_j - p_j|` for L1/L∞, the
//! squared delta for L2, the `p`-th power for Lp) exactly once per
//! `(point, dimension)` pair; every subsequent subspace OD is then a
//! subset-combine over cached columns plus bounded top-k selection —
//! no raw coordinate is touched again.
//!
//! Exactness: the cached terms are precisely what
//! [`Metric::pre_dist_sub`] folds over, combined in the same ascending
//! dimension order with the same floating-point operations, so cached
//! ODs are **bit-identical** to uncached [`LinearScan`] ODs — not just
//! close. The equivalence property test in `tests/properties.rs` pins
//! this across all metrics and entire lattices.
//!
//! Engines opt in through [`crate::knn::KnnEngine::query_context`];
//! [`crate::batch::batch_od`] and `hos-core`'s `dynamic_search` use
//! the cache transparently whenever the engine provides one.
//!
//! [`LinearScan`]: crate::linear::LinearScan

use crate::knn::Neighbor;
use crate::topk::TopK;
use crate::walker::PrefixWalker;
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// The cached `n x d` pre-distance matrix of one query point.
///
/// Column-major: all `n` per-point terms of one dimension are
/// contiguous, so a subspace combine streams `|s|` cache-friendly
/// columns instead of `n` strided rows.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{KnnEngine, LinearScan, QueryContext};
///
/// let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![9.0, 9.0]]).unwrap();
/// let engine = LinearScan::new(ds, Metric::L2);
/// let query = [0.0, 0.0];
/// let ctx = engine.query_context(&query).expect("linear scan caches");
/// let s = Subspace::full(2);
/// // Cached OD is exactly the engine's OD:
/// assert_eq!(ctx.od(2, s, None), engine.od(&query, 2, s, None));
/// ```
pub struct QueryContext<'a> {
    metric: Metric,
    n: usize,
    /// `cols[j * n + i]` = pre-distance term of point `i` in dim `j`.
    cols: Vec<f64>,
    /// Tombstone snapshot at build time (empty = all rows live):
    /// cached terms exist for every physical row, but dead rows never
    /// enter selection — matching the live-only engine scans.
    dead: Vec<bool>,
    /// The owning engine's distance-evaluation counter, so cached OD
    /// work stays visible to the efficiency experiments.
    evals: Option<&'a AtomicU64>,
    /// Process-unique build id, so a [`crate::walker::PrefixStack`]
    /// can detect (and discard) accumulators computed under a
    /// different context instead of silently reusing them.
    uid: u64,
}

/// Source of [`QueryContext::uid`] values.
static NEXT_CTX_UID: AtomicU64 = AtomicU64::new(1);

/// Accumulator lanes of the chunked column folds. Four `f64`s span a
/// 256-bit vector register; rustc unrolls the fixed-width body into
/// straight-line code the auto-vectorizer handles without any SIMD
/// crate. The lanes run over *points* — each point's own fold order is
/// untouched, so chunking cannot change a single result bit (the
/// DESIGN.md §9 argument).
const FOLD_LANES: usize = 4;

/// `child[i] = parent[i] + col[i]` — the additive-metric column fold
/// (L1/L2/Lp cached terms are all summed), chunked for the vectorizer.
fn fold_add(child: &mut [f64], parent: &[f64], col: &[f64]) {
    let head = child.len() - child.len() % FOLD_LANES;
    for ((c, p), t) in child[..head]
        .chunks_exact_mut(FOLD_LANES)
        .zip(parent[..head].chunks_exact(FOLD_LANES))
        .zip(col[..head].chunks_exact(FOLD_LANES))
    {
        c[0] = p[0] + t[0];
        c[1] = p[1] + t[1];
        c[2] = p[2] + t[2];
        c[3] = p[3] + t[3];
    }
    for ((c, &p), &t) in child[head..]
        .iter_mut()
        .zip(&parent[head..])
        .zip(&col[head..])
    {
        *c = p + t;
    }
}

/// `child[i] = parent[i].max(col[i])` — the L∞ column fold.
fn fold_max(child: &mut [f64], parent: &[f64], col: &[f64]) {
    let head = child.len() - child.len() % FOLD_LANES;
    for ((c, p), t) in child[..head]
        .chunks_exact_mut(FOLD_LANES)
        .zip(parent[..head].chunks_exact(FOLD_LANES))
        .zip(col[..head].chunks_exact(FOLD_LANES))
    {
        c[0] = p[0].max(t[0]);
        c[1] = p[1].max(t[1]);
        c[2] = p[2].max(t[2]);
        c[3] = p[3].max(t[3]);
    }
    for ((c, &p), &t) in child[head..]
        .iter_mut()
        .zip(&parent[head..])
        .zip(&col[head..])
    {
        *c = p.max(t);
    }
}

/// Candidate lanes of the chunked bounded selection below.
const SEL_LANES: usize = 16;

/// Scalar elements offered after the fill phase before chunk-skipping
/// starts. Right after the fill the bound is the worst of the first
/// `k` elements — loose enough that early chunks would nearly all be
/// admitted (and pay per-element heap traffic). A short scalar warmup
/// tightens the bound to the running kth-best before the chunked loop
/// relies on it, capping total admissions near the k·log(n/k) optimum.
const SEL_WARMUP: usize = 32;

/// Offers a contiguous accumulator run (point ids `base..`) into
/// `top`, skipping [`SEL_LANES`]-wide chunks whose every pre-distance
/// lies strictly beyond the admission bound. The bound is the tighter
/// of [`TopK::bound`] and `w0`, a caller-supplied *seed*: any value
/// known to be `>=` the true kth-smallest pre-distance of the run (the
/// walker derives one from the previous lattice node's winners; pass
/// `+inf` for none). A skipped element satisfies `pre > bound >=
/// final kth-best`, which is exactly the condition [`TopK::offer`]'s
/// fast path rejects on — so the kept set, the tie-break and therefore
/// every downstream OD are bit-identical to offering every element;
/// ties *at* the bound stay in the chunk's offer loop (a smaller id
/// can still evict the worst). The bound is re-read only after a chunk
/// lands an offer: it only tightens, so a stale bound skips less,
/// never more.
fn offer_bounded(acc: &[f64], base: usize, top: &mut TopK, warmup: bool, w0: f64) {
    let mut i = 0usize;
    if w0.is_infinite() {
        // No seed: nothing can be skipped until the selection is full,
        // so offer the fill directly.
        while i < acc.len() && !top.is_full() {
            top.offer(acc[i], base + i);
            i += 1;
        }
        // Warmup phase: scalar offers that tighten the bound (see
        // SEL_WARMUP) before the chunked loop starts trusting it.
        // Callers resuming a selection whose bound is already tight
        // skip it.
        if warmup {
            let warm = (i + SEL_WARMUP).min(acc.len());
            while i < warm {
                top.offer(acc[i], base + i);
                i += 1;
            }
        }
    }
    // With a seed, the chunked loop runs from element 0: the heap
    // fills with survivors only (offer pushes while slots remain), and
    // the guaranteed >= k elements at or under `w0` ensure it fills by
    // the end of the run(s).
    let mut w = top.bound().min(w0);
    while i + SEL_LANES <= acc.len() {
        let c = &acc[i..i + SEL_LANES];
        // Tree-reduced chunk minimum: `min <= w` iff some lane is
        // admissible. Raw comparisons (not f64::min) keep the lowered
        // code branch-free (minpd), and the whole test vectorizes;
        // pre-distances are finite by construction.
        let mut m = [0.0f64; SEL_LANES / 2];
        for j in 0..SEL_LANES / 2 {
            m[j] = if c[j] < c[j + SEL_LANES / 2] {
                c[j]
            } else {
                c[j + SEL_LANES / 2]
            };
        }
        let mut width = SEL_LANES / 2;
        while width > 1 {
            width /= 2;
            for j in 0..width {
                m[j] = if m[j] < m[j + width] {
                    m[j]
                } else {
                    m[j + width]
                };
            }
        }
        let min = m[0];
        if min <= w {
            // Branchless compress of the chunk's true survivors: the
            // unconditional store + conditional increment has no
            // data-dependent control flow, so only the ~1-2 admissible
            // lanes reach `offer`'s branchy fast path instead of all
            // eight. The `& (SEL_LANES - 1)` is a no-op (len never
            // exceeds the chunk length) that makes the store provably
            // in-bounds — no per-lane panic branch.
            let mut buf = [0u32; SEL_LANES];
            let mut len = 0usize;
            for (j, &v) in c.iter().enumerate() {
                buf[len & (SEL_LANES - 1)] = j as u32;
                len += (v <= w) as usize;
            }
            for &j in &buf[..len] {
                top.offer(c[j as usize], base + i + j as usize);
            }
            if len > 0 {
                w = top.bound().min(w0);
            }
        }
        i += SEL_LANES;
    }
    for (j, &pre) in acc[i..].iter().enumerate() {
        top.offer(pre, base + i + j);
    }
}

impl<'a> QueryContext<'a> {
    /// Computes the pre-distance matrix for `query` against `dataset`:
    /// one pass over the raw coordinates, `n * d` stored terms.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from `dataset.dim()`.
    pub fn build(dataset: &Dataset, metric: Metric, query: &[f64]) -> QueryContext<'a> {
        let n = dataset.len();
        let d = dataset.dim();
        assert_eq!(query.len(), d, "query arity mismatch");
        let flat = dataset.as_flat();
        let mut cols = vec![0.0f64; n * d];
        for (j, &q) in query.iter().enumerate() {
            let col = &mut cols[j * n..(j + 1) * n];
            for (i, slot) in col.iter_mut().enumerate() {
                let gap = (q - flat[i * d + j]).abs();
                *slot = metric.accumulate(0.0, gap);
            }
        }
        let dead = if dataset.dead_count() > 0 {
            (0..n).map(|i| !dataset.is_live(i)).collect()
        } else {
            Vec::new()
        };
        QueryContext {
            metric,
            n,
            cols,
            dead,
            evals: None,
            uid: NEXT_CTX_UID.fetch_add(1, AtomicOrdering::Relaxed),
        }
    }

    /// The process-unique id of this build (see the `uid` field).
    #[inline]
    pub(crate) fn uid(&self) -> u64 {
        self.uid
    }

    /// Attaches an engine's distance counter: every subsequent OD /
    /// k-NN call adds its logical point-distance count there.
    pub(crate) fn with_counter(mut self, evals: &'a AtomicU64) -> QueryContext<'a> {
        self.evals = Some(evals);
        self
    }

    /// Number of points in the cached matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cached dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The metric the terms were computed under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// A [`PrefixWalker`] over this context: the prefix-stack lattice
    /// kernel that makes each visited node an `O(n)` column fold
    /// instead of an `O(n · |s|)` recombine — bit-identical to
    /// [`QueryContext::od`] because both fold the same cached columns
    /// in the same ascending-dimension order.
    pub fn walker(&self) -> PrefixWalker<'_> {
        PrefixWalker::new(self)
    }

    /// Folds one cached column term into a running accumulator —
    /// the cached analogue of [`Metric::accumulate`].
    #[inline]
    pub(crate) fn combine(&self, acc: f64, term: f64) -> f64 {
        match self.metric {
            Metric::LInf => acc.max(term),
            _ => acc + term,
        }
    }

    /// The cached pre-distance column of dimension `j`: one term per
    /// physical row, in row order.
    #[inline]
    pub(crate) fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// Folds the cached column of `dim` into `child` on top of
    /// `parent` (`None` = the fold identity, i.e. the root level) —
    /// the prefix-stack descend step, dispatched once per call to the
    /// chunked per-metric kernel instead of matching on the metric per
    /// element. `combine(0.0, term)` equals `term` bit for bit for
    /// every metric (terms are absolute gaps, never `-0.0`), so the
    /// root level is a plain chunk-friendly copy.
    pub(crate) fn fold_column_into(&self, dim: usize, parent: Option<&[f64]>, child: &mut [f64]) {
        let col = self.col(dim);
        match (parent, self.metric) {
            (None, _) => child.copy_from_slice(col),
            (Some(p), Metric::LInf) => fold_max(child, p, col),
            (Some(p), _) => fold_add(child, p, col),
        }
    }

    /// Top-k selection over an externally accumulated pre-distance
    /// vector (one slot per physical row) — the prefix-stack kernel's
    /// selection step. Applies exactly the same exclusion, liveness
    /// and eval-accounting rules as [`QueryContext::od`]'s own
    /// selection, into a caller-owned reusable [`TopK`]; the kept
    /// candidates are left in the scratch (read them via
    /// [`TopK::sorted`]).
    pub(crate) fn select_acc(
        &self,
        acc: &[f64],
        k: usize,
        exclude: Option<PointId>,
        top: &mut TopK,
    ) {
        top.reset(k);
        if k == 0 || self.n == 0 {
            return;
        }
        debug_assert_eq!(acc.len(), self.n);
        let count = if self.dead.is_empty() {
            // All rows live: split the scan at the excluded id instead
            // of testing it per element, then run the chunked bounded
            // offer over each contiguous run. Offer order stays
            // ascending by id and skips only provably-rejected
            // elements, so the kept set and tie-break are unchanged.
            let ex = exclude.unwrap_or(usize::MAX);
            let (head, tail, tail_base) = if ex < acc.len() {
                (&acc[..ex], &acc[ex + 1..], ex + 1)
            } else {
                (acc, &[][..], 0)
            };
            offer_bounded(head, 0, top, true, f64::INFINITY);
            offer_bounded(tail, tail_base, top, head.len() < SEL_WARMUP, f64::INFINITY);
            (head.len() + tail.len()) as u64
        } else {
            let mut live = 0u64;
            for (i, &pre) in acc.iter().enumerate() {
                if Some(i) == exclude || self.dead[i] {
                    continue;
                }
                live += 1;
                top.offer(pre, i);
            }
            live
        };
        if let Some(evals) = self.evals {
            evals.fetch_add(count, AtomicOrdering::Relaxed);
        }
    }

    /// Fused descend + selection: folds the cached column of `dim`
    /// into `child` on top of `parent` *and* runs the same bounded
    /// top-k selection as [`QueryContext::select_acc`], block by
    /// block — each `child` block is offered while its lines are still
    /// L1-resident from the fold's store. A fold over `n` points
    /// streams `3·8n` bytes (parent + column + child) through the
    /// cache, so by the time a separate selection pass starts, the
    /// early two-thirds of `child` have been evicted to L2; fusing
    /// removes that whole re-read (~half the per-node selection cost
    /// on a 2000-point walk).
    ///
    /// Bit-identity: the fold performs the identical per-point
    /// operation sequence as [`QueryContext::fold_column_into`] (the
    /// blocks partition the same chunked loops), and the offers arrive
    /// in the identical ascending-id order with the identical
    /// bound-skip rule as `select_acc` — so the kept set, tie-breaks,
    /// eval accounting and every downstream OD are unchanged bit for
    /// bit. `child` is fully materialised on return in all paths
    /// (callers reuse it as the parent of deeper folds).
    ///
    /// `seeds` are candidate point ids from a previous, related
    /// selection (the walker passes the previous lattice node's
    /// winners; empty = none). If `k` of them are live under the
    /// current exclusion, the worst of their pre-distances *in this
    /// subspace* — `O(1)` each from the parent accumulator plus the
    /// column — is an upper bound on the true kth-smallest
    /// pre-distance (any `k` distinct candidates majorise the true
    /// top-k), so the scan starts with a near-optimal admission bound
    /// instead of warming one up. Seeding never changes the kept set:
    /// the bound-skip rule still rejects only provably-losing
    /// elements, and [`TopK`]'s kept set is offer-order-independent.
    #[allow(clippy::too_many_arguments)] // internal fused kernel: the args ARE the fusion
    pub(crate) fn fold_select_acc(
        &self,
        dim: usize,
        parent: Option<&[f64]>,
        child: &mut [f64],
        k: usize,
        exclude: Option<PointId>,
        top: &mut TopK,
        seeds: &[PointId],
    ) {
        /// Per-block fused footprint: 3 streams × 8 bytes × 512 =
        /// 12 KiB, comfortably inside a 32 KiB L1d.
        const FUSE_BLOCK: usize = 512;
        top.reset(k);
        debug_assert_eq!(child.len(), self.n);
        if k == 0 || self.n == 0 || !self.dead.is_empty() {
            // Cold paths (empty selection, tombstones): materialise the
            // child in one pass and reuse the scalar selection loop so
            // liveness filtering and eval accounting stay one piece of
            // code. (`select_acc` resets `top` again — harmless.)
            self.fold_column_into(dim, parent, child);
            if k != 0 && self.n != 0 {
                self.select_acc(child, k, exclude, top);
            }
            return;
        }
        let col = self.col(dim);
        let ex = exclude.unwrap_or(usize::MAX);
        // Seed admission bound from prior winners, when a full set of
        // k valid ids is on hand (see the doc comment).
        let mut w0 = f64::INFINITY;
        if !seeds.is_empty() {
            let mut m = f64::NEG_INFINITY;
            let mut cnt = 0usize;
            for &id in seeds {
                if id < self.n && id != ex {
                    let pre = match parent {
                        Some(p) => self.combine(p[id], col[id]),
                        None => col[id],
                    };
                    m = if pre > m { pre } else { m };
                    cnt += 1;
                    if cnt == k {
                        break;
                    }
                }
            }
            if cnt == k {
                w0 = m;
            }
        }
        let mut i = 0usize;
        while i < self.n {
            let end = (i + FUSE_BLOCK).min(self.n);
            match (parent, self.metric) {
                (None, _) => child[i..end].copy_from_slice(&col[i..end]),
                (Some(p), Metric::LInf) => fold_max(&mut child[i..end], &p[i..end], &col[i..end]),
                (Some(p), _) => fold_add(&mut child[i..end], &p[i..end], &col[i..end]),
            }
            // Warmup only in the first block — later blocks resume a
            // selection whose bound is already tight.
            let warm = i == 0;
            if ex >= i && ex < end {
                offer_bounded(&child[i..ex], i, top, warm, w0);
                offer_bounded(
                    &child[ex + 1..end],
                    ex + 1,
                    top,
                    warm && ex < SEL_WARMUP,
                    w0,
                );
            } else {
                offer_bounded(&child[i..end], i, top, warm, w0);
            }
            i = end;
        }
        if let Some(evals) = self.evals {
            evals.fetch_add(
                (self.n - usize::from(ex < self.n)) as u64,
                AtomicOrdering::Relaxed,
            );
        }
    }

    /// Sums the finished distances of a selection produced by
    /// [`QueryContext::select_acc`] in ascending `(pre, id)` order —
    /// the same summation order as [`QueryContext::od`], so the result
    /// is bit-identical to the direct combine.
    #[inline]
    pub(crate) fn finish_od(&self, top: &mut TopK) -> f64 {
        top.sorted().iter().map(|c| self.metric.finish(c.pre)).sum()
    }

    /// Converts a selection produced by [`QueryContext::select_acc`]
    /// into finished [`Neighbor`]s in ascending `(distance, id)` order.
    #[inline]
    pub(crate) fn finish_knn(&self, top: &mut TopK) -> Vec<Neighbor> {
        top.sorted()
            .iter()
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    /// Pre-metric distance of point `i` in subspace `s`, from cache.
    #[inline]
    pub fn pre_dist(&self, i: PointId, s: Subspace) -> f64 {
        let mut acc = 0.0f64;
        for j in s.dims() {
            acc = self.combine(acc, self.cols[j * self.n + i]);
        }
        acc
    }

    /// The `k` nearest neighbours of the query in subspace `s`,
    /// ascending by distance, ties broken on ascending id — the same
    /// contract (and the same values) as the uncached engine.
    pub fn knn(&self, k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        let mut top = self.select(k, s, exclude);
        top.drain(..)
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    /// The outlying degree of the query in `s`: the sum of distances
    /// to its `k` nearest neighbours (paper §2), entirely from cache.
    pub fn od(&self, k: usize, s: Subspace, exclude: Option<PointId>) -> f64 {
        self.select(k, s, exclude)
            .iter()
            .map(|c| self.metric.finish(c.pre))
            .sum()
    }

    fn select(
        &self,
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<crate::topk::Candidate> {
        if k == 0 || self.n == 0 {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        let mut count = 0u64;
        for i in 0..self.n {
            if Some(i) == exclude || self.dead.get(i).copied().unwrap_or(false) {
                continue;
            }
            count += 1;
            top.offer(self.pre_dist(i, s), i);
        }
        if let Some(evals) = self.evals {
            evals.fetch_add(count, AtomicOrdering::Relaxed);
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnEngine;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-50.0..50.0)).collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn od_bit_identical_to_linear_scan_across_lattice() {
        let d = 5;
        let ds = random_dataset(80, d, 3);
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let engine = LinearScan::new(ds.clone(), metric);
            let q: Vec<f64> = ds.row(7).to_vec();
            let ctx = QueryContext::build(&ds, metric, &q);
            for s in Subspace::all_nonempty(d) {
                let cached = ctx.od(4, s, Some(7));
                let direct = engine.od(&q, 4, s, Some(7));
                assert_eq!(cached, direct, "{metric:?} {s}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan_exactly() {
        let d = 4;
        let ds = random_dataset(60, d, 9);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(0).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L2, &q);
        for s in Subspace::all_nonempty(d) {
            let a = ctx.knn(5, s, None);
            let b = engine.knn(&q, 5, s, None);
            assert_eq!(a, b, "{s}");
        }
    }

    #[test]
    fn empty_subspace_gives_zero_od() {
        let ds = random_dataset(10, 3, 1);
        let ctx = QueryContext::build(&ds, Metric::L2, &[0.0, 0.0, 0.0]);
        assert_eq!(ctx.od(3, Subspace::empty(), None), 0.0);
    }

    #[test]
    fn exclusion_and_k_edge_cases() {
        let ds = random_dataset(5, 2, 2);
        let q: Vec<f64> = ds.row(1).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L1, &q);
        let s = Subspace::full(2);
        assert!(ctx.knn(0, s, None).is_empty());
        let nn = ctx.knn(99, s, Some(1));
        assert_eq!(nn.len(), 4);
        assert!(nn.iter().all(|n| n.id != 1));
        // Self-inclusion: distance zero to itself, id 1 first.
        let with_self = ctx.knn(1, s, None);
        assert_eq!(with_self[0].id, 1);
        assert_eq!(with_self[0].dist, 0.0);
    }

    #[test]
    fn counter_attribution() {
        let ds = random_dataset(10, 3, 4);
        let q: Vec<f64> = ds.row(0).to_vec();
        let evals = AtomicU64::new(0);
        let ctx = QueryContext::build(&ds, Metric::L2, &q).with_counter(&evals);
        ctx.od(3, Subspace::full(3), None);
        assert_eq!(evals.load(AtomicOrdering::Relaxed), 10);
        ctx.od(3, Subspace::full(3), Some(0));
        assert_eq!(evals.load(AtomicOrdering::Relaxed), 19);
    }

    #[test]
    fn engine_hands_out_contexts_that_count() {
        let ds = random_dataset(12, 3, 5);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(2).to_vec();
        let ctx = engine.query_context(&q).expect("linear scan caches");
        ctx.od(3, Subspace::full(3), Some(2));
        assert_eq!(engine.distance_evals(), 11);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let ds = random_dataset(4, 3, 6);
        let _ = QueryContext::build(&ds, Metric::L2, &[0.0, 0.0]);
    }
}
