//! The k-NN engine abstraction used by every search layer.

use crate::context::QueryContext;
use crate::error::IndexError;
use crate::evaluator::{LazyContextEvaluator, OdEvaluator};
use hos_data::{Dataset, Metric, PointId, Subspace};

/// One neighbour returned by a query: the point and its distance to
/// the query in the queried subspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Row id of the neighbour in the engine's dataset.
    pub id: PointId,
    /// Distance in the queried subspace (finished, not pre-metric).
    pub dist: f64,
}

/// A k-NN engine over a fixed dataset and metric.
///
/// Implementations must report **exact** distances and ODs: HOS-Miner's
/// pruning arguments rely on true OD values, so an engine that
/// estimated them would silently invalidate Property 1/2 reasoning.
/// The exact-scan engines additionally guarantee exact *recall* (the
/// returned set is the true k-NN set); [`crate::hnsw::HnswEngine`]
/// relaxes only that half of the contract — its candidate set may miss
/// a true neighbour, but every number attached to what it returns is
/// computed with the same exact f64 arithmetic and `(distance, id)`
/// ordering, and its recall is measured and gated by the recall-oracle
/// tests.
pub trait KnnEngine: Send + Sync {
    /// The indexed dataset.
    fn dataset(&self) -> &Dataset;

    /// The distance metric.
    fn metric(&self) -> Metric;

    /// The `k` nearest neighbours of `query` in subspace `s`, sorted
    /// by ascending distance. `exclude` removes one point id from
    /// consideration (the query itself, when it is a dataset member).
    ///
    /// Returns fewer than `k` neighbours only when the dataset (minus
    /// the exclusion) holds fewer than `k` points. An empty subspace
    /// yields distance `0` to every point.
    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor>;

    /// Every point within `radius` of `query` in subspace `s`
    /// (inclusive), in arbitrary order.
    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor>;

    /// The outlying degree of `query` in `s`: the sum of distances to
    /// its `k` nearest neighbours (paper §2).
    fn od(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> f64 {
        self.knn(query, k, s, exclude).iter().map(|n| n.dist).sum()
    }

    /// Number of distance computations performed so far, if the
    /// engine counts them (used by the efficiency experiments).
    fn distance_evals(&self) -> u64 {
        0
    }

    /// A per-query distance cache over this engine's dataset, when the
    /// engine supports one (see [`QueryContext`]). Batch evaluators
    /// ([`crate::batch::batch_od`], `hos-core`'s `dynamic_search`) use
    /// it transparently: one `n x d` pre-distance pass per query point
    /// replaces per-subspace raw-coordinate scans.
    ///
    /// The default is `None`: engines with their own pruning structure
    /// (X-tree, VA-file) answer each query through that structure, and
    /// a full-matrix cache would bypass exactly what makes them worth
    /// benchmarking.
    fn query_context<'a>(&'a self, query: &[f64]) -> Option<QueryContext<'a>> {
        let _ = query;
        None
    }

    /// Sets the engine's *internal* fan-out width, for engines that
    /// parallelise single queries themselves (the sharded engine fans
    /// k-NN/range/OD calls over its shards). Plain engines answer
    /// queries on the calling thread and ignore this. Never changes
    /// any result — only how many workers compute it.
    fn set_threads(&self, threads: usize) {
        let _ = threads;
    }

    /// Sets the candidate-pool width (`ef_search`) for engines whose
    /// recall is tunable ([`crate::hnsw::HnswEngine`]; the sharded
    /// engine forwards to its shards). Exact engines ignore it — their
    /// recall is identically 1 at any width. Like
    /// [`KnnEngine::set_threads`] this is a machine-tuning knob, not
    /// part of the model: it is never persisted.
    fn set_search_width(&self, ef: usize) {
        let _ = ef;
    }

    /// The current candidate-pool width, or `None` for engines whose
    /// recall is not width-tunable.
    fn search_width(&self) -> Option<usize> {
        None
    }

    /// An [`OdEvaluator`] for one `(engine, query)` pair: the object
    /// every search layer streams subspaces at. The default is the
    /// [`LazyContextEvaluator`] (uncached queries until the `2d`
    /// amortisation breakeven, then a per-query distance cache when
    /// the engine provides one); engines with their own execution
    /// strategy override it — [`crate::sharded::ShardedEngine`]
    /// returns a shard-fanning evaluator.
    fn evaluator<'a>(
        &'a self,
        query: &'a [f64],
        k: usize,
        exclude: Option<PointId>,
    ) -> Box<dyn OdEvaluator + 'a> {
        Box::new(LazyContextEvaluator::new(self, query, k, exclude))
    }

    /// Checked k-NN: validates the query (arity, finiteness) and that
    /// enough **live** candidates exist to return a full `k`-list,
    /// then delegates to [`KnnEngine::knn`]. The unchecked path keeps
    /// its "fewer than `k` only when the data runs out" contract for
    /// callers that want partial lists; OD consumers, whose measure is
    /// only meaningful over exactly `k` neighbours, use this one.
    fn try_knn(
        &self,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Result<Vec<Neighbor>, IndexError> {
        let ds = self.dataset();
        if query.len() != ds.dim() {
            return Err(IndexError::Shape {
                expected: ds.dim(),
                got: query.len(),
            });
        }
        if query.iter().any(|v| !v.is_finite()) {
            return Err(IndexError::NonFinite);
        }
        let mut available = ds.live_len();
        if exclude.is_some_and(|e| ds.is_live(e)) {
            available -= 1;
        }
        if available < k {
            return Err(IndexError::InsufficientPoints { available, k });
        }
        Ok(self.knn(query, k, s, exclude))
    }

    /// Checked OD: [`KnnEngine::try_knn`] summed — errors instead of
    /// silently understating the OD when fewer than `k` live
    /// candidates remain.
    fn try_od(
        &self,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Result<f64, IndexError> {
        Ok(self
            .try_knn(query, k, s, exclude)?
            .iter()
            .map(|n| n.dist)
            .sum())
    }

    /// The engine's incremental-mutation capability, if it has one.
    /// Every engine in this crate returns `Some`; the default `None`
    /// keeps the trait implementable by fit-once engines.
    fn as_incremental(&mut self) -> Option<&mut dyn IncrementalEngine> {
        None
    }

    /// Consumes the engine and returns its dataset **without copying**
    /// — every engine in this crate owns its `Dataset` outright. This
    /// is what lets callers compact or snapshot a windowed dataset at
    /// peak-memory moments (the 3:1 tombstone valve) without first
    /// cloning the full matrix. The default clones, keeping the trait
    /// implementable by engines that only borrow their data.
    fn into_dataset(self: Box<Self>) -> Dataset {
        self.dataset().clone()
    }
}

/// Incremental mutation: engines that can absorb inserts and removals
/// without a rebuild.
///
/// # Equivalence contract
///
/// After any sequence of `insert`/`remove` calls, every query result
/// (`knn`, `range`, `od`, evaluator paths) must be **bit-identical**
/// to a cold rebuild of the same engine kind over the surviving rows
/// — same distances, same `(distance, id)` ordering, with incremental
/// ids related to cold-rebuild ids by the order-preserving compaction
/// map. `tests/incremental_oracle.rs` (workspace root) pins this for
/// every engine under randomized op sequences.
///
/// Ids are append-only: `insert` returns `dataset().len() - 1` and
/// `remove` tombstones without renumbering, so callers can hold ids
/// across mutations.
pub trait IncrementalEngine {
    /// Appends one point, returning its id.
    fn insert(&mut self, row: &[f64]) -> Result<PointId, IndexError>;

    /// Removes (tombstones) one point. The id stays allocated; using
    /// it again yields [`IndexError::DeadPoint`].
    fn remove(&mut self, id: PointId) -> Result<(), IndexError>;
}

/// A concrete engine choice, for configs and CLIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Exact brute-force scan.
    #[default]
    Linear,
    /// X-tree index.
    XTree,
    /// VA-file (quantised filter-and-refine scan).
    VaFile,
    /// HNSW graph (approximate-recall candidate generation with exact
    /// re-rank; see [`crate::hnsw`]).
    Hnsw,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "linear" | "scan" => Ok(Engine::Linear),
            "xtree" | "x-tree" => Ok(Engine::XTree),
            "vafile" | "va-file" | "va" => Ok(Engine::VaFile),
            "hnsw" => Ok(Engine::Hnsw),
            other => Err(format!(
                "unknown engine {other:?} (expected linear|xtree|vafile|hnsw)"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Linear => write!(f, "linear"),
            Engine::XTree => write!(f, "xtree"),
            Engine::VaFile => write!(f, "vafile"),
            Engine::Hnsw => write!(f, "hnsw"),
        }
    }
}

/// Builds the chosen engine over a dataset.
pub fn build_engine(engine: Engine, dataset: Dataset, metric: Metric) -> Box<dyn KnnEngine> {
    match engine {
        Engine::Linear => Box::new(crate::linear::LinearScan::new(dataset, metric)),
        Engine::XTree => Box::new(crate::xtree::XTree::build(
            dataset,
            metric,
            crate::xtree::XTreeConfig::default(),
        )),
        Engine::VaFile => Box::new(crate::vafile::VaFile::build(
            dataset,
            metric,
            crate::vafile::VaFileConfig::default(),
        )),
        Engine::Hnsw => Box::new(crate::hnsw::HnswEngine::build(
            dataset,
            metric,
            crate::hnsw::HnswConfig::default(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parse_and_display() {
        assert_eq!("linear".parse::<Engine>().unwrap(), Engine::Linear);
        assert_eq!("XTREE".parse::<Engine>().unwrap(), Engine::XTree);
        assert_eq!("x-tree".parse::<Engine>().unwrap(), Engine::XTree);
        assert_eq!("va".parse::<Engine>().unwrap(), Engine::VaFile);
        assert_eq!("VA-FILE".parse::<Engine>().unwrap(), Engine::VaFile);
        assert_eq!("hnsw".parse::<Engine>().unwrap(), Engine::Hnsw);
        assert_eq!("HNSW".parse::<Engine>().unwrap(), Engine::Hnsw);
        assert!("quadtree".parse::<Engine>().is_err());
        assert_eq!(Engine::Linear.to_string(), "linear");
        assert_eq!(Engine::XTree.to_string(), "xtree");
        assert_eq!(Engine::VaFile.to_string(), "vafile");
        assert_eq!(Engine::Hnsw.to_string(), "hnsw");
        assert_eq!(Engine::default(), Engine::Linear);
    }

    #[test]
    fn build_engine_returns_working_engines() {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]]).unwrap();
        for kind in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
            let e = build_engine(kind, ds.clone(), Metric::L2);
            let nn = e.knn(&[0.1, 0.1], 1, Subspace::full(2), None);
            assert_eq!(nn[0].id, 0, "{kind}");
        }
    }

    /// Every engine (plain and sharded) exposes the incremental
    /// capability, and the checked query path returns typed errors —
    /// not panics, not silently short lists — once removals shrink the
    /// live set below `k`, all the way down to empty.
    #[test]
    fn try_knn_k_edge_and_incremental_smoke_per_engine() {
        use crate::error::IndexError;
        use crate::sharded::build_engine_sharded;

        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let s = Subspace::full(2);
        for kind in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
            for shards in [1usize, 3] {
                let label = format!("{kind} shards={shards}");
                let mut e = build_engine_sharded(kind, ds.clone(), Metric::L2, shards, 2);
                // Checked path agrees with the unchecked one when valid.
                assert_eq!(
                    e.try_knn(&[1.0, 1.0], 3, s, Some(0)).unwrap(),
                    e.knn(&[1.0, 1.0], 3, s, Some(0)),
                    "{label}"
                );
                // Malformed queries are typed errors.
                assert_eq!(
                    e.try_knn(&[1.0], 3, s, None),
                    Err(IndexError::Shape {
                        expected: 2,
                        got: 1
                    }),
                    "{label}"
                );
                assert_eq!(
                    e.try_knn(&[f64::NAN, 0.0], 3, s, None),
                    Err(IndexError::NonFinite),
                    "{label}"
                );
                // Shrink below k: 8 live, remove 3 → 5 live; k=5 with
                // self-exclusion leaves only 4 candidates.
                let inc = e.as_incremental().expect(&label);
                for id in [1usize, 4, 6] {
                    inc.remove(id).unwrap();
                }
                assert_eq!(inc.remove(4), Err(IndexError::DeadPoint(4)), "{label}");
                assert_eq!(
                    inc.remove(99),
                    Err(IndexError::OutOfBounds { id: 99, len: 8 }),
                    "{label}"
                );
                assert_eq!(
                    e.try_knn(&[1.0, 1.0], 5, s, Some(0)),
                    Err(IndexError::InsufficientPoints { available: 4, k: 5 }),
                    "{label}"
                );
                assert!(e.try_od(&[1.0, 1.0], 4, s, Some(0)).is_ok(), "{label}");
                // Remove everything: the empty edge is an error too.
                for id in [0usize, 2, 3, 5, 7] {
                    e.as_incremental().unwrap().remove(id).unwrap();
                }
                assert_eq!(
                    e.try_knn(&[1.0, 1.0], 1, s, None),
                    Err(IndexError::InsufficientPoints { available: 0, k: 1 }),
                    "{label}"
                );
                assert!(e.knn(&[1.0, 1.0], 2, s, None).is_empty(), "{label}");
                // Inserting revives the engine; mutation validation is
                // typed as well.
                let id = e.as_incremental().unwrap().insert(&[0.5, 0.5]).unwrap();
                assert_eq!(id, 8, "{label}");
                assert_eq!(
                    e.as_incremental().unwrap().insert(&[0.5]),
                    Err(IndexError::Shape {
                        expected: 2,
                        got: 1
                    }),
                    "{label}"
                );
                assert_eq!(
                    e.as_incremental().unwrap().insert(&[f64::INFINITY, 0.0]),
                    Err(IndexError::NonFinite),
                    "{label}"
                );
                let nn = e.try_knn(&[0.0, 0.0], 1, s, None).unwrap();
                assert_eq!(nn[0].id, 8, "{label}");
            }
        }
    }

    /// Engines built over an *empty* dataset accept their first insert
    /// (which fixes the arity) and answer queries afterwards.
    #[test]
    fn incremental_insert_into_empty_engine() {
        use crate::sharded::build_engine_sharded;
        for kind in [Engine::Linear, Engine::XTree, Engine::VaFile, Engine::Hnsw] {
            for shards in [1usize, 2] {
                let mut e = build_engine_sharded(kind, Dataset::empty(), Metric::L2, shards, 1);
                let inc = e.as_incremental().unwrap();
                assert_eq!(inc.insert(&[1.0, 2.0, 3.0]).unwrap(), 0);
                assert_eq!(inc.insert(&[4.0, 5.0, 6.0]).unwrap(), 1);
                let nn = e.knn(&[1.0, 2.0, 3.0], 2, Subspace::full(3), None);
                assert_eq!(nn.len(), 2, "{kind} shards={shards}");
                assert_eq!(nn[0].id, 0);
                assert_eq!(nn[0].dist, 0.0);
            }
        }
    }
}
