//! The k-NN engine abstraction used by every search layer.

use crate::context::QueryContext;
use crate::evaluator::{LazyContextEvaluator, OdEvaluator};
use hos_data::{Dataset, Metric, PointId, Subspace};

/// One neighbour returned by a query: the point and its distance to
/// the query in the queried subspace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Row id of the neighbour in the engine's dataset.
    pub id: PointId,
    /// Distance in the queried subspace (finished, not pre-metric).
    pub dist: f64,
}

/// A k-NN engine over a fixed dataset and metric.
///
/// Implementations must return **exact** neighbours: HOS-Miner's
/// pruning arguments rely on true OD values, so approximate engines
/// would silently invalidate Property 1/2 reasoning.
pub trait KnnEngine: Send + Sync {
    /// The indexed dataset.
    fn dataset(&self) -> &Dataset;

    /// The distance metric.
    fn metric(&self) -> Metric;

    /// The `k` nearest neighbours of `query` in subspace `s`, sorted
    /// by ascending distance. `exclude` removes one point id from
    /// consideration (the query itself, when it is a dataset member).
    ///
    /// Returns fewer than `k` neighbours only when the dataset (minus
    /// the exclusion) holds fewer than `k` points. An empty subspace
    /// yields distance `0` to every point.
    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor>;

    /// Every point within `radius` of `query` in subspace `s`
    /// (inclusive), in arbitrary order.
    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor>;

    /// The outlying degree of `query` in `s`: the sum of distances to
    /// its `k` nearest neighbours (paper §2).
    fn od(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> f64 {
        self.knn(query, k, s, exclude).iter().map(|n| n.dist).sum()
    }

    /// Number of distance computations performed so far, if the
    /// engine counts them (used by the efficiency experiments).
    fn distance_evals(&self) -> u64 {
        0
    }

    /// A per-query distance cache over this engine's dataset, when the
    /// engine supports one (see [`QueryContext`]). Batch evaluators
    /// ([`crate::batch::batch_od`], `hos-core`'s `dynamic_search`) use
    /// it transparently: one `n x d` pre-distance pass per query point
    /// replaces per-subspace raw-coordinate scans.
    ///
    /// The default is `None`: engines with their own pruning structure
    /// (X-tree, VA-file) answer each query through that structure, and
    /// a full-matrix cache would bypass exactly what makes them worth
    /// benchmarking.
    fn query_context<'a>(&'a self, query: &[f64]) -> Option<QueryContext<'a>> {
        let _ = query;
        None
    }

    /// Sets the engine's *internal* fan-out width, for engines that
    /// parallelise single queries themselves (the sharded engine fans
    /// k-NN/range/OD calls over its shards). Plain engines answer
    /// queries on the calling thread and ignore this. Never changes
    /// any result — only how many workers compute it.
    fn set_threads(&self, threads: usize) {
        let _ = threads;
    }

    /// An [`OdEvaluator`] for one `(engine, query)` pair: the object
    /// every search layer streams subspaces at. The default is the
    /// [`LazyContextEvaluator`] (uncached queries until the `2d`
    /// amortisation breakeven, then a per-query distance cache when
    /// the engine provides one); engines with their own execution
    /// strategy override it — [`crate::sharded::ShardedEngine`]
    /// returns a shard-fanning evaluator.
    fn evaluator<'a>(
        &'a self,
        query: &'a [f64],
        k: usize,
        exclude: Option<PointId>,
    ) -> Box<dyn OdEvaluator + 'a> {
        Box::new(LazyContextEvaluator::new(self, query, k, exclude))
    }
}

/// A concrete engine choice, for configs and CLIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Exact brute-force scan.
    #[default]
    Linear,
    /// X-tree index.
    XTree,
    /// VA-file (quantised filter-and-refine scan).
    VaFile,
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "linear" | "scan" => Ok(Engine::Linear),
            "xtree" | "x-tree" => Ok(Engine::XTree),
            "vafile" | "va-file" | "va" => Ok(Engine::VaFile),
            other => Err(format!(
                "unknown engine {other:?} (expected linear|xtree|vafile)"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Linear => write!(f, "linear"),
            Engine::XTree => write!(f, "xtree"),
            Engine::VaFile => write!(f, "vafile"),
        }
    }
}

/// Builds the chosen engine over a dataset.
pub fn build_engine(engine: Engine, dataset: Dataset, metric: Metric) -> Box<dyn KnnEngine> {
    match engine {
        Engine::Linear => Box::new(crate::linear::LinearScan::new(dataset, metric)),
        Engine::XTree => Box::new(crate::xtree::XTree::build(
            dataset,
            metric,
            crate::xtree::XTreeConfig::default(),
        )),
        Engine::VaFile => Box::new(crate::vafile::VaFile::build(
            dataset,
            metric,
            crate::vafile::VaFileConfig::default(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parse_and_display() {
        assert_eq!("linear".parse::<Engine>().unwrap(), Engine::Linear);
        assert_eq!("XTREE".parse::<Engine>().unwrap(), Engine::XTree);
        assert_eq!("x-tree".parse::<Engine>().unwrap(), Engine::XTree);
        assert_eq!("va".parse::<Engine>().unwrap(), Engine::VaFile);
        assert_eq!("VA-FILE".parse::<Engine>().unwrap(), Engine::VaFile);
        assert!("quadtree".parse::<Engine>().is_err());
        assert_eq!(Engine::Linear.to_string(), "linear");
        assert_eq!(Engine::XTree.to_string(), "xtree");
        assert_eq!(Engine::VaFile.to_string(), "vafile");
        assert_eq!(Engine::default(), Engine::Linear);
    }

    #[test]
    fn build_engine_returns_working_engines() {
        let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]]).unwrap();
        for kind in [Engine::Linear, Engine::XTree, Engine::VaFile] {
            let e = build_engine(kind, ds.clone(), Metric::L2);
            let nn = e.knn(&[0.1, 0.1], 1, Subspace::full(2), None);
            assert_eq!(nn[0].id, 0, "{kind}");
        }
    }
}
