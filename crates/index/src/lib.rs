//! # hos-index
//!
//! k-nearest-neighbour engines for HOS-Miner. The paper's architecture
//! (Figure 2) includes an *X-tree Indexing module* that indexes the
//! high-dimensional dataset "to facilitate k-NN search in every
//! subspace"; this crate provides that module plus a linear-scan
//! reference engine used both as a baseline (experiment E7) and as a
//! correctness oracle in tests.
//!
//! * [`knn::KnnEngine`] — the engine abstraction: k-NN and range
//!   queries in an arbitrary axis-parallel subspace, with optional
//!   self-exclusion for queries that are dataset members.
//! * [`linear::LinearScan`] — exact brute force with a bounded heap.
//! * [`xtree::XTree`] — a from-scratch X-tree (Berchtold, Keim,
//!   Kriegel, VLDB'96): an R-tree derivative whose directory nodes
//!   degenerate into *supernodes* when no low-overlap split exists,
//!   which is what keeps it functional in high dimensionality.
//!   Subspace queries use MINDIST lower bounds computed only over the
//!   projected dimensions.
//! * [`vafile::VaFile`] — a VA-file (Weber, Schek, Blott, VLDB'98):
//!   the classic scan-based competitor to hierarchical indexes in
//!   high dimensionality, included so experiment E7 covers both index
//!   philosophies.
//! * [`context`] — the per-query distance cache: one `n x d`
//!   pre-distance matrix per query point turns every subspace OD into
//!   a subset-combine over cached columns (no raw coordinate reads).
//! * [`walker`] — the prefix-stack lattice kernel: a stack of partial
//!   pre-distance accumulators makes every visited lattice node an
//!   `O(n)` column fold (plus bounded top-k) instead of an
//!   `O(n · |s|)` recombine, bit-identical to the direct path.
//! * [`evaluator`] — the engine-agnostic OD-evaluation seam: one
//!   [`evaluator::OdEvaluator`] per `(engine, query)` pair owns lazy
//!   context construction, the amortisation cost model and the walker
//!   traversal; every search layer streams subspaces at it.
//! * [`block`] — the blocked all-points full-space OD kernel behind
//!   dataset-wide scans: SoA layout, reused selection heaps, and a
//!   quantized `f32` admission filter that rejects provably-losing
//!   pairs before any exact fold — bit-identical to per-point engine
//!   queries, with typed errors and eval/filter accounting.
//! * [`hnsw`] — the approximate-recall tier: a vendored, dependency-
//!   free HNSW graph generates a sub-linear candidate pool per query,
//!   and an exact re-rank recomputes every reported distance/OD with
//!   the same f64 arithmetic and `(pre, id)` ordering as the exact
//!   engines — only recall is approximate, tunable via `ef_search`
//!   and measured by [`hnsw::calibrate_search_width`].
//! * [`sharded`] — exact intra-query parallelism: [`ShardedEngine`]
//!   fans each query over contiguous data shards and merges per-shard
//!   top-k lists losslessly (bit-identical ODs).
//! * [`batch`] — multi-threaded batch OD evaluation over subspaces,
//!   cache-accelerated when the engine provides a
//!   [`context::QueryContext`].
//! * [`pool`] — the persistent worker pool behind every parallel
//!   region: threads spawn once per process and are reused across
//!   calls (and shared between the CLI and `hos-serve`), so parallel
//!   batches pay queue hand-off instead of thread spawn + join.

pub mod batch;
pub mod block;
pub mod context;
pub mod error;
pub mod evaluator;
pub mod hnsw;
pub mod knn;
pub mod linear;
pub mod pool;
pub mod sharded;
mod topk;
pub mod vafile;
pub mod walker;
pub mod xtree;

pub use block::{
    all_points_full_od, all_points_full_od_counted, quantized_lower_bounds, BlockedScan,
};
pub use context::QueryContext;
pub use error::IndexError;
pub use evaluator::{LazyContextEvaluator, OdEvaluator};
pub use hnsw::{calibrate_search_width, recall_at_k, HnswConfig, HnswEngine};
pub use knn::{Engine, IncrementalEngine, KnnEngine, Neighbor};
pub use linear::LinearScan;
pub use sharded::{build_engine_sharded, ShardedEngine};
pub use vafile::{VaFile, VaFileConfig};
pub use walker::{PrefixStack, PrefixWalker};
pub use xtree::{XTree, XTreeConfig};
