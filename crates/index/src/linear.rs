//! Exact brute-force k-NN with a bounded max-heap.
//!
//! The workhorse engine: for the dataset sizes of the paper's
//! experiments a well-written scan is often faster than any index once
//! the projected dimensionality grows (experiment E7 quantifies the
//! crossover), and it doubles as the correctness oracle for the
//! X-tree.

use crate::context::QueryContext;
use crate::error::{validate_insert, validate_remove, IndexError};
use crate::knn::{IncrementalEngine, KnnEngine, Neighbor};
use crate::topk::TopK;
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Brute-force exact k-NN engine.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{KnnEngine, LinearScan};
///
/// let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![9.0, 9.0]]).unwrap();
/// let engine = LinearScan::new(ds, Metric::L2);
/// let nn = engine.knn(&[0.0, 0.0], 2, Subspace::full(2), None);
/// assert_eq!(nn[0].id, 0);
/// assert_eq!(nn[1].id, 1);
/// // OD = sum of the k nearest distances (the paper's §2 measure):
/// assert_eq!(engine.od(&[0.0, 0.0], 2, Subspace::full(2), None), 1.0);
/// ```
pub struct LinearScan {
    dataset: Dataset,
    metric: Metric,
    evals: AtomicU64,
}

impl LinearScan {
    /// Wraps a dataset; no preprocessing needed.
    pub fn new(dataset: Dataset, metric: Metric) -> Self {
        LinearScan {
            dataset,
            metric,
            evals: AtomicU64::new(0),
        }
    }
}

impl KnnEngine for LinearScan {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn into_dataset(self: Box<Self>) -> Dataset {
        self.dataset
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        if k == 0 || self.dataset.is_empty() {
            return Vec::new();
        }
        let mut top = TopK::new(k);
        let mut count = 0u64;
        for (id, row) in self.dataset.iter() {
            if Some(id) == exclude {
                continue;
            }
            count += 1;
            top.offer(self.metric.pre_dist_sub(query, row, s), id);
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        // TopK::into_sorted is already ascending by (pre, id), and
        // Metric::finish is monotone, so the result needs no re-sort;
        // `knn_result_is_sorted_by_distance_then_id` pins the contract.
        top.into_sorted()
            .into_iter()
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let mut count = 0u64;
        for (id, row) in self.dataset.iter() {
            if Some(id) == exclude {
                continue;
            }
            count += 1;
            let d = self.metric.dist_sub(query, row, s);
            if d <= radius {
                out.push(Neighbor { id, dist: d });
            }
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        out
    }

    fn distance_evals(&self) -> u64 {
        self.evals.load(AtomicOrdering::Relaxed)
    }

    fn query_context<'a>(&'a self, query: &[f64]) -> Option<QueryContext<'a>> {
        Some(QueryContext::build(&self.dataset, self.metric, query).with_counter(&self.evals))
    }

    fn as_incremental(&mut self) -> Option<&mut dyn IncrementalEngine> {
        Some(self)
    }
}

/// The linear scan is natively incremental: an insert appends a row,
/// a removal tombstones one, and the scan loop (which iterates live
/// rows only) needs no other state.
impl IncrementalEngine for LinearScan {
    fn insert(&mut self, row: &[f64]) -> Result<PointId, IndexError> {
        validate_insert(&self.dataset, row)?;
        Ok(self.dataset.push_row(row)?)
    }

    fn remove(&mut self, id: PointId) -> Result<(), IndexError> {
        validate_remove(&self.dataset, id)?;
        self.dataset.remove_row(id)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 3.0],
            vec![10.0, 10.0],
        ])
        .unwrap()
    }

    #[test]
    fn knn_orders_by_distance() {
        let e = LinearScan::new(ds(), Metric::L2);
        let nn = e.knn(&[0.0, 0.0], 3, Subspace::full(2), None);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[0].dist, 0.0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[2].id, 2);
        assert!(nn[1].dist <= nn[2].dist);
    }

    #[test]
    fn exclusion_removes_self() {
        let e = LinearScan::new(ds(), Metric::L2);
        let nn = e.knn(&[0.0, 0.0], 2, Subspace::full(2), Some(0));
        assert_eq!(nn[0].id, 1);
        assert!(nn.iter().all(|n| n.id != 0));
    }

    #[test]
    fn subspace_query_uses_only_masked_dims() {
        let e = LinearScan::new(ds(), Metric::L2);
        // Along dim 1 only, point 1 (y=0) ties point 0; id tiebreak.
        let nn = e.knn(&[0.0, 0.0], 2, Subspace::from_dims(&[1]), None);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[1].dist, 0.0);
    }

    #[test]
    fn k_larger_than_dataset() {
        let e = LinearScan::new(ds(), Metric::L1);
        let nn = e.knn(&[0.0, 0.0], 99, Subspace::full(2), Some(4));
        assert_eq!(nn.len(), 4);
    }

    #[test]
    fn k_zero_and_empty_dataset() {
        let e = LinearScan::new(ds(), Metric::L2);
        assert!(e.knn(&[0.0, 0.0], 0, Subspace::full(2), None).is_empty());
        let empty = LinearScan::new(Dataset::empty(), Metric::L2);
        assert!(empty.knn(&[], 3, Subspace::empty(), None).is_empty());
    }

    #[test]
    fn od_is_sum_of_knn_distances() {
        let e = LinearScan::new(ds(), Metric::L1);
        let s = Subspace::full(2);
        let nn = e.knn(&[0.0, 0.0], 3, s, None);
        let od = e.od(&[0.0, 0.0], 3, s, None);
        let sum: f64 = nn.iter().map(|n| n.dist).sum();
        assert!((od - sum).abs() < 1e-12);
    }

    #[test]
    fn range_query() {
        let e = LinearScan::new(ds(), Metric::L2);
        let r = e.range(&[0.0, 0.0], 2.0, Subspace::full(2), None);
        let mut ids: Vec<PointId> = r.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let r2 = e.range(&[0.0, 0.0], 2.0, Subspace::full(2), Some(0));
        assert_eq!(r2.len(), 2);
    }

    #[test]
    fn empty_subspace_gives_zero_distances() {
        let e = LinearScan::new(ds(), Metric::L2);
        let nn = e.knn(&[0.0, 0.0], 2, Subspace::empty(), None);
        assert!(nn.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn distance_evals_counted() {
        let e = LinearScan::new(ds(), Metric::L2);
        assert_eq!(e.distance_evals(), 0);
        e.knn(&[0.0, 0.0], 1, Subspace::full(2), None);
        assert_eq!(e.distance_evals(), 5);
        e.range(&[0.0, 0.0], 1.0, Subspace::full(2), Some(0));
        assert_eq!(e.distance_evals(), 9);
    }

    #[test]
    fn knn_result_is_sorted_by_distance_then_id() {
        // Regression test for the sorted-order contract: the heap's
        // into_sorted output is returned directly (the old redundant
        // re-sort is gone), so pin that the result really is ascending
        // by distance with ties broken on ascending id — across
        // metrics, subspaces and exclusions on adversarial tie-heavy
        // data.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 4) as f64, (i % 3) as f64, (i % 5) as f64])
            .collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        for metric in [Metric::L1, Metric::L2, Metric::LInf] {
            let e = LinearScan::new(ds.clone(), metric);
            for s in [
                Subspace::full(3),
                Subspace::from_dims(&[0]),
                Subspace::from_dims(&[1, 2]),
            ] {
                for exclude in [None, Some(0)] {
                    let nn = e.knn(&[1.0, 1.0, 1.0], 15, s, exclude);
                    assert_eq!(nn.len(), 15);
                    for w in nn.windows(2) {
                        assert!(
                            w[0].dist < w[1].dist || (w[0].dist == w[1].dist && w[0].id < w[1].id),
                            "unsorted pair {:?} then {:?} ({metric:?}, {s})",
                            w[0],
                            w[1]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_ties_break_by_id() {
        // Points 1 and 2 are equidistant from the query under L1.
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![-1.0]]).unwrap();
        let e = LinearScan::new(ds, Metric::L1);
        let nn = e.knn(&[0.0], 3, Subspace::full(1), None);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[2].id, 2);
    }
}
