//! Exact brute-force k-NN with a bounded max-heap.
//!
//! The workhorse engine: for the dataset sizes of the paper's
//! experiments a well-written scan is often faster than any index once
//! the projected dimensionality grows (experiment E7 quantifies the
//! crossover), and it doubles as the correctness oracle for the
//! X-tree.

use crate::knn::{KnnEngine, Neighbor};
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Heap entry ordered by pre-metric distance (max-heap: the worst
/// current neighbour sits on top, ready to be evicted).
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    pre: f64,
    id: PointId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.pre == other.pre && self.id == other.id
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances are finite by Dataset validation; tie-break on id
        // for determinism.
        self.pre
            .partial_cmp(&other.pre)
            .expect("finite distances")
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Brute-force exact k-NN engine.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{KnnEngine, LinearScan};
///
/// let ds = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![9.0, 9.0]]).unwrap();
/// let engine = LinearScan::new(ds, Metric::L2);
/// let nn = engine.knn(&[0.0, 0.0], 2, Subspace::full(2), None);
/// assert_eq!(nn[0].id, 0);
/// assert_eq!(nn[1].id, 1);
/// // OD = sum of the k nearest distances (the paper's §2 measure):
/// assert_eq!(engine.od(&[0.0, 0.0], 2, Subspace::full(2), None), 1.0);
/// ```
pub struct LinearScan {
    dataset: Dataset,
    metric: Metric,
    evals: AtomicU64,
}

impl LinearScan {
    /// Wraps a dataset; no preprocessing needed.
    pub fn new(dataset: Dataset, metric: Metric) -> Self {
        LinearScan { dataset, metric, evals: AtomicU64::new(0) }
    }
}

impl KnnEngine for LinearScan {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn(
        &self,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        if k == 0 || self.dataset.is_empty() {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        let mut count = 0u64;
        for (id, row) in self.dataset.iter() {
            if Some(id) == exclude {
                continue;
            }
            let pre = self.metric.pre_dist_sub(query, row, s);
            count += 1;
            if heap.len() < k {
                heap.push(HeapEntry { pre, id });
            } else if let Some(top) = heap.peek() {
                if pre < top.pre {
                    heap.pop();
                    heap.push(HeapEntry { pre, id });
                }
            }
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        let mut out: Vec<Neighbor> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| Neighbor { id: e.id, dist: self.metric.finish(e.pre) })
            .collect();
        // into_sorted_vec gives ascending order already; keep explicit
        // sort semantics stable against future heap changes.
        out.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("finite").then(a.id.cmp(&b.id)));
        out
    }

    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let mut count = 0u64;
        for (id, row) in self.dataset.iter() {
            if Some(id) == exclude {
                continue;
            }
            count += 1;
            let d = self.metric.dist_sub(query, row, s);
            if d <= radius {
                out.push(Neighbor { id, dist: d });
            }
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        out
    }

    fn distance_evals(&self) -> u64 {
        self.evals.load(AtomicOrdering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 3.0],
            vec![10.0, 10.0],
        ])
        .unwrap()
    }

    #[test]
    fn knn_orders_by_distance() {
        let e = LinearScan::new(ds(), Metric::L2);
        let nn = e.knn(&[0.0, 0.0], 3, Subspace::full(2), None);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[0].dist, 0.0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[2].id, 2);
        assert!(nn[1].dist <= nn[2].dist);
    }

    #[test]
    fn exclusion_removes_self() {
        let e = LinearScan::new(ds(), Metric::L2);
        let nn = e.knn(&[0.0, 0.0], 2, Subspace::full(2), Some(0));
        assert_eq!(nn[0].id, 1);
        assert!(nn.iter().all(|n| n.id != 0));
    }

    #[test]
    fn subspace_query_uses_only_masked_dims() {
        let e = LinearScan::new(ds(), Metric::L2);
        // Along dim 1 only, point 1 (y=0) ties point 0; id tiebreak.
        let nn = e.knn(&[0.0, 0.0], 2, Subspace::from_dims(&[1]), None);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[1].dist, 0.0);
    }

    #[test]
    fn k_larger_than_dataset() {
        let e = LinearScan::new(ds(), Metric::L1);
        let nn = e.knn(&[0.0, 0.0], 99, Subspace::full(2), Some(4));
        assert_eq!(nn.len(), 4);
    }

    #[test]
    fn k_zero_and_empty_dataset() {
        let e = LinearScan::new(ds(), Metric::L2);
        assert!(e.knn(&[0.0, 0.0], 0, Subspace::full(2), None).is_empty());
        let empty = LinearScan::new(Dataset::empty(), Metric::L2);
        assert!(empty.knn(&[], 3, Subspace::empty(), None).is_empty());
    }

    #[test]
    fn od_is_sum_of_knn_distances() {
        let e = LinearScan::new(ds(), Metric::L1);
        let s = Subspace::full(2);
        let nn = e.knn(&[0.0, 0.0], 3, s, None);
        let od = e.od(&[0.0, 0.0], 3, s, None);
        let sum: f64 = nn.iter().map(|n| n.dist).sum();
        assert!((od - sum).abs() < 1e-12);
    }

    #[test]
    fn range_query() {
        let e = LinearScan::new(ds(), Metric::L2);
        let r = e.range(&[0.0, 0.0], 2.0, Subspace::full(2), None);
        let mut ids: Vec<PointId> = r.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let r2 = e.range(&[0.0, 0.0], 2.0, Subspace::full(2), Some(0));
        assert_eq!(r2.len(), 2);
    }

    #[test]
    fn empty_subspace_gives_zero_distances() {
        let e = LinearScan::new(ds(), Metric::L2);
        let nn = e.knn(&[0.0, 0.0], 2, Subspace::empty(), None);
        assert!(nn.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn distance_evals_counted() {
        let e = LinearScan::new(ds(), Metric::L2);
        assert_eq!(e.distance_evals(), 0);
        e.knn(&[0.0, 0.0], 1, Subspace::full(2), None);
        assert_eq!(e.distance_evals(), 5);
        e.range(&[0.0, 0.0], 1.0, Subspace::full(2), Some(0));
        assert_eq!(e.distance_evals(), 9);
    }

    #[test]
    fn deterministic_ties_break_by_id() {
        // Points 1 and 2 are equidistant from the query under L1.
        let ds = Dataset::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![-1.0],
        ])
        .unwrap();
        let e = LinearScan::new(ds, Metric::L1);
        let nn = e.knn(&[0.0], 3, Subspace::full(1), None);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[2].id, 2);
    }
}
