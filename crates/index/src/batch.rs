//! Multi-threaded batch OD evaluation.
//!
//! The dynamic subspace search evaluates OD for a whole *level* of the
//! lattice at a time (all unpruned subspaces with the same
//! dimensionality), which parallelises embarrassingly: each subspace's
//! k-NN query is independent. The subspace list is split into
//! `threads` chunks executed on the persistent [`crate::pool`] worker
//! pool — threads are spawned once per process and reused across
//! every call, so a resident server pays no spawn/join latency per
//! admission batch.

use crate::context::QueryContext;
use crate::knn::KnnEngine;
use crate::pool::run_scoped;
use hos_data::{PointId, Subspace};

/// Evaluates `OD(query, s)` for every subspace in `subspaces`,
/// returning results in input order.
///
/// A thin convenience wrapper over the [`crate::evaluator`] seam: one
/// throwaway [`crate::evaluator::OdEvaluator`] evaluates the batch, so
/// the amortisation cost model lives in exactly one place. When the
/// engine provides a [`QueryContext`] (linear scan does) and the batch
/// is large enough to amortise the `n x d` build (summed subspace
/// dimensionality exceeds `2d`), the pre-distance matrix is computed
/// once and every subspace OD becomes a cached subset-combine;
/// otherwise each OD is an independent engine query. Callers that
/// evaluate several batches for the *same* query point — level-by-level
/// searches do — should hold one [`KnnEngine::evaluator`] and call
/// `od_batch` on it per level instead, so the cache amortises across
/// batches too.
///
/// `threads == 1` (or a single subspace) short-circuits to a serial
/// loop, where thread spawn overhead would dominate small batches.
pub fn batch_od(
    engine: &dyn KnnEngine,
    query: &[f64],
    k: usize,
    subspaces: &[Subspace],
    exclude: Option<PointId>,
    threads: usize,
) -> Vec<f64> {
    engine
        .evaluator(query, k, exclude)
        .od_batch(subspaces, threads)
}

/// [`batch_od`] over an already-built [`QueryContext`]: every OD is a
/// subset-combine over cached columns. Results are in input order and
/// identical to the uncached path bit for bit.
pub fn batch_od_with_context(
    ctx: &QueryContext<'_>,
    k: usize,
    subspaces: &[Subspace],
    exclude: Option<PointId>,
    threads: usize,
) -> Vec<f64> {
    parallel_map(subspaces, threads, |&s| ctx.od(k, s, exclude))
}

/// Applies `f` to every item, fanned out across up to `threads`
/// pooled workers with static chunking; results are in input order.
/// `threads <= 1` (or a single item) short-circuits to a serial loop,
/// where even pool hand-off overhead would dominate small batches.
/// The chunk boundaries are identical to the serial iteration order
/// and every chunk writes its own disjoint output slice, so results
/// are **bit-identical** to the serial path for any thread count. The
/// shared scatter behind [`batch_od`], [`batch_od_with_context`] and
/// `hos-core`'s `batch_search`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    {
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .map(|(slice_in, slice_out)| {
                Box::new(move || {
                    for (i, o) in slice_in.iter().zip(slice_out.iter_mut()) {
                        *o = Some(f(i));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(tasks);
    }
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// [`parallel_map`] over mutable items: applies `f` to every item with
/// exclusive access, fanned across up to `threads` pooled workers with
/// static chunking; results are in input order. Used by the sharded
/// evaluator to drive one mutable [`crate::walker::PrefixStack`] per
/// shard in parallel.
pub fn parallel_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter_mut().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    {
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
            .chunks_mut(chunk)
            .zip(out.chunks_mut(chunk))
            .map(|(slice_in, slice_out)| {
                Box::new(move || {
                    for (i, o) in slice_in.iter_mut().zip(slice_out.iter_mut()) {
                        *o = Some(f(i));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_scoped(tasks);
    }
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use hos_data::{Dataset, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (LinearScan, Vec<f64>, Vec<Subspace>) {
        let mut rng = StdRng::seed_from_u64(4);
        let d = 6;
        let flat: Vec<f64> = (0..500 * d).map(|_| rng.gen_range(0.0..10.0)).collect();
        let ds = Dataset::from_flat(flat, d).unwrap();
        let q: Vec<f64> = ds.row(17).to_vec();
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        (LinearScan::new(ds, Metric::L2), q, subspaces)
    }

    #[test]
    fn parallel_matches_serial() {
        let (engine, q, subspaces) = setup();
        let serial = batch_od(&engine, &q, 5, &subspaces, Some(17), 1);
        let parallel = batch_od(&engine, &q, 5, &subspaces, Some(17), 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input() {
        let (engine, q, _) = setup();
        assert!(batch_od(&engine, &q, 5, &[], None, 4).is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let (engine, q, subspaces) = setup();
        let r = batch_od(&engine, &q, 3, &subspaces[..2], None, 64);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let (engine, q, subspaces) = setup();
        let r = batch_od(&engine, &q, 3, &subspaces[..3], None, 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn cached_batch_identical_to_per_subspace_engine_queries() {
        // batch_od takes the QueryContext fast path for LinearScan;
        // it must agree bit for bit with one engine.od call per
        // subspace (the uncached reference), serial and parallel.
        let (engine, q, subspaces) = setup();
        let reference: Vec<f64> = subspaces
            .iter()
            .map(|&s| engine.od(&q, 5, s, Some(17)))
            .collect();
        for threads in [1, 4] {
            let cached = batch_od(&engine, &q, 5, &subspaces, Some(17), threads);
            assert_eq!(cached, reference, "threads={threads}");
        }
        let ctx = engine.query_context(&q).expect("linear scan caches");
        let direct = batch_od_with_context(&ctx, 5, &subspaces, Some(17), 2);
        assert_eq!(direct, reference);
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [0, 1, 2, 7, 64, 1000] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x * 3),
                expected,
                "threads={threads}"
            );
        }
        assert!(parallel_map(&[] as &[u64], 4, |&x| x).is_empty());
    }

    #[test]
    fn parallel_map_mut_mutates_every_item_in_order() {
        let mut items: Vec<u64> = (0..53).collect();
        for threads in [0, 1, 3, 64] {
            let out = parallel_map_mut(&mut items, threads, |x| {
                *x += 1;
                *x * 2
            });
            let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
        // Four rounds of +1 applied to each item exactly once.
        assert_eq!(items[0], 4);
        assert_eq!(items[52], 56);
        assert!(parallel_map_mut(&mut [] as &mut [u64], 4, |&mut x| x).is_empty());
    }

    #[test]
    fn cached_batch_counts_distance_evals() {
        let (engine, q, subspaces) = setup();
        let before = engine.distance_evals();
        batch_od(&engine, &q, 5, &subspaces[..4], Some(17), 1);
        // 4 subspace ODs over 499 non-excluded points each.
        assert_eq!(engine.distance_evals() - before, 4 * 499);
    }
}
