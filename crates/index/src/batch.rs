//! Multi-threaded batch OD evaluation.
//!
//! The dynamic subspace search evaluates OD for a whole *level* of the
//! lattice at a time (all unpruned subspaces with the same
//! dimensionality), which parallelises embarrassingly: each subspace's
//! k-NN query is independent. Crossbeam scoped threads split the
//! subspace list across `threads` workers.

use crate::knn::KnnEngine;
use hos_data::{PointId, Subspace};

/// Evaluates `OD(query, s)` for every subspace in `subspaces`,
/// returning results in input order.
///
/// `threads == 1` (or a single subspace) short-circuits to a serial
/// loop — important because the search calls this with small batches
/// where thread spawn overhead would dominate.
pub fn batch_od(
    engine: &dyn KnnEngine,
    query: &[f64],
    k: usize,
    subspaces: &[Subspace],
    exclude: Option<PointId>,
    threads: usize,
) -> Vec<f64> {
    if subspaces.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(subspaces.len());
    if threads == 1 {
        return subspaces
            .iter()
            .map(|&s| engine.od(query, k, s, exclude))
            .collect();
    }
    let mut out = vec![0.0f64; subspaces.len()];
    let chunk = subspaces.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (slice_in, slice_out) in subspaces.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (s, o) in slice_in.iter().zip(slice_out.iter_mut()) {
                    *o = engine.od(query, k, *s, exclude);
                }
            });
        }
    })
    .expect("worker thread panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use hos_data::{Dataset, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (LinearScan, Vec<f64>, Vec<Subspace>) {
        let mut rng = StdRng::seed_from_u64(4);
        let d = 6;
        let flat: Vec<f64> = (0..500 * d).map(|_| rng.gen_range(0.0..10.0)).collect();
        let ds = Dataset::from_flat(flat, d).unwrap();
        let q: Vec<f64> = ds.row(17).to_vec();
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        (LinearScan::new(ds, Metric::L2), q, subspaces)
    }

    #[test]
    fn parallel_matches_serial() {
        let (engine, q, subspaces) = setup();
        let serial = batch_od(&engine, &q, 5, &subspaces, Some(17), 1);
        let parallel = batch_od(&engine, &q, 5, &subspaces, Some(17), 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input() {
        let (engine, q, _) = setup();
        assert!(batch_od(&engine, &q, 5, &[], None, 4).is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let (engine, q, subspaces) = setup();
        let r = batch_od(&engine, &q, 3, &subspaces[..2], None, 64);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let (engine, q, subspaces) = setup();
        let r = batch_od(&engine, &q, 3, &subspaces[..3], None, 0);
        assert_eq!(r.len(), 3);
    }
}
