//! Typed errors for engine queries and incremental mutation.
//!
//! Before the streaming path existed, every engine invariant ("k-NN
//! needs at least `k` candidates", "queries match the dataset arity")
//! was upheld by construction: `HosMiner::fit` validated once and the
//! dataset never changed. Removals make those conditions *reachable at
//! query time* — a window can shrink below `k`, a retired point can be
//! queried by a stale id — so the failure modes get a typed error
//! instead of a panic or a silently-short neighbour list.

use hos_data::PointId;
use std::fmt;

/// Errors produced by checked engine queries ([`crate::knn::KnnEngine::try_knn`])
/// and incremental mutation ([`crate::knn::IncrementalEngine`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// A row or query had the wrong arity for the engine's dataset.
    Shape {
        /// The engine dataset's dimensionality.
        expected: usize,
        /// The arity actually supplied.
        got: usize,
    },
    /// A query or inserted row contained NaN or an infinity.
    NonFinite,
    /// A point id beyond the dataset's id space.
    OutOfBounds {
        /// The offending id.
        id: PointId,
        /// The exclusive bound (physical dataset length).
        len: usize,
    },
    /// The point exists but has been removed (tombstoned).
    DeadPoint(PointId),
    /// A k-NN query needs `k` candidates but fewer live points are
    /// available (after self-exclusion). Reachable once removals can
    /// shrink the dataset below `k` — including all the way to empty.
    InsufficientPoints {
        /// Live candidates available to the query.
        available: usize,
        /// The `k` that was asked for.
        k: usize,
    },
    /// The engine does not support incremental mutation.
    Immutable(&'static str),
    /// A data-layer failure surfaced through an engine mutation.
    Data(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Shape { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            IndexError::NonFinite => write!(f, "non-finite value (NaN or infinity)"),
            IndexError::OutOfBounds { id, len } => {
                write!(f, "point id {id} out of bounds for id space of {len}")
            }
            IndexError::DeadPoint(id) => write!(f, "point {id} has been removed"),
            IndexError::InsufficientPoints { available, k } => write!(
                f,
                "k-NN needs k = {k} candidates but only {available} live points are available"
            ),
            IndexError::Immutable(what) => {
                write!(f, "engine {what} does not support incremental updates")
            }
            IndexError::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<hos_data::DataError> for IndexError {
    fn from(e: hos_data::DataError) -> Self {
        IndexError::Data(e.to_string())
    }
}

/// Validates a row about to be inserted into an engine: arity must
/// match the dataset (unless the dataset is still 0-dimensional and
/// the row will fix its arity) and every value must be finite.
pub(crate) fn validate_insert(ds: &hos_data::Dataset, row: &[f64]) -> Result<(), IndexError> {
    if ds.dim() != 0 && row.len() != ds.dim() {
        return Err(IndexError::Shape {
            expected: ds.dim(),
            got: row.len(),
        });
    }
    if row.iter().any(|v| !v.is_finite()) {
        return Err(IndexError::NonFinite);
    }
    Ok(())
}

/// Validates a removal target: in bounds and still live.
pub(crate) fn validate_remove(ds: &hos_data::Dataset, id: PointId) -> Result<(), IndexError> {
    if id >= ds.len() {
        return Err(IndexError::OutOfBounds { id, len: ds.len() });
    }
    if !ds.is_live(id) {
        return Err(IndexError::DeadPoint(id));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(IndexError::Shape {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("expected 3"));
        assert!(IndexError::InsufficientPoints { available: 2, k: 5 }
            .to_string()
            .contains("k = 5"));
        assert!(IndexError::DeadPoint(7).to_string().contains('7'));
        assert!(IndexError::Immutable("x").to_string().contains('x'));
        assert!(IndexError::NonFinite.to_string().contains("finite"));
        assert!(IndexError::OutOfBounds { id: 9, len: 4 }
            .to_string()
            .contains('9'));
        let from: IndexError = hos_data::DataError::Empty.into();
        assert!(matches!(from, IndexError::Data(_)));
    }

    #[test]
    fn validators() {
        let ds = hos_data::Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(validate_insert(&ds, &[3.0, 4.0]).is_ok());
        assert!(validate_insert(&ds, &[3.0]).is_err());
        assert!(validate_insert(&ds, &[f64::NAN, 0.0]).is_err());
        // 0-dimensional (empty) datasets accept any finite arity: the
        // first insert fixes it.
        let empty = hos_data::Dataset::empty();
        assert!(validate_insert(&empty, &[1.0, 2.0, 3.0]).is_ok());
        assert!(validate_remove(&ds, 0).is_ok());
        assert_eq!(
            validate_remove(&ds, 5),
            Err(IndexError::OutOfBounds { id: 5, len: 1 })
        );
        let mut dead = ds.clone();
        dead.remove_row(0).unwrap();
        assert_eq!(validate_remove(&dead, 0), Err(IndexError::DeadPoint(0)));
    }
}
