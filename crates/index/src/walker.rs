//! The prefix-stack lattice kernel: `O(n)` per visited subspace.
//!
//! [`crate::context::QueryContext`] already turned each subspace OD
//! into a combine over `|s|` cached columns — but a lattice traversal
//! re-combines those columns **from scratch at every node**, paying
//! `O(n · |s|)` per visit. The traversal itself is a walk over the
//! prefix trie of ascending dimension lists, and the additive
//! decomposition that justified the cache (paper §3: every metric's
//! pre-distance is a fold of independent per-dimension terms) also
//! means a child node's accumulator is its parent's accumulator plus
//! **one** more column. [`PrefixStack`] exploits exactly that:
//!
//! * [`PrefixStack::descend`]`(dim)` folds one cached column into the
//!   top-of-stack accumulator (dimensions must be pushed in strictly
//!   ascending order), an `O(n)` streaming pass over two contiguous
//!   arrays;
//! * [`PrefixStack::ascend`]`()` pops — the parent accumulator is
//!   still on the stack, untouched;
//! * [`PrefixStack::od`]`(k)` runs bounded top-k selection over the
//!   current `n`-vector, with [`crate::topk::TopK`]'s cached
//!   kth-distance bound rejecting non-candidates before any heap
//!   operation.
//!
//! # Bit-identity
//!
//! `QueryContext::pre_dist` folds the cached columns of `s` in
//! ascending dimension order starting from `0.0`. Because `descend`
//! *requires* ascending order, the accumulator at a node whose path is
//! `d_1 < d_2 < … < d_m` is produced by the identical sequence of
//! floating-point operations per point — same terms, same order, same
//! combine — so walker pre-distances, and therefore ODs and top-k
//! lists (selection and summation are shared code), are **bit-identical**
//! to the direct canonical combine. This extends the equivalence
//! argument of DESIGN.md §3/§8; `walker_bit_identical_to_direct_combine`
//! below and the workspace proptests pin it across metrics, engines,
//! shard counts and incremental mutation.
//!
//! # Amortised cost
//!
//! Traversing subspaces in walker order ([`hos_data::Subspace::walk_cmp`];
//! DFS preorder of the prefix trie) makes consecutive nodes share the
//! longest possible prefix: a full-lattice walk performs exactly one
//! `descend` per node (`2^d - 1` column folds total, versus
//! `d · 2^(d-1)` for per-node recombines), and a single lattice level
//! costs one fold per distinct trie prefix — in both cases the
//! per-node cost is independent of `|s|`. [`PrefixStack::node_visits`]
//! counts the folds so the claim is testable, and `SearchStats`
//! reports it per search.
//!
//! # Allocation discipline
//!
//! The stack's level buffers, path scratch and top-k heap are all
//! reused across nodes and across batches: after the first descent to
//! a given depth, traversal is allocation-free. [`PrefixStack`] is a
//! plain owned object (no borrow of the context), so evaluators store
//! one per query — or one per shard — and thread the context in per
//! call; [`PrefixWalker`] bundles a stack with a borrowed context for
//! ergonomic standalone use.

use crate::context::QueryContext;
use crate::knn::Neighbor;
use crate::topk::TopK;
use hos_data::{PointId, Subspace};

/// The owned, reusable prefix-stack state: accumulator levels, the
/// current path, a recycled top-k heap and the node-visit counter.
/// All methods take the [`QueryContext`] explicitly so the stack can
/// live inside the same struct that owns the context (evaluators)
/// without self-reference.
pub struct PrefixStack {
    /// `levels[i]` = per-point pre-distance accumulator over
    /// `path[0..=i]`. Buffers are allocated on first use at each depth
    /// and never shrunk.
    levels: Vec<Vec<f64>>,
    /// The dimensions of the current subspace, strictly ascending.
    path: Vec<usize>,
    /// Whether the top of `path` has been pushed but its column fold
    /// deferred. The fold runs at the first use of the top accumulator:
    /// a deeper [`PrefixStack::descend`] materialises it standalone,
    /// while [`PrefixStack::od`]/[`PrefixStack::knn`] materialise it
    /// *fused* with their selection ([`QueryContext::fold_select_acc`])
    /// so the selection reads each freshly folded block while it is
    /// still L1-resident. A deferred top that is popped again was never
    /// folded at all.
    pending: bool,
    /// Scratch for [`PrefixStack::seek`]'s target dimension list.
    dims: Vec<usize>,
    /// Scratch for the previous node's winning ids, used to seed the
    /// next fused selection's admission bound
    /// ([`QueryContext::fold_select_acc`]).
    seed_ids: Vec<PointId>,
    /// Reused selection heap.
    top: TopK,
    /// Total `descend` calls: one per `O(n)` column fold.
    visits: u64,
    /// The [`QueryContext::uid`] the current accumulators were folded
    /// under. Accumulators from one context are meaningless under
    /// another: [`PrefixStack::seek`] discards the stack when the
    /// context changes, and [`PrefixStack::descend`] debug-asserts the
    /// match — so cross-context reuse recomputes instead of silently
    /// returning another query's sums.
    ctx_uid: u64,
}

impl Default for PrefixStack {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixStack {
    pub fn new() -> Self {
        PrefixStack {
            levels: Vec::new(),
            path: Vec::new(),
            dims: Vec::new(),
            seed_ids: Vec::new(),
            top: TopK::new(0),
            visits: 0,
            ctx_uid: 0,
            pending: false,
        }
    }

    /// The subspace currently on the stack.
    pub fn subspace(&self) -> Subspace {
        Subspace::from_dims(&self.path)
    }

    /// Current depth (`|s|` of the current subspace).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Total column folds performed so far — the kernel's cost in
    /// `O(n)` units; on a full-lattice walk this equals the number of
    /// visited nodes exactly.
    pub fn node_visits(&self) -> u64 {
        self.visits
    }

    /// Pushes `dim`; the column fold itself is *deferred* until the
    /// new accumulator is first used. A deeper descend materialises it
    /// standalone (one streaming `O(n)` pass, exactly as before); an
    /// [`PrefixStack::od`]/[`PrefixStack::knn`] materialises it fused
    /// with the selection, which reads each folded block while it is
    /// still L1-hot instead of re-streaming the whole accumulator. The
    /// fold sequence per point is identical either way, so every
    /// result bit is unchanged.
    ///
    /// # Panics
    /// Panics if `dim` is not strictly greater than the current top of
    /// the path — the ascending-order invariant the bit-identity
    /// argument rests on.
    pub fn descend(&mut self, ctx: &QueryContext<'_>, dim: usize) {
        assert!(
            self.path.last().is_none_or(|&last| dim > last),
            "descend({dim}) after {:?}: dimensions must strictly ascend",
            self.path
        );
        debug_assert!(
            self.path.is_empty() || self.ctx_uid == ctx.uid(),
            "descend under a different QueryContext than the stack's \
             accumulators were folded with — use seek(), which resets"
        );
        self.ctx_uid = ctx.uid();
        if self.pending {
            self.materialize(ctx);
        }
        self.path.push(dim);
        self.pending = true;
    }

    /// Ensures the level buffer for the current top exists and is
    /// sized, and hands it out with its parent for folding. Shared by
    /// the standalone and fused materialisation paths.
    fn top_buffers(&mut self, n: usize) -> (Option<&[f64]>, &mut Vec<f64>) {
        let depth = self.path.len();
        debug_assert!(depth > 0 && self.pending);
        if self.levels.len() < depth {
            self.levels.push(vec![0.0f64; n]);
        }
        let (parents, rest) = self.levels.split_at_mut(depth - 1);
        let child = &mut rest[0];
        if child.len() != n {
            child.clear();
            child.resize(n, 0.0);
        }
        (parents.last().map(|v| v.as_slice()), child)
    }

    /// Runs the deferred column fold of the current top standalone —
    /// one chunked `O(n)` pass ([`QueryContext::fold_column_into`]:
    /// 4-lane fixed-width body the vectorizer handles, dispatched on
    /// the metric once per fold instead of per element; lanes span
    /// points, so each point's fold order — and every result bit — is
    /// unchanged).
    fn materialize(&mut self, ctx: &QueryContext<'_>) {
        let dim = *self.path.last().expect("materialize at the root");
        let (parent, child) = self.top_buffers(ctx.len());
        ctx.fold_column_into(dim, parent, child);
        self.pending = false;
        self.visits += 1;
    }

    /// Pops the top dimension; the parent accumulator is live again.
    /// A deferred (never-used) top is simply dropped — its fold never
    /// runs.
    ///
    /// # Panics
    /// Panics if the stack is empty.
    pub fn ascend(&mut self) {
        self.path.pop().expect("ascend from the root");
        // Only the top can be deferred, so whatever is now on top has
        // been materialised.
        self.pending = false;
    }

    /// Pops everything: back to the empty subspace.
    pub fn reset(&mut self) {
        self.path.clear();
        self.pending = false;
    }

    /// Moves the stack to subspace `s` with the fewest possible
    /// operations: pop to the longest common ascending-dim prefix,
    /// then descend the remaining dimensions. In walker order
    /// ([`Subspace::walk_cmp`]) over a batch, this is what amortises
    /// to ~one descend per node. A stack handed a *different* context
    /// than its accumulators were folded under discards them first —
    /// cross-context reuse recomputes, never returns stale sums.
    pub fn seek(&mut self, ctx: &QueryContext<'_>, s: Subspace) {
        if self.ctx_uid != ctx.uid() {
            self.path.clear();
            self.pending = false;
        }
        self.dims.clear();
        self.dims.extend(s.dims());
        let keep = self
            .path
            .iter()
            .zip(&self.dims)
            .take_while(|(a, b)| a == b)
            .count();
        if keep < self.path.len() {
            self.path.truncate(keep);
            // A deferred top is gone (or no longer on top of a shorter
            // path): everything kept is materialised.
            self.pending = false;
        }
        for i in keep..self.dims.len() {
            let dim = self.dims[i];
            self.descend(ctx, dim);
        }
    }

    /// OD of the query in the current subspace: bounded top-k over the
    /// top-of-stack accumulator, finished and summed in ascending
    /// `(pre, id)` order — bit-identical to
    /// [`QueryContext::od`] on [`PrefixStack::subspace`].
    pub fn od(&mut self, ctx: &QueryContext<'_>, k: usize, exclude: Option<PointId>) -> f64 {
        match self.path.len() {
            // Empty subspace: no accumulator on the stack; delegate to
            // the direct path (every pre-distance is the fold identity).
            0 => ctx.od(k, Subspace::empty(), exclude),
            depth => {
                self.select_top(ctx, k, exclude, depth);
                ctx.finish_od(&mut self.top)
            }
        }
    }

    /// Selection over the current top accumulator into the reused
    /// heap: fused with the deferred fold when one is pending
    /// ([`QueryContext::fold_select_acc`]), plain bounded selection
    /// otherwise. Both paths produce bit-identical kept sets.
    fn select_top(
        &mut self,
        ctx: &QueryContext<'_>,
        k: usize,
        exclude: Option<PointId>,
        depth: usize,
    ) {
        if self.pending {
            debug_assert_eq!(self.ctx_uid, ctx.uid());
            let dim = self.path[depth - 1];
            // The previous node's winners seed the next admission
            // bound: any k live non-excluded ids majorise the true
            // kth-best, and lattice neighbours overlap heavily, so the
            // bound starts near-optimal. (The heap still holds them —
            // `fold_select_acc` resets it after reading the seeds.)
            self.seed_ids.clear();
            self.seed_ids.extend(self.top.ids());
            let top = &mut self.top;
            // Split borrows: buffers from levels, heap from self.
            if self.levels.len() < depth {
                self.levels.push(vec![0.0f64; ctx.len()]);
            }
            let (parents, rest) = self.levels.split_at_mut(depth - 1);
            let child = &mut rest[0];
            if child.len() != ctx.len() {
                child.clear();
                child.resize(ctx.len(), 0.0);
            }
            ctx.fold_select_acc(
                dim,
                parents.last().map(|v| v.as_slice()),
                child,
                k,
                exclude,
                top,
                &self.seed_ids,
            );
            self.pending = false;
            self.visits += 1;
        } else {
            ctx.select_acc(&self.levels[depth - 1], k, exclude, &mut self.top);
        }
    }

    /// The `k` nearest neighbours in the current subspace, ascending
    /// by `(distance, id)` — bit-identical to [`QueryContext::knn`].
    pub fn knn(
        &mut self,
        ctx: &QueryContext<'_>,
        k: usize,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        match self.path.len() {
            0 => ctx.knn(k, Subspace::empty(), exclude),
            depth => {
                self.select_top(ctx, k, exclude, depth);
                ctx.finish_knn(&mut self.top)
            }
        }
    }
}

/// A [`PrefixStack`] bundled with the [`QueryContext`] it walks —
/// the object [`QueryContext::walker`] hands out.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{KnnEngine, LinearScan};
///
/// let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 5) as f64, 0.5]).collect();
/// let ds = Dataset::from_rows(&rows).unwrap();
/// let engine = LinearScan::new(ds, Metric::L2);
/// let ctx = engine.query_context(&[3.0, 1.0, 0.2]).expect("linear scan caches");
/// let mut w = ctx.walker();
/// w.descend(0);                       // subspace {0}
/// w.descend(2);                       // subspace {0,2}
/// let od = w.od(4, None);
/// // Bit-identical to the direct canonical combine:
/// assert_eq!(od, ctx.od(4, Subspace::from_dims(&[0, 2]), None));
/// w.ascend();                         // back to {0}
/// assert_eq!(w.od(4, None), ctx.od(4, Subspace::from_dims(&[0]), None));
/// ```
pub struct PrefixWalker<'a> {
    ctx: &'a QueryContext<'a>,
    stack: PrefixStack,
}

impl<'a> PrefixWalker<'a> {
    pub(crate) fn new(ctx: &'a QueryContext<'a>) -> Self {
        PrefixWalker {
            ctx,
            stack: PrefixStack::new(),
        }
    }

    /// The underlying context.
    pub fn ctx(&self) -> &QueryContext<'a> {
        self.ctx
    }

    /// See [`PrefixStack::descend`].
    pub fn descend(&mut self, dim: usize) {
        self.stack.descend(self.ctx, dim);
    }

    /// See [`PrefixStack::ascend`].
    pub fn ascend(&mut self) {
        self.stack.ascend();
    }

    /// See [`PrefixStack::seek`].
    pub fn seek(&mut self, s: Subspace) {
        self.stack.seek(self.ctx, s);
    }

    /// See [`PrefixStack::subspace`].
    pub fn subspace(&self) -> Subspace {
        self.stack.subspace()
    }

    /// See [`PrefixStack::depth`].
    pub fn depth(&self) -> usize {
        self.stack.depth()
    }

    /// See [`PrefixStack::node_visits`].
    pub fn node_visits(&self) -> u64 {
        self.stack.node_visits()
    }

    /// See [`PrefixStack::od`].
    pub fn od(&mut self, k: usize, exclude: Option<PointId>) -> f64 {
        self.stack.od(self.ctx, k, exclude)
    }

    /// See [`PrefixStack::knn`].
    pub fn knn(&mut self, k: usize, exclude: Option<PointId>) -> Vec<Neighbor> {
        self.stack.knn(self.ctx, k, exclude)
    }
}

/// Sorts batch indices into walker order over `subspaces` — the
/// shared preamble of every walker-backed `od_batch`.
pub(crate) fn walk_order(subspaces: &[Subspace], idx: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..subspaces.len());
    idx.sort_unstable_by(|&a, &b| subspaces[a].walk_cmp(subspaces[b]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnEngine;
    use crate::linear::LinearScan;
    use hos_data::{Dataset, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        // Coarse grid: plenty of exact ties so the (pre, id) tie-break
        // is exercised through the kernel's selection too.
        let flat: Vec<f64> = (0..n * d)
            .map(|_| (rng.gen_range(0..12) as f64) * 0.5)
            .collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn walker_bit_identical_to_direct_combine() {
        let d = 6;
        let ds = random_dataset(90, d, 1);
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let q: Vec<f64> = ds.row(11).to_vec();
            let ctx = QueryContext::build(&ds, metric, &q);
            let mut w = ctx.walker();
            // Walk the whole lattice in walker order; every OD and
            // every top-k list must equal the direct combine bitwise.
            let mut subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
            subspaces.sort_by(|a, b| a.walk_cmp(*b));
            for &s in &subspaces {
                w.seek(s);
                assert_eq!(w.subspace(), s, "{metric:?} {s}");
                assert_eq!(w.od(5, Some(11)), ctx.od(5, s, Some(11)), "{metric:?} {s}");
                assert_eq!(
                    w.knn(5, Some(11)),
                    ctx.knn(5, s, Some(11)),
                    "{metric:?} {s}"
                );
            }
            // Full-lattice walk in walker order: exactly one descend
            // per node — the O(n)-per-node claim, exact.
            assert_eq!(w.node_visits(), Subspace::lattice_size(d), "{metric:?}");
        }
    }

    #[test]
    fn seek_in_arbitrary_order_still_exact() {
        let d = 5;
        let ds = random_dataset(60, d, 2);
        let q: Vec<f64> = ds.row(0).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L2, &q);
        let mut w = ctx.walker();
        // Mask order (NOT walker order): correctness must not depend
        // on the traversal order, only the amortisation does.
        for s in Subspace::all_nonempty(d) {
            w.seek(s);
            assert_eq!(w.od(3, None), ctx.od(3, s, None), "{s}");
        }
        // More folds than nodes (prefixes re-descended), but never
        // more than the direct combine's total dimensionality.
        let total_dims: u64 = Subspace::all_nonempty(d).map(|s| s.dim() as u64).sum();
        assert!(w.node_visits() > Subspace::lattice_size(d));
        assert!(w.node_visits() <= total_dims);
    }

    #[test]
    fn manual_descend_ascend_walk() {
        let ds = random_dataset(40, 4, 3);
        let q: Vec<f64> = ds.row(5).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L1, &q);
        let mut w = ctx.walker();
        assert_eq!(w.depth(), 0);
        w.descend(1);
        w.descend(3);
        assert_eq!(w.subspace(), Subspace::from_dims(&[1, 3]));
        assert_eq!(
            w.od(4, Some(5)),
            ctx.od(4, Subspace::from_dims(&[1, 3]), Some(5))
        );
        w.ascend();
        w.descend(2);
        assert_eq!(
            w.od(4, Some(5)),
            ctx.od(4, Subspace::from_dims(&[1, 2]), Some(5))
        );
        w.ascend();
        w.ascend();
        assert_eq!(w.depth(), 0);
        // Re-descending reuses buffers; values stay exact.
        w.descend(0);
        assert_eq!(
            w.od(4, Some(5)),
            ctx.od(4, Subspace::from_dims(&[0]), Some(5))
        );
    }

    #[test]
    fn tombstones_and_exclusion_respected() {
        let mut ds = random_dataset(30, 3, 4);
        ds.remove_row(7).unwrap();
        ds.remove_row(19).unwrap();
        let q: Vec<f64> = ds.row(2).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L2, &q);
        let mut w = ctx.walker();
        for s in Subspace::all_nonempty(3) {
            w.seek(s);
            let nn = w.knn(6, Some(2));
            assert_eq!(nn, ctx.knn(6, s, Some(2)), "{s}");
            assert!(nn.iter().all(|n| n.id != 7 && n.id != 19 && n.id != 2));
        }
    }

    #[test]
    fn distance_eval_accounting_matches_direct_path() {
        let ds = random_dataset(25, 3, 5);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(0).to_vec();
        let ctx = engine.query_context(&q).expect("linear scan caches");
        let mut w = ctx.walker();
        w.seek(Subspace::from_dims(&[0, 2]));
        w.od(3, Some(0));
        // Same logical count as ctx.od: every non-excluded live point.
        assert_eq!(engine.distance_evals(), 24);
    }

    #[test]
    fn walk_order_sorts_prefix_first() {
        let d = 3;
        let mut subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        subspaces.sort_by(|a, b| a.walk_cmp(*b));
        let dims: Vec<Vec<usize>> = subspaces.iter().map(|s| s.dim_vec()).collect();
        assert_eq!(
            dims,
            vec![
                vec![0],
                vec![0, 1],
                vec![0, 1, 2],
                vec![0, 2],
                vec![1],
                vec![1, 2],
                vec![2],
            ]
        );
        // walk_order produces the same permutation as indices.
        let mut idx = Vec::new();
        let shuffled = [subspaces[4], subspaces[0], subspaces[2]];
        walk_order(&shuffled, &mut idx);
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn seek_across_contexts_discards_stale_accumulators() {
        // A PrefixStack takes its context per call, so nothing stops a
        // caller from reusing one stack across two query points. The
        // context-uid guard must make that recompute, not silently
        // blend accumulators from different queries.
        let ds = random_dataset(35, 4, 7);
        let qa: Vec<f64> = ds.row(1).to_vec();
        let qb: Vec<f64> = ds.row(2).to_vec();
        let ctx_a = QueryContext::build(&ds, Metric::L2, &qa);
        let ctx_b = QueryContext::build(&ds, Metric::L2, &qb);
        let mut stack = PrefixStack::new();
        let s01 = Subspace::from_dims(&[0, 1]);
        let s02 = Subspace::from_dims(&[0, 2]);
        stack.seek(&ctx_a, s01);
        assert_eq!(stack.od(&ctx_a, 4, Some(1)), ctx_a.od(4, s01, Some(1)));
        // Same dim-0 prefix, different context: without the guard the
        // level-0 accumulator would still hold ctx_a's column.
        stack.seek(&ctx_b, s02);
        assert_eq!(stack.od(&ctx_b, 4, Some(2)), ctx_b.od(4, s02, Some(2)));
        // And back, with the full lattice for good measure.
        for s in Subspace::all_nonempty(4) {
            stack.seek(&ctx_a, s);
            assert_eq!(stack.od(&ctx_a, 3, None), ctx_a.od(3, s, None), "{s}");
        }
    }

    #[test]
    #[should_panic]
    fn non_ascending_descend_panics() {
        let ds = random_dataset(10, 3, 6);
        let q: Vec<f64> = ds.row(0).to_vec();
        let ctx = QueryContext::build(&ds, Metric::L2, &q);
        let mut w = ctx.walker();
        w.descend(2);
        w.descend(1);
    }
}
