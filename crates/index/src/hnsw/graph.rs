//! The layered navigable-small-world graph behind [`crate::hnsw`].
//!
//! A from-scratch, dependency-free HNSW (Malkov & Yashunin,
//! TPAMI 2020): every point gets a geometrically distributed top
//! level, each level holds a bounded-degree proximity graph, and a
//! query greedily descends the sparse upper levels before running a
//! best-first beam of width `ef` over the dense bottom level. The
//! graph stores **ids only** — all distances are supplied by the
//! caller through closures, so the same structure serves full-space
//! construction and per-subspace navigation without knowing either.
//!
//! Determinism: levels derive from a hash of `(seed, id)` (no RNG
//! state, so a bounded rebuild reassigns identical levels), and every
//! frontier/result ordering ties on ascending id, so two searches over
//! the same graph always visit the same nodes in the same order.
//!
//! Tombstones: removed points stay in the graph as *routable* vertices
//! until the owning engine triggers a bounded rebuild — their edges
//! keep the small-world connectivity intact, and the engine filters
//! them from every candidate set it returns.

use hos_data::PointId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Levels are capped so a pathological hash cannot allocate an
/// unbounded level vector; `2^24` points would be needed to reach it.
const MAX_LEVEL: usize = 24;

/// One `(pre-distance, id)` pair with the total order every selection
/// in this crate uses: ascending distance, ties on ascending id.
/// `Ord` is total because dataset validation guarantees finite
/// coordinates, hence finite pre-distances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct ScoredId {
    pub pre: f64,
    pub id: PointId,
}

impl Eq for ScoredId {}

impl PartialOrd for ScoredId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScoredId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.pre
            .partial_cmp(&other.pre)
            .expect("finite pre-distances")
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Per-node adjacency: one bounded neighbour list per level the node
/// participates in (`lists[l]` for levels `0..=top`).
#[derive(Clone, Debug, Default)]
struct Links {
    lists: Vec<Vec<PointId>>,
}

/// The layered graph. Slot `i` of `nodes` belongs to dataset row `i`;
/// `None` marks rows that are not graph members (tombstoned before the
/// last rebuild). Membership only ever references member slots, so
/// traversal never consults the dataset's liveness.
pub(crate) struct Graph {
    nodes: Vec<Option<Links>>,
    /// Highest-level member and its level — the search entry point.
    entry: Option<(PointId, usize)>,
    /// Degree bound on levels `> 0`; level 0 allows `2 * m`.
    m: usize,
    /// Beam width during construction.
    ef_construction: usize,
    /// Level-assignment seed.
    seed: u64,
    /// Current member count (tombstoned members included until the
    /// engine rebuilds).
    members: usize,
}

/// SplitMix64: the deterministic level hash. One multiply-xor-shift
/// chain per insert; no RNG state to diverge between a streamed build
/// and a rebuild.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Graph {
    pub fn new(capacity: usize, m: usize, ef_construction: usize, seed: u64) -> Self {
        Graph {
            nodes: vec![None; capacity],
            entry: None,
            m: m.max(2),
            ef_construction: ef_construction.max(4),
            seed,
            members: 0,
        }
    }

    /// Members inserted since construction/rebuild (live + tombstoned).
    pub fn members(&self) -> usize {
        self.members
    }

    /// The geometric level of `id`: `floor(-ln(U) / ln(m))` with `U`
    /// uniform from the `(seed, id)` hash — the standard HNSW level
    /// distribution, derandomised so rebuilds reproduce it.
    fn level_for(&self, id: PointId) -> usize {
        let h = splitmix64(self.seed ^ (id as u64).wrapping_mul(0xD134_2543_DE82_EF95));
        // 53 uniform bits in (0, 1]; the +1 keeps ln() finite.
        let u = ((h >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let level = (-u.ln() / (self.m as f64).ln()) as usize;
        level.min(MAX_LEVEL)
    }

    #[inline]
    fn degree_bound(&self, level: usize) -> usize {
        if level == 0 {
            2 * self.m
        } else {
            self.m
        }
    }

    #[inline]
    fn neighbors(&self, id: PointId, level: usize) -> &[PointId] {
        match &self.nodes[id] {
            Some(links) if level < links.lists.len() => &links.lists[level],
            _ => &[],
        }
    }

    /// Greedy descent at one level: moves to the closest neighbour
    /// until no neighbour improves. `dist` is called once per
    /// previously unseen neighbour.
    fn greedy_step(
        &self,
        dist: &mut impl FnMut(PointId) -> f64,
        level: usize,
        mut cur: PointId,
        mut cur_pre: f64,
    ) -> (PointId, f64) {
        loop {
            let mut improved = false;
            for &nb in self.neighbors(cur, level) {
                let pre = dist(nb);
                if (ScoredId { pre, id: nb })
                    < (ScoredId {
                        pre: cur_pre,
                        id: cur,
                    })
                {
                    cur = nb;
                    cur_pre = pre;
                    improved = true;
                }
            }
            if !improved {
                return (cur, cur_pre);
            }
        }
    }

    /// Best-first beam search at one level: expands the closest
    /// frontier node until the frontier cannot improve the worst of
    /// `ef` kept results. Returns the kept `(pre, id)` set in
    /// arbitrary order (callers re-select exactly). Tombstoned members
    /// are kept too — the *caller* filters; dropping them here would
    /// shrink the beam below `ef`.
    fn search_level(
        &self,
        dist: &mut impl FnMut(PointId) -> f64,
        level: usize,
        entries: &[ScoredId],
        ef: usize,
        visited: &mut VisitedSet,
    ) -> Vec<ScoredId> {
        let mut frontier: BinaryHeap<Reverse<ScoredId>> = BinaryHeap::new();
        let mut results: BinaryHeap<ScoredId> = BinaryHeap::new();
        visited.clear();
        for &e in entries {
            if visited.insert(e.id) {
                frontier.push(Reverse(e));
                results.push(e);
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(cand)) = frontier.pop() {
            let worst = results.peek().copied();
            if results.len() >= ef && worst.is_some_and(|w| cand > w) {
                break;
            }
            for &nb in self.neighbors(cand.id, level) {
                if !visited.insert(nb) {
                    continue;
                }
                let scored = ScoredId {
                    pre: dist(nb),
                    id: nb,
                };
                if results.len() < ef || scored < *results.peek().expect("non-empty") {
                    frontier.push(Reverse(scored));
                    results.push(scored);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        results.into_vec()
    }

    /// Inserts `id` as a new member. `dist` measures the (full-space)
    /// pre-distance between two member ids; the new id is always one
    /// of the pair, so implementations may cache its row.
    pub fn insert(&mut self, id: PointId, dist: &mut impl FnMut(PointId, PointId) -> f64) {
        if id >= self.nodes.len() {
            self.nodes.resize(id + 1, None);
        }
        let level = self.level_for(id);
        self.nodes[id] = Some(Links {
            lists: vec![Vec::new(); level + 1],
        });
        self.members += 1;
        let Some((entry, max_level)) = self.entry else {
            self.entry = Some((id, level));
            return;
        };

        let mut visited = VisitedSet::new(self.nodes.len());
        let mut cur = ScoredId {
            pre: dist(id, entry),
            id: entry,
        };
        // Greedy descent through levels above the new node's top.
        for l in (level + 1..=max_level).rev() {
            let (c, p) = self.greedy_step(&mut |o| dist(id, o), l, cur.id, cur.pre);
            cur = ScoredId { pre: p, id: c };
        }
        // Beam search + bounded linking on each shared level.
        let mut entries = vec![cur];
        for l in (0..=level.min(max_level)).rev() {
            let found = self.search_level(
                &mut |o| dist(id, o),
                l,
                &entries,
                self.ef_construction,
                &mut visited,
            );
            let bound = self.degree_bound(l);
            let mut closest = found.clone();
            closest.sort_unstable();
            closest.truncate(bound);
            for &nb in closest.iter().map(|s| &s.id) {
                self.link(id, nb, l, dist);
            }
            entries = closest;
        }
        if level > max_level {
            self.entry = Some((id, level));
        }
    }

    /// Adds the bidirectional edge `a <-> b` at `level`, pruning
    /// either endpoint back to its degree bound by keeping the
    /// closest neighbours (ascending `(pre, id)`).
    fn link(
        &mut self,
        a: PointId,
        b: PointId,
        level: usize,
        dist: &mut impl FnMut(PointId, PointId) -> f64,
    ) {
        if a == b {
            return;
        }
        let bound = self.degree_bound(level);
        for (from, to) in [(a, b), (b, a)] {
            let list = match &mut self.nodes[from] {
                Some(links) if level < links.lists.len() => &mut links.lists[level],
                _ => continue,
            };
            if list.contains(&to) {
                continue;
            }
            list.push(to);
            if list.len() > bound {
                let mut scored: Vec<ScoredId> = list
                    .iter()
                    .map(|&nb| ScoredId {
                        pre: dist(from, nb),
                        id: nb,
                    })
                    .collect();
                scored.sort_unstable();
                scored.truncate(bound);
                let pruned = match &mut self.nodes[from] {
                    Some(links) => &mut links.lists[level],
                    None => unreachable!("member checked above"),
                };
                pruned.clear();
                pruned.extend(scored.iter().map(|s| s.id));
            }
        }
    }

    /// The candidate pool for one query: greedy descent from the entry
    /// point through the upper levels, then an `ef`-wide beam over
    /// level 0. `dist` is the query's (subspace-projected)
    /// pre-distance to a member id. Empty when the graph has no
    /// members.
    pub fn search(&self, dist: &mut impl FnMut(PointId) -> f64, ef: usize) -> Vec<ScoredId> {
        let Some((entry, max_level)) = self.entry else {
            return Vec::new();
        };
        let mut cur = ScoredId {
            pre: dist(entry),
            id: entry,
        };
        for l in (1..=max_level).rev() {
            let (c, p) = self.greedy_step(dist, l, cur.id, cur.pre);
            cur = ScoredId { pre: p, id: c };
        }
        let mut visited = VisitedSet::new(self.nodes.len());
        self.search_level(dist, 0, &[cur], ef.max(1), &mut visited)
    }
}

/// A reusable id bitset: one bit per dataset row.
struct VisitedSet {
    bits: Vec<u64>,
}

impl VisitedSet {
    fn new(capacity: usize) -> Self {
        VisitedSet {
            bits: vec![0; capacity.div_ceil(64)],
        }
    }

    fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }

    /// Marks `id`; returns `true` if it was previously unmarked.
    fn insert(&mut self, id: PointId) -> bool {
        let (word, bit) = (id / 64, 1u64 << (id % 64));
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let seen = self.bits[word] & bit != 0;
        self.bits[word] |= bit;
        !seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph(n: usize) -> (Graph, Vec<f64>) {
        // 1-d points 0, 1, ..., n-1: distances are |a - b|.
        let coords: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut g = Graph::new(n, 4, 16, 7);
        let c = coords.clone();
        let mut dist = move |a: PointId, b: PointId| (c[a] - c[b]).abs();
        for i in 0..n {
            g.insert(i, &mut dist);
        }
        (g, coords)
    }

    #[test]
    fn search_finds_the_true_neighbourhood_on_a_line() {
        let (g, coords) = toy_graph(200);
        let q = 57.3;
        let mut dist = |i: PointId| (coords[i] - q).abs();
        let mut found = g.search(&mut dist, 16);
        found.sort_unstable();
        // The closest point on the line must head the beam.
        assert_eq!(found[0].id, 57);
        // And the top-5 of the beam must be the true 5 closest.
        let ids: Vec<PointId> = found.iter().take(5).map(|s| s.id).collect();
        assert_eq!(ids, vec![57, 58, 56, 59, 55]);
    }

    #[test]
    fn levels_are_deterministic_and_bounded() {
        let g = Graph::new(0, 8, 16, 42);
        for id in 0..10_000 {
            let l1 = g.level_for(id);
            let l2 = g.level_for(id);
            assert_eq!(l1, l2);
            assert!(l1 <= MAX_LEVEL);
        }
    }

    #[test]
    fn degree_bounds_hold_after_many_inserts() {
        let (g, _) = toy_graph(300);
        for (id, node) in g.nodes.iter().enumerate() {
            let links = node.as_ref().expect("all inserted");
            for (l, list) in links.lists.iter().enumerate() {
                assert!(
                    list.len() <= g.degree_bound(l),
                    "node {id} level {l} degree {}",
                    list.len()
                );
                assert!(!list.contains(&id), "self-loop at {id}");
            }
        }
    }

    #[test]
    fn empty_and_single_member_edges() {
        let g = Graph::new(4, 4, 8, 1);
        let mut dist = |_: PointId| 0.0;
        assert!(g.search(&mut dist, 8).is_empty());
        let mut g = Graph::new(4, 4, 8, 1);
        g.insert(2, &mut |_, _| 0.0);
        let found = g.search(&mut |_| 1.5, 8);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, 2);
        assert_eq!(g.members(), 1);
    }
}
