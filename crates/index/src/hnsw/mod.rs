//! Approximate k-NN tier: an HNSW graph engine with an exact re-rank.
//!
//! Every other engine in this crate is exact-scan-shaped — even the
//! blocked kernel pays `O(n)` per lattice node. [`HnswEngine`] breaks
//! that: a vendored, dependency-free hierarchical navigable-small-world
//! graph ([`graph`]) generates a *candidate pool* of `ef` points in
//! sub-linear time, and an exact re-rank stage re-selects the top-`k`
//! from that pool with the same f64 arithmetic and the same
//! `(pre-distance, id)` tie-break as [`crate::linear::LinearScan`].
//!
//! # What is approximate, and what is not
//!
//! Only **recall** is approximate: the candidate pool may miss a true
//! neighbour, so the reported k-NN set can differ from the exact one.
//! Every *number* attached to what is reported is exact — candidate
//! distances come from [`Metric::pre_dist_sub`] over the raw rows (or
//! the cached [`QueryContext`] fold on the evaluator path, bit-identical
//! by the context equivalence tests), the re-rank uses the shared
//! [`TopK`] `(pre, id)` order, and ODs sum finished distances in the
//! same ascending order as every exact engine. The graph is built once
//! in the **full space**; queries navigate it with distances projected
//! onto the queried subspace, so one graph serves all `2^d - 1`
//! subspaces.
//!
//! # The exactness escape hatch
//!
//! Each query first consults [`HnswEngine::plan`]: when `ef >= live`
//! (the pool would cover everything — including the `ef = n` contract
//! pinned in `tests/properties.rs`), when `k >= ef` (a pool barely
//! wider than `k` has hopeless recall), or when the filtered pool
//! comes up shorter than `k` (tombstones, tiny data), the query falls
//! back to the exact scan loop — bit-identical to `LinearScan`. So
//! approximation is strictly opt-in by workload size.
//!
//! # Incremental seam
//!
//! Inserts extend the graph in place (`O(ef_construction)` beam per
//! insert); removals tombstone the dataset row while the vertex stays
//! *routable* so connectivity never degrades. Once tombstones reach
//! [`HnswEngine::REBUILD_DEAD_FRACTION`] of the graph, a bounded
//! rebuild re-indexes the live rows — the same amortisation the X-tree
//! uses. Because recall (not the result set) is the approximate part,
//! the churn contract is the measured recall oracle in
//! `tests/incremental_oracle.rs`, not bit-identity.
//!
//! [`Metric::pre_dist_sub`]: hos_data::Metric::pre_dist_sub
//! [`QueryContext`]: crate::context::QueryContext
//! [`TopK`]: crate::topk::TopK

mod graph;

use crate::context::QueryContext;
use crate::error::{validate_insert, validate_remove, IndexError};
use crate::evaluator::OdEvaluator;
use crate::knn::{IncrementalEngine, KnnEngine, Neighbor};
use crate::topk::TopK;
use graph::Graph;
use hos_data::{Dataset, Metric, PointId, Subspace};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};

use crate::batch::parallel_map;

/// Default candidate-pool width (`ef_search`): wide enough that the
/// seeded oracle workloads measure recall@k well above the 0.95
/// contract, small enough that the pool stays sub-linear where it
/// matters (`n` in the tens of thousands and up).
pub const DEFAULT_EF: usize = 96;

/// Construction/search parameters of the HNSW graph.
#[derive(Clone, Copy, Debug)]
pub struct HnswConfig {
    /// Degree bound on levels above 0 (level 0 allows `2 * m`).
    pub m: usize,
    /// Beam width while building the graph.
    pub ef_construction: usize,
    /// Initial candidate-pool width for queries; retunable at runtime
    /// through [`KnnEngine::set_search_width`].
    pub ef_search: usize,
    /// Level-assignment seed (levels are a pure hash of
    /// `(seed, id)`, so rebuilds reproduce them).
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 12,
            ef_construction: 80,
            ef_search: DEFAULT_EF,
            seed: 0x9E37_79B9,
        }
    }
}

/// How one query will execute — decided per query, never globally.
enum Plan {
    /// Exact scan, bit-identical to [`crate::linear::LinearScan`].
    Exact,
    /// Graph candidate generation with this pool width, then exact
    /// re-rank (with a per-query fallback to [`Plan::Exact`] if the
    /// filtered pool comes up short).
    Approx { ef: usize },
}

/// The approximate k-NN engine: HNSW candidate generation + exact
/// re-rank. See the module docs for the contract.
///
/// ```
/// use hos_data::{Dataset, Metric, Subspace};
/// use hos_index::{HnswConfig, HnswEngine, KnnEngine};
///
/// let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![(i % 17) as f64, (i % 23) as f64]).collect();
/// let ds = Dataset::from_rows(&rows).unwrap();
/// let engine = HnswEngine::build(ds, Metric::L2, HnswConfig::default());
/// let nn = engine.knn(&[3.0, 3.0], 5, Subspace::full(2), None);
/// assert_eq!(nn.len(), 5);
/// // Reported distances are exact f64, never estimates:
/// assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
/// ```
pub struct HnswEngine {
    dataset: Dataset,
    metric: Metric,
    config: HnswConfig,
    graph: Graph,
    /// Runtime-tunable candidate-pool width (`ef_search`).
    ef: AtomicUsize,
    /// Tombstones since the last (re)build.
    stale: usize,
    evals: AtomicU64,
}

impl HnswEngine {
    /// Tombstoned fraction of the graph that triggers a bounded
    /// rebuild over the live rows — same cadence rationale as
    /// [`crate::xtree::XTree::REBULK_DEAD_FRACTION`]: per-removal cost
    /// amortises to `O(build / n)`, and the gate counts tombstones
    /// since the last rebuild so it cannot re-trigger per removal.
    pub const REBUILD_DEAD_FRACTION: f64 = 0.25;

    /// Projection factor (`d / |s|`) at which a subspace query stops
    /// using the graph and goes straight to the exact scan — see
    /// [`Self::plan`]. At or past this mismatch the full-space links
    /// predict projected proximity too poorly for any affordable beam.
    pub const EXACT_PROJECTION_FACTOR: usize = 4;

    /// Builds the graph over the live rows of `dataset`.
    pub fn build(dataset: Dataset, metric: Metric, config: HnswConfig) -> Self {
        let mut engine = HnswEngine {
            graph: Graph::new(dataset.len(), config.m, config.ef_construction, config.seed),
            ef: AtomicUsize::new(config.ef_search.max(1)),
            dataset,
            metric,
            config,
            stale: 0,
            evals: AtomicU64::new(0),
        };
        engine.rebuild();
        engine
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// The current candidate-pool width.
    pub fn ef(&self) -> usize {
        self.ef.load(AtomicOrdering::Relaxed)
    }

    /// (Re)builds the graph over the live rows, in ascending id order.
    /// Levels are a pure hash of `(seed, id)`, so a rebuild assigns
    /// every surviving point the level it already had.
    fn rebuild(&mut self) {
        let mut graph = Graph::new(
            self.dataset.len(),
            self.config.m,
            self.config.ef_construction,
            self.config.seed,
        );
        let ds = &self.dataset;
        let metric = self.metric;
        let full = ds.full_space();
        let mut count = 0u64;
        let mut dist = |a: PointId, b: PointId| {
            count += 1;
            metric.pre_dist_sub(ds.row(a), ds.row(b), full)
        };
        for id in ds.live_ids() {
            graph.insert(id, &mut dist);
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        self.graph = graph;
        self.stale = 0;
    }

    /// Decides how a `k`-query in subspace `s` executes under the
    /// current pool width. The configured `ef` buys a candidate pool
    /// per *projected* dimension: navigation runs on subspace
    /// distances over links chosen in full space, and the thinner the
    /// projection the worse those links predict projected proximity —
    /// measured recall at fixed `ef` degrades roughly with `|s| / d`
    /// as `n` grows. Scaling the pool by `d / |s|` holds the recall
    /// contract across subspace dims instead of only in (near-)full
    /// space. The query is exact when the scaled pool would cover the
    /// live set anyway (`ef >= live`, which includes the `ef = n`
    /// exactness contract) or when `k >= ef` (approximation could not
    /// help) — so low-dim projections route to the exact scan sooner,
    /// which is also where the scan's per-row fold is cheapest.
    ///
    /// Extreme projections (factor >= [`Self::EXACT_PROJECTION_FACTOR`],
    /// i.e. at most a quarter of the dimensions survive) skip the graph
    /// entirely: there the beam would need to grow past the point where
    /// it costs more than the exact scan's (cheap, thin) per-row fold
    /// while still missing true neighbours — measured at d=8, n=32k the
    /// 2-dim beam was both slower than the scan and under 0.9 recall.
    fn plan(&self, k: usize, s: Subspace) -> Plan {
        let base = self.ef();
        let factor = (self.dataset.dim() / s.dim().max(1)).max(1);
        let ef = base.saturating_mul(factor);
        if factor >= Self::EXACT_PROJECTION_FACTOR
            || k >= ef
            || ef >= self.dataset.live_len()
            || self.graph.members() == 0
        {
            Plan::Exact
        } else {
            Plan::Approx { ef }
        }
    }

    /// The exact scan loop — deliberately the same per-row operation
    /// sequence as [`crate::linear::LinearScan::knn`], so every
    /// fallback (and the `ef = n` mode) is bit-identical to it.
    fn exact_topk(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> TopK {
        let mut top = TopK::new(k);
        let mut count = 0u64;
        for (id, row) in self.dataset.iter() {
            if Some(id) == exclude {
                continue;
            }
            count += 1;
            top.offer(self.metric.pre_dist_sub(query, row, s), id);
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        top
    }

    /// Candidate generation + exact re-rank; `None` when the filtered
    /// pool holds fewer than `k` points (the caller then falls back to
    /// the exact scan, keeping the "short only when the data runs out"
    /// contract).
    fn approx_topk(
        &self,
        query: &[f64],
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
        ef: usize,
    ) -> Option<TopK> {
        let mut count = 0u64;
        let found = {
            let ds = &self.dataset;
            let metric = self.metric;
            let mut dist = |i: PointId| {
                count += 1;
                metric.pre_dist_sub(query, ds.row(i), s)
            };
            self.graph.search(&mut dist, ef)
        };
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        // Exact re-rank over the pool: the candidate pre-distances are
        // already exact, so re-selection through the shared TopK
        // reproduces the exact engine's ordering contract on whatever
        // the pool contains.
        let mut top = TopK::new(k);
        let mut offered = 0usize;
        for c in &found {
            if Some(c.id) == exclude || !self.dataset.is_live(c.id) {
                continue;
            }
            offered += 1;
            top.offer(c.pre, c.id);
        }
        (offered >= k).then_some(top)
    }

    fn finish(&self, top: TopK) -> Vec<Neighbor> {
        top.into_sorted()
            .into_iter()
            .map(|c| Neighbor {
                id: c.id,
                dist: self.metric.finish(c.pre),
            })
            .collect()
    }

    /// OD through a cached [`QueryContext`]: the evaluator path.
    /// Candidate generation navigates the graph with the context's
    /// per-subspace column fold ([`QueryContext::pre_dist`] — cached,
    /// still exact f64), the re-rank re-selects with the shared
    /// `(pre, id)` order, and the sum runs in the same ascending order
    /// as [`QueryContext::od`]. Falls back to the context's exact fold
    /// per the usual plan.
    pub(crate) fn od_with_ctx(
        &self,
        ctx: &QueryContext<'_>,
        k: usize,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> f64 {
        if let Plan::Approx { ef } = self.plan(k, s) {
            let mut count = 0u64;
            let found = {
                let mut dist = |i: PointId| {
                    count += 1;
                    ctx.pre_dist(i, s)
                };
                self.graph.search(&mut dist, ef)
            };
            self.evals.fetch_add(count, AtomicOrdering::Relaxed);
            let mut top = TopK::new(k);
            let mut offered = 0usize;
            for c in &found {
                if Some(c.id) == exclude || !self.dataset.is_live(c.id) {
                    continue;
                }
                offered += 1;
                top.offer(c.pre, c.id);
            }
            if offered >= k {
                return top
                    .into_sorted()
                    .iter()
                    .map(|c| self.metric.finish(c.pre))
                    .sum();
            }
        }
        ctx.od(k, s, exclude)
    }
}

impl KnnEngine for HnswEngine {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn into_dataset(self: Box<Self>) -> Dataset {
        self.dataset
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn knn(&self, query: &[f64], k: usize, s: Subspace, exclude: Option<PointId>) -> Vec<Neighbor> {
        if k == 0 || self.dataset.is_empty() {
            return Vec::new();
        }
        let top = match self.plan(k, s) {
            Plan::Approx { ef } => self
                .approx_topk(query, k, s, exclude, ef)
                .unwrap_or_else(|| self.exact_topk(query, k, s, exclude)),
            Plan::Exact => self.exact_topk(query, k, s, exclude),
        };
        self.finish(top)
    }

    /// Range queries stay exact: a radius query cannot tolerate missed
    /// members (there is no "recall" notion callers opted into), and
    /// none of the hot paths issue them, so the scan loop is the right
    /// tool.
    fn range(
        &self,
        query: &[f64],
        radius: f64,
        s: Subspace,
        exclude: Option<PointId>,
    ) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let mut count = 0u64;
        for (id, row) in self.dataset.iter() {
            if Some(id) == exclude {
                continue;
            }
            count += 1;
            let d = self.metric.dist_sub(query, row, s);
            if d <= radius {
                out.push(Neighbor { id, dist: d });
            }
        }
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        out
    }

    fn distance_evals(&self) -> u64 {
        self.evals.load(AtomicOrdering::Relaxed)
    }

    // No whole-dataset `query_context`: handing one out would route
    // the sharded evaluator (and any other context consumer) onto the
    // exact full fold, silently bypassing the graph this engine
    // exists to use. The evaluator below builds its own context for
    // the *re-rank* side only.

    fn set_search_width(&self, ef: usize) {
        self.ef.store(ef.max(1), AtomicOrdering::Relaxed);
    }

    fn search_width(&self) -> Option<usize> {
        Some(self.ef())
    }

    fn evaluator<'a>(
        &'a self,
        query: &'a [f64],
        k: usize,
        exclude: Option<PointId>,
    ) -> Box<dyn OdEvaluator + 'a> {
        Box::new(HnswOdEvaluator {
            engine: self,
            query,
            k,
            exclude,
            ctx: None,
            ctx_pending: true,
            dims_evaluated: 0,
        })
    }

    fn as_incremental(&mut self) -> Option<&mut dyn IncrementalEngine> {
        Some(self)
    }
}

/// Incremental maintenance: graph insert + tombstone-aware search +
/// bounded rebuild (module docs). The equivalence contract is the
/// *recall* oracle, not bit-identity — except for every fallback-path
/// query, which stays bit-identical to a cold `LinearScan`.
impl IncrementalEngine for HnswEngine {
    fn insert(&mut self, row: &[f64]) -> Result<PointId, IndexError> {
        validate_insert(&self.dataset, row)?;
        let id = self.dataset.push_row(row)?;
        let ds = &self.dataset;
        let metric = self.metric;
        let full = ds.full_space();
        let mut count = 0u64;
        let mut dist = |a: PointId, b: PointId| {
            count += 1;
            metric.pre_dist_sub(ds.row(a), ds.row(b), full)
        };
        self.graph.insert(id, &mut dist);
        self.evals.fetch_add(count, AtomicOrdering::Relaxed);
        Ok(id)
    }

    fn remove(&mut self, id: PointId) -> Result<(), IndexError> {
        validate_remove(&self.dataset, id)?;
        self.dataset.remove_row(id)?;
        self.stale += 1;
        if self.stale as f64 >= Self::REBUILD_DEAD_FRACTION * self.graph.members() as f64 {
            self.rebuild();
        }
        Ok(())
    }
}

/// The candidate-then-exact [`OdEvaluator`]: the hnsw analogue of
/// [`crate::evaluator::LazyContextEvaluator`]. Uncached engine queries
/// until the cumulative evaluated dimensionality clears the same `2d`
/// breakeven, then a [`QueryContext`] whose cached columns serve
/// *both* sides of the split — candidate generation navigates the
/// graph with `ctx.pre_dist` folds, and the exact re-rank re-selects
/// from the same values. Per-query fallback to the context's exact
/// fold whenever the plan or a short pool demands it.
struct HnswOdEvaluator<'a> {
    engine: &'a HnswEngine,
    query: &'a [f64],
    k: usize,
    exclude: Option<PointId>,
    ctx: Option<QueryContext<'a>>,
    ctx_pending: bool,
    dims_evaluated: usize,
}

impl<'a> HnswOdEvaluator<'a> {
    fn note_dims(&mut self, dims: usize) {
        self.dims_evaluated += dims;
        if self.ctx_pending && self.dims_evaluated > 2 * self.engine.dataset.dim() {
            self.ctx = Some(
                QueryContext::build(&self.engine.dataset, self.engine.metric, self.query)
                    .with_counter(&self.engine.evals),
            );
            self.ctx_pending = false;
        }
    }
}

impl OdEvaluator for HnswOdEvaluator<'_> {
    fn od(&mut self, s: Subspace) -> f64 {
        self.note_dims(s.dim());
        match &self.ctx {
            Some(ctx) => self.engine.od_with_ctx(ctx, self.k, s, self.exclude),
            None => self.engine.od(self.query, self.k, s, self.exclude),
        }
    }

    fn od_batch(&mut self, subspaces: &[Subspace], threads: usize) -> Vec<f64> {
        if subspaces.is_empty() {
            return Vec::new();
        }
        self.note_dims(subspaces.iter().map(|s| s.dim()).sum());
        let (engine, query, k, exclude) = (self.engine, self.query, self.k, self.exclude);
        match &self.ctx {
            Some(ctx) => parallel_map(subspaces, threads, |&s| {
                engine.od_with_ctx(ctx, k, s, exclude)
            }),
            None => parallel_map(subspaces, threads, |&s| engine.od(query, k, s, exclude)),
        }
    }
}

/// Measured recall@k of an approximate k-NN list against the exact
/// one: `|approx ∩ exact| / |exact|` over the returned ids (`1.0`
/// when the exact list is empty). Both lists follow the shared
/// `(distance, id)` ordering contract, so id-set intersection is the
/// right comparison even under distance ties.
pub fn recall_at_k(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hit = exact
        .iter()
        .filter(|e| approx.iter().any(|a| a.id == e.id))
        .count();
    hit as f64 / exact.len() as f64
}

/// Calibrates an engine's candidate-pool width to a measured recall
/// target: doubles `ef` from `max(2k, 16)` until mean recall@k over a
/// deterministic sample of self-excluded member queries (full space —
/// the widest, most common query) reaches `target`, or the pool covers
/// the live set (whereupon the engine is exact by construction).
/// Returns the chosen width, which is left applied via
/// [`KnnEngine::set_search_width`].
///
/// Works through the `KnnEngine` trait alone — the exact reference is
/// the engine itself at `ef = usize::MAX` (the exhaustive escape
/// hatch), so sharded hnsw engines calibrate their per-shard graphs in
/// one pass, and exact engines (whose recall is identically 1) return
/// after the first probe.
pub fn calibrate_search_width(
    engine: &dyn KnnEngine,
    k: usize,
    target: f64,
    sample: usize,
    seed: u64,
) -> usize {
    let ds = engine.dataset();
    let n = ds.live_len();
    let s = ds.full_space();
    let mut ef = (2 * k).max(16);
    if n == 0 || k == 0 || sample == 0 {
        engine.set_search_width(ef);
        return ef;
    }
    // Deterministic sample of live member ids.
    let live: Vec<PointId> = ds.live_ids().collect();
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let ids: Vec<PointId> = (0..sample.min(live.len()))
        .map(|_| {
            state = graph::splitmix64(state);
            live[(state % live.len() as u64) as usize]
        })
        .collect();
    engine.set_search_width(usize::MAX);
    let refs: Vec<(Vec<f64>, PointId, Vec<Neighbor>)> = ids
        .iter()
        .map(|&id| {
            let q = ds.row(id).to_vec();
            let exact = engine.knn(&q, k, s, Some(id));
            (q, id, exact)
        })
        .collect();
    loop {
        engine.set_search_width(ef);
        let mean: f64 = refs
            .iter()
            .map(|(q, id, exact)| recall_at_k(exact, &engine.knn(q, k, s, Some(*id))))
            .sum::<f64>()
            / refs.len() as f64;
        if mean >= target || ef >= n {
            return ef;
        }
        ef *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-10.0..10.0)).collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn reported_distances_are_exact() {
        let ds = dataset(400, 4, 1);
        let e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        for s in [Subspace::full(4), Subspace::from_dims(&[1, 3])] {
            let q: Vec<f64> = ds.row(7).to_vec();
            for n in e.knn(&q, 5, s, Some(7)) {
                let true_d = Metric::L2.dist_sub(&q, ds.row(n.id), s);
                assert_eq!(n.dist, true_d, "{s} id={}", n.id);
            }
        }
    }

    #[test]
    fn exhaustive_ef_is_bit_identical_to_linear_scan() {
        let ds = dataset(150, 3, 2);
        let e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        e.set_search_width(ds.len());
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(3).to_vec();
        for s in Subspace::all_nonempty(3) {
            assert_eq!(
                e.knn(&q, 6, s, Some(3)),
                linear.knn(&q, 6, s, Some(3)),
                "{s}"
            );
            assert_eq!(e.od(&q, 6, s, Some(3)), linear.od(&q, 6, s, Some(3)), "{s}");
        }
    }

    #[test]
    fn k_at_or_above_ef_plans_exact() {
        let ds = dataset(300, 3, 3);
        let e = HnswEngine::build(ds.clone(), Metric::L1, HnswConfig::default());
        e.set_search_width(4);
        let linear = LinearScan::new(ds.clone(), Metric::L1);
        let q: Vec<f64> = ds.row(0).to_vec();
        let s = Subspace::full(3);
        // k = 4 >= ef = 4: exact plan, identical to the scan.
        assert_eq!(e.knn(&q, 4, s, Some(0)), linear.knn(&q, 4, s, Some(0)));
    }

    #[test]
    fn extreme_projections_route_to_the_exact_scan() {
        // d=8 with a 2-dim subspace: projection factor 4 hits
        // EXACT_PROJECTION_FACTOR, so the query must be a plain scan —
        // bit-identical to LinearScan AND costing exactly one fold per
        // live row, however small ef is.
        let ds = dataset(500, 8, 5);
        let e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        e.set_search_width(8);
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(11).to_vec();
        let s = Subspace::from_dims(&[2, 6]);
        let before = e.distance_evals();
        assert_eq!(e.knn(&q, 5, s, Some(11)), linear.knn(&q, 5, s, Some(11)));
        assert_eq!(e.distance_evals() - before, 500 - 1);
        // A 4-dim subspace (factor 2) still navigates the graph: the
        // eval count of a beam search cannot reach the full scan's.
        let s4 = Subspace::from_dims(&[0, 2, 4, 6]);
        let before = e.distance_evals();
        e.knn(&q, 5, s4, Some(11));
        assert!(e.distance_evals() - before < 499, "beam did a full scan");
    }

    #[test]
    fn default_recall_is_high_on_seeded_data() {
        let ds = dataset(600, 6, 4);
        let e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let s = Subspace::full(6);
        let mut total = 0.0;
        let mut queries = 0;
        for qid in (0..600).step_by(37) {
            let q: Vec<f64> = ds.row(qid).to_vec();
            let exact = linear.knn(&q, 8, s, Some(qid));
            let approx = e.knn(&q, 8, s, Some(qid));
            total += recall_at_k(&exact, &approx);
            queries += 1;
        }
        let mean = total / queries as f64;
        assert!(mean >= 0.95, "mean recall {mean}");
    }

    #[test]
    fn evaluator_matches_engine_through_both_phases() {
        // The evaluator's two phases (uncached engine queries, then the
        // ctx-navigated pool) must agree with the engine's own knn/od —
        // same plan, same candidates, same arithmetic.
        let ds = dataset(250, 5, 5);
        let e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        let q: Vec<f64> = ds.row(9).to_vec();
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(5).collect();
        let reference: Vec<f64> = subspaces.iter().map(|&s| e.od(&q, 4, s, Some(9))).collect();
        let mut ev = e.evaluator(&q, 4, Some(9));
        for (i, &s) in subspaces.iter().take(3).enumerate() {
            assert_eq!(ev.od(s), reference[i], "uncached {s}");
        }
        for threads in [1, 3] {
            assert_eq!(ev.od_batch(&subspaces, threads), reference, "t={threads}");
        }
    }

    #[test]
    fn churn_keeps_answering_and_rebuild_triggers() {
        let ds = dataset(120, 3, 6);
        let mut e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        // Remove 40% → crosses the rebuild gate at least once.
        for id in 0..48 {
            e.remove(id).unwrap();
        }
        // The gate fires at removal 30 (0.25 * 120); only the 18
        // removals after that rebuild are still pending.
        assert!(e.stale < 48, "no rebuild happened (stale = {})", e.stale);
        let id = e.insert(&[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(id, 120);
        let nn = e.knn(&[0.5, 0.5, 0.5], 3, Subspace::full(3), None);
        assert_eq!(nn[0].id, 120);
        assert_eq!(nn[0].dist, 0.0);
        // Dead ids never appear in results.
        assert!(nn.iter().all(|n| n.id >= 48));
    }

    #[test]
    fn calibration_reaches_target_or_exhausts() {
        let ds = dataset(500, 5, 7);
        let e = HnswEngine::build(ds.clone(), Metric::L2, HnswConfig::default());
        let ef = calibrate_search_width(&e, 5, 0.95, 12, 11);
        assert_eq!(e.search_width(), Some(ef));
        // The chosen width must actually deliver the target on the
        // calibration sample (or have exhausted the live set).
        let linear = LinearScan::new(ds.clone(), Metric::L2);
        let s = Subspace::full(5);
        let mut total = 0.0;
        let mut count = 0;
        for qid in (0..500).step_by(29) {
            let q: Vec<f64> = ds.row(qid).to_vec();
            total += recall_at_k(
                &linear.knn(&q, 5, s, Some(qid)),
                &e.knn(&q, 5, s, Some(qid)),
            );
            count += 1;
        }
        assert!(total / count as f64 >= 0.9, "calibrated recall too low");
    }

    #[test]
    fn empty_and_k_zero_edges() {
        let e = HnswEngine::build(Dataset::empty(), Metric::L2, HnswConfig::default());
        assert!(e.knn(&[], 3, Subspace::empty(), None).is_empty());
        let ds = dataset(50, 2, 8);
        let e = HnswEngine::build(ds, Metric::L2, HnswConfig::default());
        assert!(e.knn(&[0.0, 0.0], 0, Subspace::full(2), None).is_empty());
    }
}
