//! The engine-agnostic OD-evaluation seam.
//!
//! Every search layer in `hos-core` reduces to the same inner loop:
//! given one `(engine, query)` pair, evaluate `OD(query, s)` for a
//! stream of subspaces — one at a time or a whole lattice level per
//! call. Before this module, each caller re-implemented the same
//! amortisation dance by hand: hold an `Option<QueryContext>`, track
//! cumulative evaluated dimensionality, build the cache once past the
//! `~2d` breakeven, then branch on `Some`/`None` at every batch. That
//! copy-pasted plumbing is exactly the seam a sharded, async or
//! multi-backend execution layer has to cut through, so it lives here
//! once, behind a trait:
//!
//! * [`OdEvaluator`] — one object per `(engine, query)` pair with
//!   [`OdEvaluator::od`] and [`OdEvaluator::od_batch`] methods. The
//!   evaluator owns lazy [`QueryContext`] construction and the cost
//!   model; callers just stream subspaces at it.
//! * [`LazyContextEvaluator`] — the default implementation every
//!   [`KnnEngine`] hands out: uncached engine queries until the
//!   cumulative evaluated dimensionality clears `2d`, a shared
//!   pre-distance cache afterwards (engines without a context simply
//!   stay on the uncached path forever).
//!
//! Engines with their own execution strategy override
//! [`KnnEngine::evaluator`]: [`crate::sharded::ShardedEngine`] returns
//! an evaluator that fans every OD over data shards with one
//! `QueryContext` **per shard** and merges exact per-shard top-k lists.
//!
//! Exactness: evaluator results are bit-identical to calling
//! [`KnnEngine::od`] per subspace — the lazy cache is pinned by the
//! context equivalence tests, and the evaluator-path equivalence tests
//! in `tests/properties.rs` pin the context-less engines too.
//!
//! [`QueryContext`]: crate::context::QueryContext

use crate::batch::parallel_map;
use crate::context::QueryContext;
use crate::knn::KnnEngine;
use crate::walker::{walk_order, PrefixStack};
use hos_data::{PointId, Subspace};

/// Evaluates the outlying degree of one fixed query point across many
/// subspaces, amortising per-query state (distance caches, prefix
/// stacks, per-shard fan-out) across calls.
///
/// An evaluator is the unit the search layers program against: build
/// one per `(engine, query)` pair via [`KnnEngine::evaluator`], then
/// stream subspaces at it level by level. Evaluators are stateful
/// (`&mut self`) so they can build caches lazily, but their *results*
/// are pure: every call returns exactly what [`KnnEngine::od`] would.
pub trait OdEvaluator {
    /// `OD(query, s)`: the sum of distances from the query to its `k`
    /// nearest neighbours in subspace `s`.
    fn od(&mut self, s: Subspace) -> f64;

    /// `OD(query, s)` for every subspace in `subspaces`, in input
    /// order, fanned across up to `threads` worker threads. Equals
    /// calling [`OdEvaluator::od`] per subspace, bit for bit,
    /// regardless of `threads`. Batches are internally traversed in
    /// walker order ([`Subspace::walk_cmp`]) so the prefix-stack
    /// kernel pays `O(n)` per node; since every subspace's OD is a
    /// pure function of the subspace, traversal order never shows in
    /// the results.
    fn od_batch(&mut self, subspaces: &[Subspace], threads: usize) -> Vec<f64>;

    /// Lattice nodes entered by the prefix-stack kernel so far (one
    /// per `O(n)` column fold; see
    /// [`crate::walker::PrefixStack::node_visits`]). `0` for
    /// evaluators that never reached a cached phase — the uncached
    /// engine path does not use the kernel.
    fn node_visits(&self) -> u64 {
        0
    }
}

/// The default [`OdEvaluator`]: direct engine queries with a lazily
/// built per-query distance cache.
///
/// # Cost model
///
/// An uncached OD costs about `n · |s|` full-strength per-dimension
/// terms; the cache costs one `n · d` build plus `n · |s|` cheap
/// column combines (~half a term each, per `benches/context.rs`).
/// Breakeven is therefore near a *cumulative* evaluated
/// dimensionality of `2d`: the evaluator sums `|s|` over every
/// subspace it has been asked for and builds the context the moment
/// the running total clears `2d`, so shallow searches that close
/// after one cheap level never pay the build, while lattice walks pay
/// it exactly once.
pub struct LazyContextEvaluator<'a, E: KnnEngine + ?Sized> {
    engine: &'a E,
    query: &'a [f64],
    k: usize,
    exclude: Option<PointId>,
    ctx: Option<QueryContext<'a>>,
    /// Whether the context may still be built (false once built or
    /// once the engine declined to provide one).
    ctx_pending: bool,
    /// Cumulative `Σ|s|` over every subspace evaluated so far.
    dims_evaluated: usize,
    /// The prefix-stack kernel state, reused across batches so
    /// steady-state traversal allocates nothing (an owned sibling of
    /// `ctx`, threaded into it per call — see [`PrefixStack`]).
    stack: PrefixStack,
    /// Reused walk-order index scratch.
    order: Vec<usize>,
    /// Node visits performed by throwaway per-chunk stacks on the
    /// parallel path (the owned `stack` counts its own).
    parallel_visits: u64,
}

impl<'a, E: KnnEngine + ?Sized> LazyContextEvaluator<'a, E> {
    /// Creates the evaluator; no work happens until the first OD call.
    pub fn new(engine: &'a E, query: &'a [f64], k: usize, exclude: Option<PointId>) -> Self {
        LazyContextEvaluator {
            engine,
            query,
            k,
            exclude,
            ctx: None,
            ctx_pending: true,
            dims_evaluated: 0,
            stack: PrefixStack::new(),
            order: Vec::new(),
            parallel_visits: 0,
        }
    }

    /// Accounts `dims` evaluated dimensions and builds the context
    /// once the cumulative total clears the `2d` breakeven.
    fn note_dims(&mut self, dims: usize) {
        self.dims_evaluated += dims;
        if self.ctx_pending && self.dims_evaluated > 2 * self.engine.dataset().dim() {
            self.ctx = self.engine.query_context(self.query);
            self.ctx_pending = false;
        }
    }
}

impl<E: KnnEngine + ?Sized> OdEvaluator for LazyContextEvaluator<'_, E> {
    fn od(&mut self, s: Subspace) -> f64 {
        self.note_dims(s.dim());
        match &self.ctx {
            Some(ctx) => ctx.od(self.k, s, self.exclude),
            None => self.engine.od(self.query, self.k, s, self.exclude),
        }
    }

    fn od_batch(&mut self, subspaces: &[Subspace], threads: usize) -> Vec<f64> {
        if subspaces.is_empty() {
            return Vec::new();
        }
        self.note_dims(subspaces.iter().map(|s| s.dim()).sum());
        let (k, exclude) = (self.k, self.exclude);
        match &self.ctx {
            Some(ctx) => {
                // Prefix-stack kernel: traverse in walker order so
                // consecutive subspaces share accumulator prefixes,
                // scatter results back into input order. Each OD is a
                // pure function of its subspace, so the reordering is
                // invisible in the results.
                walk_order(subspaces, &mut self.order);
                let mut out = vec![0.0f64; subspaces.len()];
                let threads = threads.max(1).min(subspaces.len());
                if threads <= 1 {
                    for &i in &self.order {
                        self.stack.seek(ctx, subspaces[i]);
                        out[i] = self.stack.od(ctx, k, exclude);
                    }
                } else {
                    // Contiguous walk-order chunks, one throwaway
                    // stack per worker: prefix sharing within each
                    // chunk, allocation only on this (wide-batch)
                    // path.
                    let chunk = self.order.len().div_ceil(threads);
                    let chunks: Vec<&[usize]> = self.order.chunks(chunk).collect();
                    let results = parallel_map(&chunks, threads, |&idx| {
                        let mut stack = PrefixStack::new();
                        let ods: Vec<(usize, f64)> = idx
                            .iter()
                            .map(|&i| {
                                stack.seek(ctx, subspaces[i]);
                                (i, stack.od(ctx, k, exclude))
                            })
                            .collect();
                        (ods, stack.node_visits())
                    });
                    for (ods, visits) in results {
                        self.parallel_visits += visits;
                        for (i, od) in ods {
                            out[i] = od;
                        }
                    }
                }
                out
            }
            None => {
                let (engine, query) = (self.engine, self.query);
                parallel_map(subspaces, threads, |&s| engine.od(query, k, s, exclude))
            }
        }
    }

    fn node_visits(&self) -> u64 {
        self.stack.node_visits() + self.parallel_visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use crate::vafile::{VaFile, VaFileConfig};
    use hos_data::{Dataset, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-20.0..20.0)).collect();
        Dataset::from_flat(flat, d).unwrap()
    }

    #[test]
    fn matches_per_subspace_engine_queries_across_paths() {
        // Drive the evaluator through its uncached AND cached phases
        // (single calls, then whole-lattice batches) and pin every
        // result against the engine reference, bit for bit.
        let d = 5;
        let ds = dataset(120, d, 1);
        for metric in [Metric::L1, Metric::L2, Metric::LInf] {
            let engine = LinearScan::new(ds.clone(), metric);
            let q: Vec<f64> = ds.row(3).to_vec();
            let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
            let reference: Vec<f64> = subspaces
                .iter()
                .map(|&s| engine.od(&q, 4, s, Some(3)))
                .collect();
            let mut ev = engine.evaluator(&q, 4, Some(3));
            for (i, &s) in subspaces.iter().take(4).enumerate() {
                assert_eq!(ev.od(s), reference[i], "{metric:?} {s}");
            }
            let batched = ev.od_batch(&subspaces, 3);
            assert_eq!(batched, reference, "{metric:?}");
        }
    }

    #[test]
    fn context_builds_only_past_the_breakeven() {
        let d = 6;
        let ds = dataset(80, d, 2);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(0).to_vec();
        let mut ev = LazyContextEvaluator::new(&engine, &q, 3, Some(0));
        // Singles at level 1: cumulative dims stay ≤ 2d, no context.
        for dim in 0..d {
            ev.od(Subspace::single(dim));
        }
        assert!(ev.ctx.is_none());
        assert!(ev.ctx_pending);
        // One level-2 batch pushes the total past 2d = 12.
        let level2: Vec<Subspace> = Subspace::all_of_dim(d, 2).collect();
        ev.od_batch(&level2, 2);
        assert!(ev.ctx.is_some());
        assert!(!ev.ctx_pending);
    }

    #[test]
    fn contextless_engine_stays_on_engine_path() {
        let d = 4;
        let ds = dataset(60, d, 3);
        let va = VaFile::build(ds.clone(), Metric::L2, VaFileConfig::default());
        let q: Vec<f64> = ds.row(5).to_vec();
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        let reference: Vec<f64> = subspaces
            .iter()
            .map(|&s| va.od(&q, 3, s, Some(5)))
            .collect();
        let mut ev = va.evaluator(&q, 3, Some(5));
        assert_eq!(ev.od_batch(&subspaces, 2), reference);
        // Repeat batch: still correct with ctx_pending resolved to None.
        assert_eq!(ev.od_batch(&subspaces, 1), reference);
    }

    #[test]
    fn full_lattice_batch_visits_each_node_once() {
        // The kernel's cost claim, exact: a full-lattice batch in the
        // cached phase performs one O(n) column fold per node —
        // node_visits == 2^d - 1 — versus Σ|s| = d·2^(d-1) folds for
        // the per-subspace recombine it replaces.
        let d = 7;
        let ds = dataset(50, d, 9);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(3).to_vec();
        let mut ev = engine.evaluator(&q, 4, Some(3));
        let subspaces: Vec<Subspace> = Subspace::all_nonempty(d).collect();
        let ods = ev.od_batch(&subspaces, 1);
        assert_eq!(ods.len(), subspaces.len());
        assert_eq!(ev.node_visits(), Subspace::lattice_size(d));
        // A second identical batch re-walks the lattice: again one
        // fold per node, same results bit for bit (steady-state
        // traversal reuses every buffer).
        let again = ev.od_batch(&subspaces, 1);
        assert_eq!(again, ods);
        assert_eq!(ev.node_visits(), 2 * Subspace::lattice_size(d));
        // The parallel path agrees exactly, whatever the chunking.
        let mut ev_par = engine.evaluator(&q, 4, Some(3));
        assert_eq!(ev_par.od_batch(&subspaces, 4), ods);
        assert!(ev_par.node_visits() >= Subspace::lattice_size(d));
    }

    #[test]
    fn empty_batch_is_empty_and_costs_nothing() {
        let ds = dataset(30, 3, 4);
        let engine = LinearScan::new(ds.clone(), Metric::L2);
        let q: Vec<f64> = ds.row(0).to_vec();
        let before = engine.distance_evals();
        let mut ev = engine.evaluator(&q, 2, None);
        assert!(ev.od_batch(&[], 4).is_empty());
        assert_eq!(engine.distance_evals(), before);
    }

    #[test]
    fn evaluator_usable_through_dyn_engine() {
        let ds = dataset(40, 3, 5);
        let engine: Box<dyn KnnEngine> = Box::new(LinearScan::new(ds.clone(), Metric::L1));
        let q: Vec<f64> = ds.row(1).to_vec();
        let s = Subspace::full(3);
        let mut ev = engine.evaluator(&q, 2, Some(1));
        assert_eq!(ev.od(s), engine.od(&q, 2, s, Some(1)));
    }
}
