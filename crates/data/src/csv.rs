//! Dependency-free CSV ingestion and export.
//!
//! Supports the simple numeric-matrix CSVs the system consumes: a
//! configurable delimiter, an optional header row, `#`-prefixed comment
//! lines, and blank-line tolerance. Quoting is not supported (numeric
//! data never needs it); a quote character in the input is a parse
//! error rather than silently misread data.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::DataError;
use crate::Result;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// CSV reading options.
#[derive(Clone, Debug)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first non-comment line is a header of column names.
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: false,
        }
    }
}

/// Reads a dataset from any reader.
pub fn read_csv<R: Read>(reader: R, opts: &CsvOptions) -> Result<Dataset> {
    let mut builder = DatasetBuilder::new();
    let mut names: Option<Vec<String>> = None;
    let mut saw_header = false;
    let buf = BufReader::new(reader);
    let mut row: Vec<f64> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.contains('"') {
            return Err(DataError::Parse {
                line: lineno,
                msg: "quoted fields are not supported".into(),
            });
        }
        if opts.has_header && !saw_header {
            saw_header = true;
            names = Some(
                trimmed
                    .split(opts.delimiter)
                    .map(|s| s.trim().to_string())
                    .collect(),
            );
            continue;
        }
        row.clear();
        for field in trimmed.split(opts.delimiter) {
            let v: f64 = field.trim().parse().map_err(|_| DataError::Parse {
                line: lineno,
                msg: format!("invalid number {:?}", field.trim()),
            })?;
            row.push(v);
        }
        builder.push_row(&row).map_err(|e| match e {
            DataError::Shape { expected, got } => DataError::Parse {
                line: lineno,
                msg: format!("expected {expected} columns, got {got}"),
            },
            other => other,
        })?;
    }
    let mut ds = builder.build()?;
    if let Some(ns) = names {
        ds = ds.with_names(ns)?;
    }
    Ok(ds)
}

/// Reads a dataset from a file path.
pub fn read_csv_path<P: AsRef<Path>>(path: P, opts: &CsvOptions) -> Result<Dataset> {
    let f = std::fs::File::open(path)?;
    read_csv(f, opts)
}

/// Writes a dataset as CSV (header included when names are present).
pub fn write_csv<W: Write>(ds: &Dataset, writer: &mut W, delimiter: char) -> Result<()> {
    if let Some(names) = ds.names() {
        let header: Vec<&str> = names.iter().map(String::as_str).collect();
        writeln!(writer, "{}", header.join(&delimiter.to_string()))?;
    }
    let mut buf = String::new();
    for (_, row) in ds.iter() {
        buf.clear();
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                buf.push(delimiter);
            }
            // `{}` prints f64 round-trippably in Rust.
            buf.push_str(&v.to_string());
        }
        writeln!(writer, "{buf}")?;
    }
    Ok(())
}

/// Writes a dataset to a file path.
pub fn write_csv_path<P: AsRef<Path>>(ds: &Dataset, path: P, delimiter: char) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_csv(ds, &mut f, delimiter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_no_header() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.5], vec![-3.0, 0.125]]).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf, ',').unwrap();
        let back = read_csv(&buf[..], &CsvOptions::default()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn roundtrip_with_header() {
        let ds = Dataset::from_rows(&[vec![1.0, 2.0]])
            .unwrap()
            .with_names(vec!["x".into(), "y".into()])
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf, ';').unwrap();
        let opts = CsvOptions {
            delimiter: ';',
            has_header: true,
        };
        let back = read_csv(&buf[..], &opts).unwrap();
        assert_eq!(back.names().unwrap(), &["x".to_string(), "y".to_string()]);
        assert_eq!(back.row(0), ds.row(0));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# comment\n\n1,2\n  \n3,4\n";
        let ds = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn reports_line_numbers_on_bad_number() {
        let text = "1,2\n3,oops\n";
        let err = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reports_line_numbers_on_ragged_rows() {
        let text = "1,2\n3\n";
        let err = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_quotes() {
        let text = "\"1\",2\n";
        assert!(read_csv(text.as_bytes(), &CsvOptions::default()).is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let text = " 1 , 2 \n";
        let ds = read_csv(text.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(ds.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        let ds = read_csv("".as_bytes(), &CsvOptions::default()).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hos_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let ds = Dataset::from_rows(&[vec![9.0, 8.0, 7.0]]).unwrap();
        write_csv_path(&ds, &path, ',').unwrap();
        let back = read_csv_path(&path, &CsvOptions::default()).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(path).ok();
    }
}
