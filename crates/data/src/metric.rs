//! Distance metrics with subspace projection.
//!
//! Every metric here is **projection monotone**: for points `a`, `b`
//! and subspaces `s2 ⊆ s1`, `dist_{s2}(a,b) <= dist_{s1}(a,b)`. This is
//! the property underlying the paper's Property 1 and 2 of the
//! outlying degree (OD): each coordinate contributes a non-negative
//! term, so removing coordinates can only shrink the distance. The
//! monotonicity of OD itself follows (see `hos-core::od`):
//! the k-NN distances of a point in a superspace dominate those in the
//! subspace, hence so does their sum.
//!
//! The enum design (instead of a trait object) keeps metrics `Copy`,
//! allows exhaustive matching in hot loops, and gives the index layer a
//! two-phase `accumulate`/`finish` interface for MINDIST lower bounds.

use crate::subspace::Subspace;

/// A projection-monotone distance metric.
///
/// ```
/// use hos_data::{Metric, Subspace};
///
/// let a = [0.0, 3.0, 1.0];
/// let b = [4.0, 0.0, 1.0];
/// assert_eq!(Metric::L2.dist_full(&a, &b), 5.0);
/// // Restricting to a subspace can only shrink the distance:
/// let s = Subspace::from_dims(&[0]);
/// assert_eq!(Metric::L2.dist_sub(&a, &b, s), 4.0);
/// assert!(Metric::L2.is_projection_monotone());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum Metric {
    /// Manhattan distance: `Σ |a_i - b_i|`.
    L1,
    /// Euclidean distance: `sqrt(Σ (a_i - b_i)^2)`.
    #[default]
    L2,
    /// Chebyshev distance: `max |a_i - b_i|`.
    LInf,
    /// General Minkowski distance with exponent `p >= 1`.
    Lp(f64),
}

impl Metric {
    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            Metric::L1 => "L1".to_string(),
            Metric::L2 => "L2".to_string(),
            Metric::LInf => "Linf".to_string(),
            Metric::Lp(p) => format!("L{p}"),
        }
    }

    /// Distance between `a` and `b` restricted to subspace `s`.
    ///
    /// Only coordinates whose bit is set in `s` contribute. `a` and `b`
    /// must have equal length and cover every dimension in `s`.
    #[inline]
    pub fn dist_sub(&self, a: &[f64], b: &[f64], s: Subspace) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f64;
        match self {
            Metric::L1 => {
                for d in s.dims() {
                    acc += (a[d] - b[d]).abs();
                }
                acc
            }
            Metric::L2 => {
                for d in s.dims() {
                    let t = a[d] - b[d];
                    acc += t * t;
                }
                acc.sqrt()
            }
            Metric::LInf => {
                for d in s.dims() {
                    let t = (a[d] - b[d]).abs();
                    if t > acc {
                        acc = t;
                    }
                }
                acc
            }
            Metric::Lp(p) => {
                for d in s.dims() {
                    acc += (a[d] - b[d]).abs().powf(*p);
                }
                acc.powf(1.0 / p)
            }
        }
    }

    /// Distance in the full space of the slices.
    #[inline]
    pub fn dist_full(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::L2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Metric::LInf => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Metric::Lp(p) => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs().powf(*p))
                .sum::<f64>()
                .powf(1.0 / p),
        }
    }

    /// Folds one per-dimension term (an absolute coordinate gap) into a
    /// running accumulator. Combine with [`Metric::finish`] to obtain a
    /// distance; used by the X-tree to build MINDIST lower bounds
    /// dimension by dimension.
    #[inline]
    pub fn accumulate(&self, acc: f64, gap: f64) -> f64 {
        match self {
            Metric::L1 => acc + gap,
            Metric::L2 => acc + gap * gap,
            Metric::LInf => acc.max(gap),
            Metric::Lp(p) => acc + gap.powf(*p),
        }
    }

    /// Converts an accumulator produced by [`Metric::accumulate`] into
    /// a distance value comparable with `dist_sub` outputs.
    #[inline]
    pub fn finish(&self, acc: f64) -> f64 {
        match self {
            Metric::L1 | Metric::LInf => acc,
            Metric::L2 => acc.sqrt(),
            Metric::Lp(p) => acc.powf(1.0 / p),
        }
    }

    /// Monotone-transform shortcut: comparing `pre_finish` values
    /// orders distances identically to comparing finished values, so
    /// k-NN search can avoid `sqrt`/`powf` until the very end.
    #[inline]
    pub fn pre_dist_sub(&self, a: &[f64], b: &[f64], s: Subspace) -> f64 {
        let mut acc = 0.0f64;
        for d in s.dims() {
            acc = self.accumulate(acc, (a[d] - b[d]).abs());
        }
        acc
    }

    /// Inverse of [`Metric::finish`]: maps a finished distance back to
    /// pre-metric accumulator space, so thresholds can be compared
    /// against accumulators without finishing every candidate.
    #[inline]
    pub fn pre_of(&self, dist: f64) -> f64 {
        match self {
            Metric::L1 | Metric::LInf => dist,
            Metric::L2 => dist * dist,
            Metric::Lp(p) => dist.powf(*p),
        }
    }

    /// Normalisation divisor making ODs comparable across subspace
    /// dimensionalities (an extension over the paper, see DESIGN.md):
    /// the expected growth rate of the metric with dimension count.
    /// For L1 this is `m`, for L2 `sqrt(m)`, for L∞ `1`.
    pub fn dim_scale(&self, m: usize) -> f64 {
        let m = m.max(1) as f64;
        match self {
            Metric::L1 => m,
            Metric::L2 => m.sqrt(),
            Metric::LInf => 1.0,
            Metric::Lp(p) => m.powf(1.0 / p),
        }
    }

    /// Whether this metric satisfies projection monotonicity. All
    /// implemented metrics do; the method exists so generic code can
    /// assert the contract explicitly.
    pub fn is_projection_monotone(&self) -> bool {
        match self {
            Metric::Lp(p) => *p >= 1.0,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
    const B: [f64; 4] = [1.0, 3.0, 2.0, -1.0];

    #[test]
    fn l1_subspace() {
        let s = Subspace::from_dims(&[0, 1]);
        assert_eq!(Metric::L1.dist_sub(&A, &B, s), 3.0);
        assert_eq!(Metric::L1.dist_full(&A, &B), 1.0 + 2.0 + 0.0 + 4.0);
    }

    #[test]
    fn l2_subspace() {
        let s = Subspace::from_dims(&[0, 3]);
        let d = Metric::L2.dist_sub(&A, &B, s);
        assert!((d - (1.0f64 + 16.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn linf_subspace() {
        let s = Subspace::from_dims(&[1, 2]);
        assert_eq!(Metric::LInf.dist_sub(&A, &B, s), 2.0);
        assert_eq!(Metric::LInf.dist_full(&A, &B), 4.0);
    }

    #[test]
    fn lp_matches_l1_l2_at_exponents() {
        let s = Subspace::from_dims(&[0, 1, 3]);
        let lp1 = Metric::Lp(1.0).dist_sub(&A, &B, s);
        let l1 = Metric::L1.dist_sub(&A, &B, s);
        assert!((lp1 - l1).abs() < 1e-12);
        let lp2 = Metric::Lp(2.0).dist_sub(&A, &B, s);
        let l2 = Metric::L2.dist_sub(&A, &B, s);
        assert!((lp2 - l2).abs() < 1e-12);
    }

    #[test]
    fn empty_subspace_distance_is_zero() {
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            assert_eq!(m.dist_sub(&A, &B, Subspace::empty()), 0.0);
        }
    }

    #[test]
    fn full_equals_sub_on_full_space() {
        let s = Subspace::full(4);
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(2.5)] {
            let a = m.dist_full(&A, &B);
            let b = m.dist_sub(&A, &B, s);
            assert!((a - b).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn accumulate_finish_equals_dist() {
        let s = Subspace::from_dims(&[1, 2, 3]);
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(4.0)] {
            let mut acc = 0.0;
            for d in s.dims() {
                acc = m.accumulate(acc, (A[d] - B[d]).abs());
            }
            let via_acc = m.finish(acc);
            let direct = m.dist_sub(&A, &B, s);
            assert!((via_acc - direct).abs() < 1e-12, "{m:?}");
        }
    }

    #[test]
    fn pre_dist_orders_like_dist() {
        let s = Subspace::full(4);
        let c = [5.0, 5.0, 5.0, 5.0];
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            let d_ab = m.dist_sub(&A, &B, s);
            let d_ac = m.dist_sub(&A, &c, s);
            let p_ab = m.pre_dist_sub(&A, &B, s);
            let p_ac = m.pre_dist_sub(&A, &c, s);
            assert_eq!(d_ab < d_ac, p_ab < p_ac, "{m:?}");
            assert!((m.finish(p_ab) - d_ab).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_monotonicity_spot_check() {
        let sub = Subspace::from_dims(&[0, 2]);
        let sup = Subspace::from_dims(&[0, 1, 2, 3]);
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(2.0)] {
            assert!(m.dist_sub(&A, &B, sub) <= m.dist_sub(&A, &B, sup) + 1e-12);
            assert!(m.is_projection_monotone());
        }
    }

    #[test]
    fn pre_of_inverts_finish() {
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(3.0)] {
            for d in [0.0, 0.5, 2.0, 17.5] {
                assert!((m.finish(m.pre_of(d)) - d).abs() < 1e-9, "{m:?} {d}");
            }
        }
    }

    #[test]
    fn dim_scale_values() {
        assert_eq!(Metric::L1.dim_scale(4), 4.0);
        assert!((Metric::L2.dim_scale(4) - 2.0).abs() < 1e-12);
        assert_eq!(Metric::LInf.dim_scale(4), 1.0);
        assert_eq!(Metric::L1.dim_scale(0), 1.0);
    }

    #[test]
    fn names() {
        assert_eq!(Metric::L2.name(), "L2");
        assert_eq!(Metric::Lp(3.0).name(), "L3");
    }
}
