//! Minimal plain-text and CSV table rendering.
//!
//! The experiment harness and the examples print small result tables;
//! this module keeps that output consistent (aligned text for the
//! terminal, CSV for `results/*.csv`).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple table: a header row plus data rows of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; arity must match the header.
    ///
    /// # Panics
    /// Panics on arity mismatch — this is developer-facing output code
    /// and a mismatch is a bug at the call site.
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "table row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with a sensible number of significant digits for
/// table display.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Renders a crude ASCII scatter plot of 2-d points, marking one
/// highlighted point with `*` (used by the Figure 1 example).
pub fn ascii_scatter(points: &[(f64, f64)], highlight: (f64, f64), w: usize, h: usize) -> String {
    let mut lo_x = highlight.0;
    let mut hi_x = highlight.0;
    let mut lo_y = highlight.1;
    let mut hi_y = highlight.1;
    for &(x, y) in points {
        lo_x = lo_x.min(x);
        hi_x = hi_x.max(x);
        lo_y = lo_y.min(y);
        hi_y = hi_y.max(y);
    }
    let span_x = (hi_x - lo_x).max(1e-9);
    let span_y = (hi_y - lo_y).max(1e-9);
    let mut grid = vec![vec![b' '; w]; h];
    let place = |x: f64, y: f64| {
        let cx = (((x - lo_x) / span_x) * (w - 1) as f64).round() as usize;
        let cy = (((y - lo_y) / span_y) * (h - 1) as f64).round() as usize;
        (cx.min(w - 1), h - 1 - cy.min(h - 1))
    };
    for &(x, y) in points {
        let (cx, cy) = place(x, y);
        grid[cy][cx] = b'x';
    }
    let (cx, cy) = place(highlight.0, highlight.1);
    grid[cy][cx] = b'*';
    let mut out = String::with_capacity((w + 3) * h);
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push_str("+\n");
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push(vec!["a", "1"]);
        t.push(vec!["long-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.push(vec!["1", "2"]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(0.000123), "0.00012");
    }

    #[test]
    fn scatter_contains_highlight() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (0.5, 0.2)];
        let s = ascii_scatter(&pts, (0.9, 0.1), 20, 10);
        assert!(s.contains('*'));
        assert!(s.contains('x'));
        assert_eq!(s.lines().count(), 12);
    }

    #[test]
    fn scatter_degenerate_extent() {
        // All points identical — must not divide by zero or go OOB.
        let pts = vec![(2.0, 2.0), (2.0, 2.0)];
        let s = ascii_scatter(&pts, (2.0, 2.0), 8, 4);
        assert!(s.contains('*'));
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("hos_table_test").join("nested");
        let path = dir.join("t.csv");
        let mut t = Table::new(vec!["x"]);
        t.push(vec!["9"]);
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }
}
