//! Synthetic workload generation.
//!
//! The demo paper evaluates on "both synthetic and real-life datasets"
//! without naming either. These generators provide the synthetic side
//! with a crucial extra: **verifiable ground truth**. The planted
//! generator records which points were made outlying and in which
//! subspaces, so effectiveness (precision/recall of detected outlying
//! subspaces) becomes measurable — something an unnamed real dataset
//! would never give us.
//!
//! Gaussian variates are produced with a Box–Muller transform to keep
//! the dependency set down to `rand` itself.

pub mod correlated;
pub mod gaussian;
pub mod planted;
pub mod skewed;
pub mod uniform;

pub use correlated::{figure1_views, CorrelatedSpec};
pub use gaussian::{ClusterSpec, GaussianMixture};
pub use planted::{PlantedOutlier, PlantedSpec, PlantedWorkload};
pub use skewed::{mixed_marginals, ColumnDist};
pub use uniform::uniform;

use rand::Rng;

/// One standard-normal variate via Box–Muller.
///
/// Uses the polar-free (trigonometric) form; the discarded second
/// variate keeps the generator stateless at the cost of one extra
/// `cos` call, which is irrelevant at data-generation scale.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * std_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(std_normal(&mut a), std_normal(&mut b));
        }
    }
}
