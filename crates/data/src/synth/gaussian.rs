//! Gaussian mixture generation — the standard clustered background
//! against which outliers are meaningful.

use super::normal;
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One mixture component: an axis-aligned Gaussian blob.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Component centre (fixes the dimensionality).
    pub center: Vec<f64>,
    /// Per-dimension standard deviation (scalar, axis-aligned).
    pub sigma: f64,
    /// Relative sampling weight (need not be normalised).
    pub weight: f64,
}

/// A mixture of axis-aligned Gaussian clusters.
#[derive(Clone, Debug)]
pub struct GaussianMixture {
    clusters: Vec<ClusterSpec>,
    d: usize,
}

impl GaussianMixture {
    /// Builds a mixture, validating that all centres agree on
    /// dimensionality and weights/sigmas are positive.
    pub fn new(clusters: Vec<ClusterSpec>) -> Result<Self> {
        let first = clusters.first().ok_or(DataError::Empty)?;
        let d = first.center.len();
        for c in &clusters {
            if c.center.len() != d {
                return Err(DataError::Shape {
                    expected: d,
                    got: c.center.len(),
                });
            }
            if c.sigma <= 0.0 {
                return Err(DataError::InvalidParam(format!("sigma {} <= 0", c.sigma)));
            }
            if c.weight <= 0.0 {
                return Err(DataError::InvalidParam(format!("weight {} <= 0", c.weight)));
            }
        }
        Ok(GaussianMixture { clusters, d })
    }

    /// Convenience constructor: `k` clusters with centres drawn
    /// uniformly from `[0, extent]^d`, equal weights, common sigma.
    pub fn random(k: usize, d: usize, extent: f64, sigma: f64, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(DataError::Empty);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let clusters = (0..k)
            .map(|_| ClusterSpec {
                center: (0..d).map(|_| rng.gen_range(0.0..extent)).collect(),
                sigma,
                weight: 1.0,
            })
            .collect();
        GaussianMixture::new(clusters)
    }

    /// Dimensionality of the mixture.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The mixture components.
    pub fn clusters(&self) -> &[ClusterSpec] {
        &self.clusters
    }

    /// Samples the index of a component proportionally to weight.
    fn sample_component<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.clusters.iter().map(|c| c.weight).sum();
        let mut t = rng.gen_range(0.0..total);
        for (i, c) in self.clusters.iter().enumerate() {
            if t < c.weight {
                return i;
            }
            t -= c.weight;
        }
        self.clusters.len() - 1
    }

    /// Samples one point into `out` (must have length `d`), returning
    /// the component index it came from.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) -> usize {
        debug_assert_eq!(out.len(), self.d);
        let ci = self.sample_component(rng);
        let c = &self.clusters[ci];
        for (o, &mu) in out.iter_mut().zip(&c.center) {
            *o = normal(rng, mu, c.sigma);
        }
        ci
    }

    /// Generates a dataset of `n` samples, also returning the component
    /// assignment of each point.
    pub fn generate(&self, n: usize, seed: u64) -> Result<(Dataset, Vec<usize>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = vec![0.0; n * self.d];
        let mut assign = Vec::with_capacity(n);
        for i in 0..n {
            let ci = self.sample_into(&mut rng, &mut flat[i * self.d..(i + 1) * self.d]);
            assign.push(ci);
        }
        Ok((Dataset::from_flat(flat, self.d)?, assign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn validation() {
        assert!(GaussianMixture::new(vec![]).is_err());
        let bad_dim = vec![
            ClusterSpec {
                center: vec![0.0],
                sigma: 1.0,
                weight: 1.0,
            },
            ClusterSpec {
                center: vec![0.0, 1.0],
                sigma: 1.0,
                weight: 1.0,
            },
        ];
        assert!(GaussianMixture::new(bad_dim).is_err());
        let bad_sigma = vec![ClusterSpec {
            center: vec![0.0],
            sigma: 0.0,
            weight: 1.0,
        }];
        assert!(GaussianMixture::new(bad_sigma).is_err());
        let bad_weight = vec![ClusterSpec {
            center: vec![0.0],
            sigma: 1.0,
            weight: -1.0,
        }];
        assert!(GaussianMixture::new(bad_weight).is_err());
    }

    #[test]
    fn single_cluster_statistics() {
        let gm = GaussianMixture::new(vec![ClusterSpec {
            center: vec![5.0, -2.0],
            sigma: 0.5,
            weight: 1.0,
        }])
        .unwrap();
        let (ds, assign) = gm.generate(5000, 1).unwrap();
        assert_eq!(ds.len(), 5000);
        assert!(assign.iter().all(|&a| a == 0));
        assert!((stats::mean(&ds.column_vec(0)) - 5.0).abs() < 0.05);
        assert!((stats::mean(&ds.column_vec(1)) + 2.0).abs() < 0.05);
        assert!((stats::std_dev(&ds.column_vec(0)) - 0.5).abs() < 0.05);
    }

    #[test]
    fn weights_drive_component_frequencies() {
        let gm = GaussianMixture::new(vec![
            ClusterSpec {
                center: vec![0.0],
                sigma: 0.1,
                weight: 3.0,
            },
            ClusterSpec {
                center: vec![100.0],
                sigma: 0.1,
                weight: 1.0,
            },
        ])
        .unwrap();
        let (_, assign) = gm.generate(4000, 5).unwrap();
        let c0 = assign.iter().filter(|&&a| a == 0).count();
        let frac = c0 as f64 / assign.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn random_mixture_shape() {
        let gm = GaussianMixture::random(4, 6, 100.0, 2.0, 9).unwrap();
        assert_eq!(gm.dim(), 6);
        assert_eq!(gm.clusters().len(), 4);
        let (ds, _) = gm.generate(100, 2).unwrap();
        assert_eq!(ds.dim(), 6);
        assert!(GaussianMixture::random(0, 2, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let gm = GaussianMixture::random(2, 3, 10.0, 1.0, 7).unwrap();
        let (a, _) = gm.generate(64, 3).unwrap();
        let (b, _) = gm.generate(64, 3).unwrap();
        assert_eq!(a, b);
    }
}
