//! Uniform random data — the "no structure" control workload.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` points uniformly distributed in `[lo, hi]^d`.
pub fn uniform(n: usize, d: usize, lo: f64, hi: f64, seed: u64) -> Result<Dataset> {
    if hi <= lo {
        return Err(DataError::InvalidParam(format!("empty range [{lo}, {hi}]")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat = Vec::with_capacity(n * d);
    for _ in 0..n * d {
        flat.push(rng.gen_range(lo..hi));
    }
    Dataset::from_flat(flat, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn shape_and_range() {
        let ds = uniform(500, 4, -1.0, 1.0, 3).unwrap();
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 4);
        for (_, row) in ds.iter() {
            for &v in row {
                assert!((-1.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let ds = uniform(5000, 2, 0.0, 10.0, 11).unwrap();
        for c in 0..2 {
            let m = stats::mean(&ds.column_vec(c));
            assert!((m - 5.0).abs() < 0.3, "col {c} mean {m}");
        }
    }

    #[test]
    fn deterministic() {
        let a = uniform(50, 3, 0.0, 1.0, 9).unwrap();
        let b = uniform(50, 3, 0.0, 1.0, 9).unwrap();
        assert_eq!(a, b);
        let c = uniform(50, 3, 0.0, 1.0, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_range_rejected() {
        assert!(uniform(10, 2, 1.0, 1.0, 0).is_err());
        assert!(uniform(10, 2, 2.0, 1.0, 0).is_err());
    }
}
